"""Setup shim.

The offline environment for this repository ships setuptools without the
``wheel`` package, so PEP 517 editable installs (which build a wheel) fail.
Keeping a classic ``setup.py`` lets ``pip install -e .`` fall back to the
legacy ``setup.py develop`` path, which works offline.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
