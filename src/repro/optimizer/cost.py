"""The information-theoretic cost model used by the planner.

The cost of a plan is the worst-case size of its largest intermediate relation
(Section 4.1), measured on the log_N scale:

* a Yannakakis plan for a free-connex acyclic query costs ``max(1, log_N OUT)``
  — linear in input plus output;
* a static plan built on a tree decomposition costs the decomposition's worst
  bag bound (Eq. (21)), and the best static plan costs ``fhtw(Q, S)``;
* an adaptive PANDA plan costs ``subw(Q, S)`` (Eq. (41)).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.decompositions.enumerate import enumerate_tree_decompositions
from repro.lp.model import lp_cache_delta, lp_cache_stats
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import is_acyclic, is_free_connex
from repro.stats.constraints import ConstraintSet
from repro.widths.fhtw import FhtwResult, fractional_hypertree_width
from repro.widths.subw import SubwResult, submodular_width


@dataclass
class CostEstimate:
    """All cost figures the planner compares."""

    query: ConjunctiveQuery
    statistics: ConstraintSet
    is_acyclic: bool
    is_free_connex: bool
    fhtw: FhtwResult
    subw: SubwResult
    #: The free-connex tree decompositions both widths were computed over.
    #: Plan runners reuse them, so choosing *and executing* a plan enumerates
    #: decompositions exactly once per costed estimate.
    decompositions: tuple = ()
    #: LP-layer cache events during this estimate: ``fhtw`` and ``subw`` key
    #: the polymatroid-region cache identically, so one compiled region
    #: serves both widths (``region_builds`` ≤ 1 on a cold cache).
    lp_cache_events: dict[str, int] = field(default_factory=dict)

    @property
    def fhtw_exponent(self) -> float:
        return self.fhtw.width

    @property
    def subw_exponent(self) -> float:
        return self.subw.width

    @property
    def adaptive_gain(self) -> float:
        """How much the adaptive plan improves on the best static plan (log_N scale)."""
        return self.fhtw.width - self.subw.width

    def describe(self) -> str:
        lines = [f"cost estimate for {self.query}"]
        lines.append(f"  acyclic: {self.is_acyclic}, free-connex: {self.is_free_connex}")
        lines.append(f"  fhtw(Q,S) = {self.fhtw.width:.4g} "
                     f"(best static plan {self.fhtw.best_decomposition})")
        lines.append(f"  subw(Q,S) = {self.subw.width:.4g}")
        if self.adaptive_gain > 1e-9:
            lines.append(f"  adaptive plans win by N^{self.adaptive_gain:.4g}")
        if self.lp_cache_events:
            events = ", ".join(f"{key}={value}" for key, value
                               in sorted(self.lp_cache_events.items()))
            lines.append(f"  lp caches: {events}")
        return "\n".join(lines)


def estimate_costs(query: ConjunctiveQuery, statistics: ConstraintSet,
                   max_variables: int = 9) -> CostEstimate:
    """Compute every cost figure the planner needs.

    The TD enumeration is shared between the two width computations, and so
    is the compiled ``Γ_n ∧ S`` feasible region: the per-bag LPs of ``fhtw``
    and the per-selector LPs of ``subw`` re-solve one cached program.
    """
    decompositions = enumerate_tree_decompositions(query, max_variables=max_variables)
    atom_sets = [atom.varset for atom in query.atoms]
    before = lp_cache_stats()
    fhtw = fractional_hypertree_width(query, statistics, decompositions=decompositions)
    subw = submodular_width(query, statistics, decompositions=decompositions)
    return CostEstimate(
        query=query,
        statistics=statistics,
        is_acyclic=is_acyclic(atom_sets),
        is_free_connex=is_free_connex(atom_sets, query.free_variables),
        fhtw=fhtw,
        subw=subw,
        decompositions=tuple(decompositions),
        lp_cache_events=lp_cache_delta(before),
    )
