"""The information-theoretic query optimizer: cost model and planner."""

from repro.optimizer.cost import CostEstimate, estimate_costs
from repro.optimizer.planner import (
    ExecutionResult,
    PlanKind,
    QueryPlan,
    plan,
    plan_and_execute,
    realize_plan,
)

__all__ = [
    "CostEstimate",
    "estimate_costs",
    "PlanKind",
    "QueryPlan",
    "ExecutionResult",
    "plan",
    "plan_and_execute",
    "realize_plan",
]
