"""The query planner: picking and executing the best plan (Sections 1, 4–5, 8).

The planner is the "meta-algorithm" of the paper's introduction: given a query
``Q`` and statistics ``S`` it decides, *before looking at the data*, which
evaluation strategy to use:

* a free-connex acyclic query goes straight to the Yannakakis algorithm
  (linear in input + output);
* when the submodular width is strictly below the fractional hypertree width,
  the query benefits from data partitioning and an adaptive (multi-TD) PANDA
  plan is chosen;
* otherwise the best single tree decomposition (the fhtw witness) is executed
  as a static plan.

``plan(...)`` produces a :class:`QueryPlan` that can be inspected
(``explain()``) and executed against any database satisfying the statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.algorithms.static_plan import evaluate_static_plan
from repro.algorithms.yannakakis import evaluate_yannakakis
from repro.optimizer.cost import CostEstimate, estimate_costs
from repro.panda.adaptive import evaluate_adaptive
from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import WorkCounter
from repro.relational.relation import Relation
from repro.stats.constraints import ConstraintSet


class PlanKind(str, Enum):
    """The three plan families the optimizer chooses between."""

    YANNAKAKIS = "yannakakis"
    STATIC_TD = "static-tree-decomposition"
    ADAPTIVE_PANDA = "adaptive-panda"


@dataclass
class ExecutionResult:
    """The answer relation plus the work performed to compute it."""

    answer: Relation
    counter: WorkCounter
    details: object | None = None

    @property
    def output_size(self) -> int:
        return len(self.answer)


@dataclass
class QueryPlan:
    """A chosen plan: its kind, cost estimate and an executable closure."""

    kind: PlanKind
    query: ConjunctiveQuery
    statistics: ConstraintSet
    estimate: CostEstimate
    runner: Callable[[Database], ExecutionResult]
    reason: str

    def execute(self, database: Database) -> ExecutionResult:
        return self.runner(database)

    def explain(self) -> str:
        lines = [f"plan for {self.query}",
                 f"  strategy: {self.kind.value}",
                 f"  reason: {self.reason}"]
        lines.append("  " + self.estimate.describe().replace("\n", "\n  "))
        return "\n".join(lines)


def plan(query: ConjunctiveQuery, statistics: ConstraintSet,
         max_variables: int = 9,
         adaptive_threshold: float = 1e-6) -> QueryPlan:
    """Choose a plan for ``query`` under ``statistics``."""
    estimate = estimate_costs(query, statistics, max_variables=max_variables)

    if estimate.is_acyclic and estimate.is_free_connex:
        return QueryPlan(
            kind=PlanKind.YANNAKAKIS,
            query=query, statistics=statistics, estimate=estimate,
            runner=lambda database: _run_yannakakis(query, database),
            reason="the query is free-connex acyclic: Yannakakis runs in O(N + OUT)",
        )
    if estimate.adaptive_gain > adaptive_threshold:
        return QueryPlan(
            kind=PlanKind.ADAPTIVE_PANDA,
            query=query, statistics=statistics, estimate=estimate,
            runner=lambda database: _run_adaptive(query, database, statistics, max_variables),
            reason=(f"subw = {estimate.subw_exponent:.4g} < fhtw = "
                    f"{estimate.fhtw_exponent:.4g}: data partitioning across multiple "
                    "tree decompositions is strictly better than any single one"),
        )
    best_td = estimate.fhtw.best_decomposition
    return QueryPlan(
        kind=PlanKind.STATIC_TD,
        query=query, statistics=statistics, estimate=estimate,
        runner=lambda database: _run_static(query, database, best_td),
        reason=(f"a single tree decomposition already attains the submodular width "
                f"({estimate.fhtw_exponent:.4g})"),
    )


def plan_and_execute(query: ConjunctiveQuery, database: Database,
                     statistics: ConstraintSet,
                     max_variables: int = 9,
                     backend: str | None = None) -> tuple[QueryPlan, ExecutionResult]:
    """Convenience wrapper: plan, execute, and return both.

    ``backend`` optionally pins the execution to a storage engine (e.g.
    ``"columnar"`` for cached indexes); the database is converted before the
    plan runs.
    """
    chosen = plan(query, statistics, max_variables=max_variables)
    if backend is not None and database.backend_kind != backend:
        database = database.with_backend(backend)
    return chosen, chosen.execute(database)


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------

def _run_yannakakis(query: ConjunctiveQuery, database: Database) -> ExecutionResult:
    counter = WorkCounter()
    answer = evaluate_yannakakis(query, database, counter=counter)
    return ExecutionResult(answer=answer, counter=counter)


def _run_static(query: ConjunctiveQuery, database: Database,
                decomposition) -> ExecutionResult:
    counter = WorkCounter()
    answer, report = evaluate_static_plan(query, database, decomposition, counter=counter)
    return ExecutionResult(answer=answer, counter=counter, details=report)


def _run_adaptive(query: ConjunctiveQuery, database: Database,
                  statistics: ConstraintSet, max_variables: int) -> ExecutionResult:
    answer, report = evaluate_adaptive(query, database, statistics=statistics,
                                       max_variables=max_variables)
    counter = WorkCounter()
    counter.merge(report.counter)
    counter.max_intermediate = max(counter.max_intermediate, report.max_intermediate)
    return ExecutionResult(answer=answer, counter=counter, details=report)
