"""The query planner: picking and executing the best plan (Sections 1, 4–5, 8).

The planner is the "meta-algorithm" of the paper's introduction: given a query
``Q`` and statistics ``S`` it decides, *before looking at the data*, which
evaluation strategy to use:

* a free-connex acyclic query goes straight to the Yannakakis algorithm
  (linear in input + output);
* when the submodular width is strictly below the fractional hypertree width,
  the query benefits from data partitioning and an adaptive (multi-TD) PANDA
  plan is chosen;
* otherwise the best single tree decomposition (the fhtw witness) is executed
  as a static plan.

``plan(...)`` produces a :class:`QueryPlan` that can be inspected
(``explain()``) and executed against any database satisfying the statistics.
A plan is built from exactly one :class:`~repro.optimizer.cost.CostEstimate`
(pass ``estimate=`` to reuse one the caller already computed) and carries the
decompositions that estimate enumerated, so choosing *and* executing a plan
never re-derives widths, LP bounds or decompositions — the historical
behaviour of re-running ``estimate_costs`` when switching between plan kinds
is gone.  For repeated traffic, :class:`repro.engine.Engine` caches whole
plans across calls; :func:`plan_and_execute` routes through a single-shot
engine so every caller shares that one costed-plan path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Callable, Sequence

from repro.algorithms.static_plan import evaluate_static_plan
from repro.algorithms.yannakakis import evaluate_yannakakis
from repro.decompositions.treedecomp import TreeDecomposition
from repro.optimizer.cost import CostEstimate, estimate_costs
from repro.panda.adaptive import evaluate_adaptive
from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import WorkCounter
from repro.relational.relation import Relation
from repro.stats.constraints import ConstraintSet
from repro.telemetry.trace import get_tracer


class PlanKind(str, Enum):
    """The three plan families the optimizer chooses between."""

    YANNAKAKIS = "yannakakis"
    STATIC_TD = "static-tree-decomposition"
    ADAPTIVE_PANDA = "adaptive-panda"


@dataclass
class ExecutionResult:
    """The answer relation plus the work performed to compute it."""

    answer: Relation
    counter: WorkCounter
    details: object | None = None
    #: Finished span records a shard worker ships back with its result, to
    #: be readopted into the coordinator's trace (empty in-process).
    spans: list = field(default_factory=list)

    @property
    def output_size(self) -> int:
        return len(self.answer)


@dataclass
class QueryPlan:
    """A chosen plan: its kind, cost figures and an executable closure.

    ``estimate`` is the full cost estimate when the plan was freshly costed
    and ``None`` when the plan was rebuilt from the engine's plan cache (the
    widths then live in ``reason``/``fingerprint``).  ``decomposition`` /
    ``decompositions`` expose the plan's structure so it can be cached,
    shipped to worker processes and explained without re-deriving anything.
    """

    kind: PlanKind
    query: ConjunctiveQuery
    statistics: ConstraintSet
    runner: Callable[[Database, WorkCounter | None], ExecutionResult]
    reason: str
    estimate: CostEstimate | None = None
    #: The static plan's tree decomposition (``STATIC_TD`` only).
    decomposition: TreeDecomposition | None = None
    #: The free-connex decompositions an adaptive plan unions over.
    decompositions: tuple[TreeDecomposition, ...] = ()
    #: The plan-cache identity: canonical query fingerprint × statistics
    #: fingerprint.  Empty for plans built outside an engine.
    fingerprint: str = ""
    #: The engine-attached cardinality profile
    #: (:class:`repro.telemetry.profiler.CardinalityProfile`) and the
    #: query → canonical variable renaming its observations map through.
    #: ``None`` for plans built outside an engine.
    profile: object | None = field(default=None, repr=False, compare=False)
    renaming: dict | None = field(default=None, repr=False, compare=False)

    def execute(self, database: Database,
                counter: WorkCounter | None = None) -> ExecutionResult:
        """Run the plan; ``counter`` optionally supplies the work counter.

        Passing a counter is how callers thread a cooperative cancellation
        token (``WorkCounter(cancellation=token)``) into the evaluation inner
        loops; the result's ``counter`` is then that same object.
        """
        return self.runner(database, counter)

    def explain(self) -> str:
        lines = [f"plan for {self.query}",
                 f"  strategy: {self.kind.value}",
                 f"  reason: {self.reason}"]
        if self.fingerprint:
            lines.append(f"  fingerprint: {self.fingerprint}")
        if self.estimate is not None:
            lines.append("  " + self.estimate.describe().replace("\n", "\n  "))
        else:
            lines.append("  estimate: served from the plan cache")
        return "\n".join(lines)


def realize_plan(kind: PlanKind, query: ConjunctiveQuery,
                 statistics: ConstraintSet, *, reason: str,
                 estimate: CostEstimate | None = None,
                 decomposition: TreeDecomposition | None = None,
                 decompositions: Sequence[TreeDecomposition] = (),
                 max_variables: int = 9,
                 validate: bool = True,
                 fingerprint: str = "") -> QueryPlan:
    """Build the executable :class:`QueryPlan` for an already-made decision.

    This is the single place runners are constructed: :func:`plan` calls it
    after comparing the cost figures, and the engine's plan cache calls it
    when rebinding a cached decision to a (possibly variable-renamed) query.
    ``validate=False`` skips re-validating a decomposition that was validated
    when the decision was first made.
    """
    decompositions = tuple(decompositions)
    if kind is PlanKind.YANNAKAKIS:
        runner = lambda database, counter=None: _run_yannakakis(  # noqa: E731
            query, database, counter=counter)
    elif kind is PlanKind.ADAPTIVE_PANDA:
        runner = lambda database, counter=None: _run_adaptive(  # noqa: E731
            query, database, statistics, max_variables,
            decompositions=decompositions or None, counter=counter)
    elif kind is PlanKind.STATIC_TD:
        if decomposition is None:
            raise ValueError("a static plan needs its tree decomposition")
        runner = lambda database, counter=None: _run_static(  # noqa: E731
            query, database, decomposition, validate=validate, counter=counter)
    else:  # pragma: no cover - exhaustive over PlanKind
        raise ValueError(f"unknown plan kind: {kind!r}")
    return QueryPlan(kind=kind, query=query, statistics=statistics,
                     runner=runner, reason=reason, estimate=estimate,
                     decomposition=decomposition, decompositions=decompositions,
                     fingerprint=fingerprint)


def plan(query: ConjunctiveQuery, statistics: ConstraintSet,
         max_variables: int = 9,
         adaptive_threshold: float = 1e-6,
         estimate: CostEstimate | None = None) -> QueryPlan:
    """Choose a plan for ``query`` under ``statistics``.

    ``estimate`` lets a caller that already holds the costed estimate (the
    engine, a benchmark comparing strategies) skip recomputing it; every
    runner below reuses the estimate's decompositions, so the widths and the
    TD enumeration happen exactly once per plan.
    """
    if estimate is None:
        estimate = estimate_costs(query, statistics, max_variables=max_variables)
    elif estimate.query != query:
        # The decompositions and widths below are only meaningful for the
        # query they were costed on; silently accepting a mismatch would
        # execute a foreign decomposition and return wrong answers.
        raise ValueError(
            f"the supplied estimate was costed for {estimate.query}, not {query}")

    if estimate.is_acyclic and estimate.is_free_connex:
        return realize_plan(
            PlanKind.YANNAKAKIS, query, statistics, estimate=estimate,
            reason="the query is free-connex acyclic: Yannakakis runs in O(N + OUT)",
            max_variables=max_variables)
    if estimate.adaptive_gain > adaptive_threshold:
        return realize_plan(
            PlanKind.ADAPTIVE_PANDA, query, statistics, estimate=estimate,
            decompositions=estimate.decompositions,
            reason=(f"subw = {estimate.subw_exponent:.4g} < fhtw = "
                    f"{estimate.fhtw_exponent:.4g}: data partitioning across multiple "
                    "tree decompositions is strictly better than any single one"),
            max_variables=max_variables)
    return realize_plan(
        PlanKind.STATIC_TD, query, statistics, estimate=estimate,
        decomposition=estimate.fhtw.best_decomposition,
        reason=(f"a single tree decomposition already attains the submodular width "
                f"({estimate.fhtw_exponent:.4g})"),
        max_variables=max_variables, validate=False)


def plan_and_execute(query: ConjunctiveQuery, database: Database,
                     statistics: ConstraintSet,
                     max_variables: int = 9,
                     backend: str | None = None) -> tuple[QueryPlan, ExecutionResult]:
    """Convenience wrapper: plan, execute, and return both.

    Routes through a single-shot :class:`repro.engine.Engine`, so the query
    is costed exactly once (one ``estimate_costs`` call feeds both the plan
    choice and the runner) and benefits from the engine's canonical plan
    fingerprinting.  For repeated traffic keep a long-lived engine instead —
    this wrapper deliberately starts with a cold plan cache on every call.

    ``backend`` optionally pins the execution to a storage engine (e.g.
    ``"columnar"`` for cached indexes); the database is converted before the
    plan runs.
    """
    from repro.engine import Engine

    if backend is not None and database.backend_kind != backend:
        database = database.with_backend(backend)
    engine = Engine(database, max_variables=max_variables)
    prepared = engine.prepare(query, statistics=statistics)
    return prepared.plan, prepared.execute()


# ---------------------------------------------------------------------------
# runners
# ---------------------------------------------------------------------------

def _run_yannakakis(query: ConjunctiveQuery, database: Database,
                    counter: WorkCounter | None = None) -> ExecutionResult:
    counter = counter if counter is not None else WorkCounter()
    counter.check()
    with get_tracer().span("exec.yannakakis",
                           {"query": query.name}) as span:
        answer = evaluate_yannakakis(query, database, counter=counter)
        span.set("rows_out", len(answer))
    return ExecutionResult(answer=answer, counter=counter)


def _run_static(query: ConjunctiveQuery, database: Database,
                decomposition, validate: bool = True,
                counter: WorkCounter | None = None) -> ExecutionResult:
    counter = counter if counter is not None else WorkCounter()
    counter.check()
    with get_tracer().span("exec.static_td",
                           {"query": query.name,
                            "bags": len(tuple(decomposition.bags))}) as span:
        answer, report = evaluate_static_plan(query, database, decomposition,
                                              counter=counter,
                                              validate=validate)
        span.set("rows_out", len(answer))
    for bag, size in report.bag_sizes.items():
        counter.observe_node("bag", sorted(bag), size)
    return ExecutionResult(answer=answer, counter=counter, details=report)


def _run_adaptive(query: ConjunctiveQuery, database: Database,
                  statistics: ConstraintSet, max_variables: int,
                  decompositions: Sequence[TreeDecomposition] | None = None,
                  counter: WorkCounter | None = None) -> ExecutionResult:
    counter = counter if counter is not None else WorkCounter()
    counter.check()
    with get_tracer().span("exec.adaptive_panda",
                           {"query": query.name}) as span:
        answer, report = evaluate_adaptive(query, database,
                                           statistics=statistics,
                                           decompositions=decompositions,
                                           max_variables=max_variables,
                                           counter=counter)
        span.set("rows_out", len(answer))
        span.set("max_intermediate", report.max_intermediate)
    counter.observe_max(report.max_intermediate)
    for bag, size in report.bag_sizes.items():
        counter.observe_node("bag", sorted(bag), size)
    return ExecutionResult(answer=answer, counter=counter, details=report)
