"""``repro.analysis``: static plan verification and codebase invariant linting.

The runtime layers built in PRs 1–6 each rest on invariants none of them
re-check at execution time: cached :class:`~repro.engine.plan_cache.PlanRecipe`
objects are rebuilt with ``validate=False``, shard workers trust the bags
they are shipped, shared counters assume every writer holds the lock, and
the asyncio service assumes no coroutine ever blocks.  Our own history shows
these rot silently — PR 2's dropped answers came from a raw float threshold
against an LP objective, PR 4 and PR 6 each fixed an unlocked
read-modify-write on shared counters.  This package moves those bug classes
from production triage to CI time:

* :mod:`repro.analysis.plan_verifier` — static checks on plan artifacts
  (running intersection, atom/variable coverage, free-variable safety,
  semijoin-order validity, width sanity, semiring↔kernel capability,
  Shannon-flow proof-step well-formedness), wired into the engine's plan
  cache insert and the partition-parallel dispatch path;
* :mod:`repro.analysis.linter` + :mod:`repro.analysis.rules` — an AST
  linter with a rule registry, ``file:line`` findings with fix hints,
  justified inline suppressions and JSON output, encoding the repo's
  locked-counter, async-blocking, cache-invalidation, pickle-safety,
  cancellation and float-epsilon disciplines;
* :mod:`repro.analysis.cli` — ``python -m repro.analysis src/ --format=json``,
  the zero-unsuppressed-findings CI gate.
"""

from repro.analysis.findings import Finding, Report
from repro.analysis.linter import (
    LintRule,
    lint_paths,
    lint_source,
    register_rule,
    registered_rules,
)
from repro.analysis.plan_verifier import (
    PlanVerificationError,
    WIDTH_SLACK,
    assert_valid,
    verify_bags,
    verify_cluster_task,
    verify_dispatch,
    verify_plan,
    verify_proof_sequence,
    verify_recipe,
    verify_semijoin_order,
    verify_semiring_kernel_compatibility,
    verify_shard_payload,
)

__all__ = [
    "Finding",
    "Report",
    "LintRule",
    "lint_paths",
    "lint_source",
    "register_rule",
    "registered_rules",
    "PlanVerificationError",
    "WIDTH_SLACK",
    "assert_valid",
    "verify_bags",
    "verify_cluster_task",
    "verify_dispatch",
    "verify_plan",
    "verify_proof_sequence",
    "verify_recipe",
    "verify_semijoin_order",
    "verify_semiring_kernel_compatibility",
    "verify_shard_payload",
]
