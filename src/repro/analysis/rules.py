"""The repo-specific invariant rules, each encoding a historical bug class.

Every rule here is a post-mortem turned executable:

* **REP101** — PR 4 and PR 6 each fixed an unlocked read-modify-write race on
  shared counters (``WorkCounter`` losing parallel-shard counts, then
  ``EngineStats`` losing simultaneous-finish increments).  Counter fields may
  only move under their lock or through the atomic ``bump()``/``tally()``
  batch updates.
* **REP102** — the asyncio service (PR 6) serves every tenant from one event
  loop; a single blocking call (``time.sleep``, sync sockets, subprocess,
  file IO) inside an ``async def`` stalls *all* tenants, which no test
  notices at small scale.
* **REP103** — the columnar backends memoize indexes/kernel tables and the
  engine validates prepared queries against ``Database.revision``; a
  mutation path that forgets to clear memos or bump the revision serves
  answers from a stale index.  (PR 1/PR 5 built the memo layers; the engine's
  revision-validated prepared queries came in PR 4.)
* **REP104** — process-pool shard dispatch pickles its payloads; a lambda or
  closure smuggled into a payload (or submitted as the worker function)
  fails only at runtime, on the first sharded query, in production.
* **REP105** — cooperative cancellation (PR 6) only works if every unbounded
  loop in the evaluation algorithms consults ``WorkCounter.check()``; a loop
  that forgets makes deadline overshoot unbounded.
* **REP106** — PR 2's dropped-answer soundness bug was a raw float threshold
  against an LP objective that undershoots its exact optimum by ~1e-9.
  Comparing an LP objective with ``==``/``>=`` and no epsilon slack is how
  answers silently disappear.
* **REP107** — the fault-tolerant dispatch paths (PR 8) are built on the
  rule that *every* failure is observable: retried, counted or re-raised.
  A bare ``except Exception:`` in a dispatch/worker path that neither
  re-raises nor records to a counter/stats object swallows faults the
  chaos harness (and production operators) can never see.
* **REP108** — the telemetry layer (PR 9) exposes every layer's counter
  dict through registry pull sources, so ``/metrics`` and ``/stats``
  reconcile by construction; that only holds if counter dicts
  (``*_stats``/``*_counters``) move under a lock or through the registry's
  atomic paths.  REP101 polices the two original containers; REP108 extends
  the discipline to every dict the registry scrapes.
"""

from __future__ import annotations

import ast
import re

from repro.analysis.findings import Finding
from repro.analysis.linter import LintRule, ModuleContext, register_rule

# ---------------------------------------------------------------------------
# REP101: unlocked mutation of shared counters
# ---------------------------------------------------------------------------

#: Fields of EngineStats and WorkCounter — the two counter objects shared
#: between worker threads.  Moving one outside a lock (or the owners' atomic
#: ``bump``/``tally``/``observe_max`` methods, which lock internally) is a
#: lost-update race.
COUNTER_FIELDS = frozenset({
    # EngineStats
    "plans_built", "plans_reused", "plans_verified",
    "statistics_measured", "statistics_reused",
    "executions", "serial_executions", "parallel_executions",
    "cancelled_executions", "shards_run", "invalidations",
    "tasks_retried", "stragglers_redispatched", "workers_respawned",
    "degraded_executions",
    "wall_time_seconds",
    # WorkCounter
    "intermediate_tuples", "max_intermediate", "materializations",
})

#: Attribute/variable names holding shared counter dictionaries (the storage
#: backends' ``self.stats``, the kernel layer's module-global ``_stats``).
STATS_CONTAINERS = frozenset({"stats", "_stats"})

#: Functions allowed to move counters without an enclosing ``with ...lock``:
#: construction and unpickling happen before the object is shared.
_SETUP_FUNCTIONS = frozenset({"__init__", "__new__", "__setstate__",
                              "__post_init__"})


def _check_counter_mutation(context: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(context.tree):
        if isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Assign):
            targets = node.targets
        else:
            continue
        for target in targets:
            hit = None
            if isinstance(target, ast.Attribute) and target.attr in COUNTER_FIELDS:
                hit = f"counter field {target.attr!r}"
            elif isinstance(target, ast.Subscript):
                container = target.value
                name = (container.attr if isinstance(container, ast.Attribute)
                        else container.id if isinstance(container, ast.Name)
                        else None)
                if name in STATS_CONTAINERS:
                    hit = f"stats container {name!r}"
            if hit is None:
                continue
            function = context.enclosing_function(node)
            if function is not None and function.name in _SETUP_FUNCTIONS:
                continue
            if context.under_lock(node):
                continue
            findings.append(REP101.finding(
                context, node,
                f"unlocked read-modify-write of {hit}: concurrent finishers "
                "lose increments exactly like the PR 4/PR 6 counter races"))
    return findings


REP101 = register_rule(LintRule(
    id="REP101",
    name="unlocked-counter-mutation",
    summary="EngineStats/WorkCounter counters and stats dicts move only "
            "under a lock or through bump()/tally()",
    hint="route the update through the owner's atomic method "
         "(EngineStats.bump, WorkCounter.tally/observe_max, backend._count) "
         "or wrap it in `with self._lock:`",
    history="PR 4 (WorkCounter lost shard counts) and PR 6 (EngineStats "
            "lost simultaneous-finish increments)",
    check=_check_counter_mutation,
))

# ---------------------------------------------------------------------------
# REP102: blocking calls inside async def
# ---------------------------------------------------------------------------

_BLOCKING_EXACT = frozenset({
    "time.sleep", "os.system", "os.popen", "os.wait", "os.waitpid",
    "socket.socket", "socket.create_connection", "open", "input",
    "urllib.request.urlopen",
})
_BLOCKING_PREFIXES = ("subprocess.", "requests.", "shutil.", "http.client.")


def _check_async_blocking(context: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = ModuleContext.dotted_name(node.func)
        if dotted is None:
            continue
        if dotted not in _BLOCKING_EXACT and \
                not dotted.startswith(_BLOCKING_PREFIXES):
            continue
        function = context.enclosing_function(node)
        if not isinstance(function, ast.AsyncFunctionDef):
            continue
        findings.append(REP102.finding(
            context, node,
            f"blocking call {dotted}() inside `async def {function.name}`: "
            "it stalls the whole event loop, every tenant at once"))
    return findings


REP102 = register_rule(LintRule(
    id="REP102",
    name="async-blocking-call",
    summary="no time.sleep / subprocess / sync sockets / file IO inside "
            "`async def` (the multi-tenant service shares one event loop)",
    hint="use `await asyncio.sleep(...)` for delays, or push the blocking "
         "work into `await asyncio.to_thread(...)` / `loop.run_in_executor`",
    history="PR 6's asyncio service: one blocked coroutine freezes every "
            "tenant's queries at once",
    check=_check_async_blocking,
))

# ---------------------------------------------------------------------------
# REP103: cache-invalidation discipline on mutation paths
# ---------------------------------------------------------------------------


def _self_attribute(node: ast.AST) -> str | None:
    """``attr`` when the node is exactly ``self.<attr>``."""
    if isinstance(node, ast.Attribute) and \
            isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


_MUTATOR_METHODS = frozenset({
    "add", "append", "extend", "insert", "update", "setdefault",
    "pop", "popitem", "remove", "discard", "clear", "__setitem__",
})


def _method_mutations(method: ast.FunctionDef) -> list[tuple[ast.AST, str]]:
    """``(node, attr)`` for every mutation of a ``self._x`` attribute."""
    mutations: list[tuple[ast.AST, str]] = []
    for node in ast.walk(method):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATOR_METHODS:
                attr = _self_attribute(node.func.value)
                if attr is not None and attr.startswith("_"):
                    mutations.append((node, attr))
        elif isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if isinstance(target, ast.Subscript):
                    attr = _self_attribute(target.value)
                    if attr is not None and attr.startswith("_"):
                        mutations.append((node, attr))
    return mutations


def _writes_attribute(method: ast.FunctionDef, attribute: str) -> bool:
    for node in ast.walk(method):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) \
                else [node.target]
            for target in targets:
                if _self_attribute(target) == attribute:
                    return True
    return False


def _calls_method(method: ast.FunctionDef, name: str) -> bool:
    for node in ast.walk(method):
        if isinstance(node, ast.Call) and \
                _self_attribute(node.func) == name:
            return True
    return False


_INVALIDATION_EXEMPT = frozenset({"_invalidate", "share",
                                  "__getstate__", "__setstate__"}
                                 | _SETUP_FUNCTIONS)


def _check_cache_invalidation(context: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for klass in ast.walk(context.tree):
        if not isinstance(klass, ast.ClassDef):
            continue
        methods = {node.name: node for node in klass.body
                   if isinstance(node, ast.FunctionDef)}
        # Backend discipline: a class with an `_invalidate` memo-clearer must
        # call it from every method that mutates non-memo (source) state.
        invalidate = methods.get("_invalidate")
        if invalidate is not None:
            memo_attrs = {attr for _, attr in _method_mutations(invalidate)}
            for node in ast.walk(invalidate):
                if isinstance(node, (ast.Assign, ast.AugAssign)):
                    targets = node.targets if isinstance(node, ast.Assign) \
                        else [node.target]
                    for target in targets:
                        attr = _self_attribute(target)
                        if attr is not None:
                            memo_attrs.add(attr)
            for name, method in methods.items():
                if name in _INVALIDATION_EXEMPT:
                    continue
                source_mutations = [
                    (node, attr) for node, attr in _method_mutations(method)
                    if attr not in memo_attrs]
                if source_mutations and not _calls_method(method, "_invalidate"):
                    node, attr = source_mutations[0]
                    findings.append(REP103.finding(
                        context, node,
                        f"{klass.name}.{name} mutates source state "
                        f"`self.{attr}` without calling self._invalidate(): "
                        "memoized indexes/kernel tables keep serving the "
                        "pre-mutation data"))
        # Engine discipline: Database mutation paths must bump the revision
        # counter that prepared-query validation reads.
        if klass.name == "Database":
            for name, method in methods.items():
                if name in _SETUP_FUNCTIONS:
                    continue
                relation_mutations = [
                    (node, attr) for node, attr in _method_mutations(method)
                    if attr == "_relations"]
                if relation_mutations and \
                        not _writes_attribute(method, "_revision"):
                    node, _ = relation_mutations[0]
                    findings.append(REP103.finding(
                        context, node,
                        f"Database.{name} mutates self._relations without "
                        "bumping self._revision: prepared queries keep "
                        "serving plans validated against the old contents",
                        hint="increment `self._revision` on every mutation "
                             "path so PreparedQuery._refresh re-resolves"))
    return findings


REP103 = register_rule(LintRule(
    id="REP103",
    name="cache-invalidation-discipline",
    summary="backend mutation paths must clear kernel/index memos "
            "(self._invalidate()) and Database mutations must bump "
            "self._revision",
    hint="call `self._invalidate()` after mutating backend source state; "
         "memo attributes are exactly those cleared inside _invalidate",
    history="the PR 1/PR 5 memo layers and PR 4's revision-validated "
            "prepared queries: a forgotten invalidation serves stale indexes",
    check=_check_cache_invalidation,
))

# ---------------------------------------------------------------------------
# REP104: pickle-safety of process-worker payloads
# ---------------------------------------------------------------------------


def _nested_function_names(tree: ast.Module) -> frozenset[str]:
    """Names of functions defined inside another function (closures)."""
    nested: set[str] = set()

    def visit(node: ast.AST, inside_function: bool) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if inside_function:
                    nested.add(child.name)
                visit(child, True)
            elif isinstance(child, ast.Lambda):
                visit(child, inside_function)
            else:
                visit(child, inside_function)

    visit(tree, False)
    return frozenset(nested)


def _is_process_pool_call(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    callee = ModuleContext.dotted_name(node.func) or ""
    return callee.split(".")[-1] == "ProcessPoolExecutor"


def _process_pool_scopes(tree: ast.Module) -> list[tuple[str, ast.AST]]:
    """``(pool name, scope node)`` pairs: the region where the name IS a
    process pool.

    A ``with ProcessPoolExecutor(...) as pool:`` binds the name only for the
    ``with`` body (the same name often rebinds to a thread pool in a sibling
    branch — scoping to the block keeps that legal); a plain assignment
    binds it for the enclosing module/function.
    """
    scopes: list[tuple[str, ast.AST]] = []
    for node in ast.walk(tree):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if _is_process_pool_call(item.context_expr) and \
                        isinstance(item.optional_vars, ast.Name):
                    scopes.append((item.optional_vars.id, node))
        elif isinstance(node, ast.Assign) and \
                _is_process_pool_call(node.value) and \
                len(node.targets) == 1 and \
                isinstance(node.targets[0], ast.Name):
            scopes.append((node.targets[0].id, tree))
    return scopes


def _check_payload_pickle_safety(context: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    nested = _nested_function_names(context.tree)
    for pool_name, scope in _process_pool_scopes(context.tree):
        for node in ast.walk(scope):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in ("map", "submit")
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == pool_name and node.args):
                continue
            worker = node.args[0]
            if isinstance(worker, ast.Lambda):
                findings.append(REP104.finding(
                    context, worker,
                    "lambda submitted to a ProcessPoolExecutor: lambdas "
                    "cannot pickle, the dispatch dies at runtime on the "
                    "first sharded query"))
            elif isinstance(worker, ast.Name) and worker.id in nested:
                findings.append(REP104.finding(
                    context, worker,
                    f"locally-defined function {worker.id!r} submitted to a "
                    "ProcessPoolExecutor: closures cannot pickle under "
                    "spawn, so the dispatch is platform-dependent"))
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Lambda):
            function = context.enclosing_function(node)
            if function is not None and "payload" in function.name:
                findings.append(REP104.finding(
                    context, node,
                    f"lambda placed inside {function.name}(): shard payloads "
                    "cross the process boundary and must stay picklable"))
    return findings


REP104 = register_rule(LintRule(
    id="REP104",
    name="payload-pickle-safety",
    summary="process-worker shard payloads and submitted worker functions "
            "must be picklable: no lambdas, no local closures",
    hint="hoist the worker to a module-level function and ship plain data "
         "in the payload (the thread executor may keep its lambda)",
    history="the PR 5 encoded shard payloads: pickling failures surface "
            "only at runtime, inside the pool, as BrokenProcessPool",
    check=_check_payload_pickle_safety,
))

# ---------------------------------------------------------------------------
# REP105: cancellation discipline in the evaluation algorithms
# ---------------------------------------------------------------------------


def _is_unbounded_loop(node: ast.While) -> bool:
    test = node.test
    if isinstance(test, ast.Constant):
        return bool(test.value)
    return False


def _check_cancellation_discipline(context: ModuleContext) -> list[Finding]:
    path = context.path.replace("\\", "/")
    if "algorithms/" not in path and "/panda/" not in path:
        return []
    findings: list[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.While) or not _is_unbounded_loop(node):
            continue
        consults = any(
            isinstance(inner, ast.Call)
            and isinstance(inner.func, ast.Attribute)
            and inner.func.attr == "check"
            for inner in ast.walk(node))
        if not consults:
            findings.append(REP105.finding(
                context, node,
                "unbounded `while True` loop never consults "
                "WorkCounter.check(): a deadline-exceeded query overshoots "
                "without bound inside this loop"))
    return findings


REP105 = register_rule(LintRule(
    id="REP105",
    name="cancellation-discipline",
    summary="unbounded loops in the evaluation algorithms must consult "
            "WorkCounter.check() so deadlines trip cooperatively",
    hint="call `counter.check()` once per iteration (or every "
         "CHECK_INTERVAL steps, like the generic join does)",
    history="PR 6's deadline tests assert bounded overshoot; a loop that "
            "skips check() breaks that bound silently",
    check=_check_cancellation_discipline,
))

# ---------------------------------------------------------------------------
# REP106: raw float comparison against LP objectives
# ---------------------------------------------------------------------------

_OBJECTIVE_RE = re.compile(r"(^|_)objective(_|$)|(^|_)lp_(optimum|value)($|_)")
_EPSILON_RE = re.compile(r"(?i)eps|slack|tol")
_RAW_OPS = (ast.Eq, ast.NotEq, ast.Gt, ast.GtE, ast.Lt, ast.LtE)


def _mentions(node: ast.AST, pattern: re.Pattern) -> bool:
    for inner in ast.walk(node):
        text = None
        if isinstance(inner, ast.Name):
            text = inner.id
        elif isinstance(inner, ast.Attribute):
            text = inner.attr
        if text is not None and pattern.search(text.lower()):
            return True
    return False


def _has_epsilon_evidence(node: ast.AST) -> bool:
    for inner in ast.walk(node):
        if isinstance(inner, (ast.Name, ast.Attribute)):
            text = inner.id if isinstance(inner, ast.Name) else inner.attr
            if _EPSILON_RE.search(text):
                return True
        if isinstance(inner, ast.Constant) and \
                isinstance(inner.value, float) and \
                0.0 < abs(inner.value) < 1e-2:
            return True
    return False


def _check_float_lp_compare(context: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, _RAW_OPS) for op in node.ops):
            continue
        if not _mentions(node, _OBJECTIVE_RE):
            continue
        if _has_epsilon_evidence(node):
            continue
        findings.append(REP106.finding(
            context, node,
            f"raw float comparison against an LP objective "
            f"(`{ast.unparse(node)}`): HiGHS undershoots the exact optimum "
            "by ~1e-9, so exact thresholds silently drop answers"))
    return findings


REP106 = register_rule(LintRule(
    id="REP106",
    name="float-lp-objective-compare",
    summary="never compare an LP objective with raw ==/>=/<= — always "
            "allow an explicit epsilon/slack",
    hint="compare against `value - SLACK` / `value * (1 - SLACK)` with a "
         "named tolerance (see panda.executor.TRUNCATION_SLACK)",
    history="PR 2's dropped-answer soundness bug: a truncation threshold "
            "1e-9 above the true 1/B, because the flow LP's objective "
            "undershoots while body-tuple weights attain 1/B exactly",
    check=_check_float_lp_compare,
))

# ---------------------------------------------------------------------------
# REP107: swallowed exceptions in dispatch/worker paths
# ---------------------------------------------------------------------------

#: Call-name fragments that count as "recording" a failure: routing it into
#: a counter/stats object (bump/tally/absorb/count), a result/ack channel
#: (put), or an explicit log/note sink.
_RECORDING_TOKENS = ("bump", "tally", "record", "put", "note", "count",
                     "absorb", "log")

_BROAD_EXCEPTION_NAMES = frozenset({"Exception", "BaseException"})


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    """Bare ``except:`` or ``except Exception/BaseException`` (incl. tuples)."""
    if handler.type is None:
        return True
    types = (handler.type.elts if isinstance(handler.type, ast.Tuple)
             else [handler.type])
    for node in types:
        name = (node.id if isinstance(node, ast.Name)
                else node.attr if isinstance(node, ast.Attribute) else None)
        if name in _BROAD_EXCEPTION_NAMES:
            return True
    return False


def _handler_observes_failure(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or records the failure somewhere."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call):
            dotted = ModuleContext.dotted_name(node.func)
            if dotted is not None:
                last = dotted.split(".")[-1].lower()
                if any(token in last for token in _RECORDING_TOKENS):
                    return True
        if isinstance(node, ast.AugAssign) and \
                isinstance(node.target, (ast.Attribute, ast.Subscript)):
            # `self.failures += 1` / `counters["task_failures"] += 1`
            return True
    return False


def _in_dispatch_scope(context: ModuleContext, node: ast.AST) -> bool:
    path = context.path.replace("\\", "/")
    if "engine/" in path:
        return True
    function = context.enclosing_function(node)
    if function is None:
        return False
    name = function.name.lower()
    return "worker" in name or "dispatch" in name


def _check_swallowed_dispatch_errors(context: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(context.tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not _is_broad_handler(node):
            continue
        if not _in_dispatch_scope(context, node):
            continue
        if _handler_observes_failure(node):
            continue
        shape = "bare `except:`" if node.type is None \
            else f"`except {ast.unparse(node.type)}:`"
        findings.append(REP107.finding(
            context, node,
            f"{shape} in a dispatch/worker path neither re-raises nor "
            "records the failure: the fault becomes invisible to retry "
            "accounting, EngineStats and the chaos harness"))
    return findings


REP107 = register_rule(LintRule(
    id="REP107",
    name="swallowed-dispatch-error",
    summary="broad exception handlers in dispatch/worker paths must "
            "re-raise or record the failure to a counter/stats/result "
            "channel",
    hint="re-raise after cleanup, or route the failure into an observable "
         "sink (stats.bump(...), run counters, result_queue.put(('err', ...)))"
         " — or narrow the except to the specific expected type",
    history="PR 8's fault-tolerant executor: every retry/respawn decision "
            "reads failure signals, so a swallowed exception disables "
            "fault tolerance silently",
    check=_check_swallowed_dispatch_errors,
))

# ---------------------------------------------------------------------------
# REP108: counter dicts bypass the metrics registry
# ---------------------------------------------------------------------------

#: Container names REP101 already polices (exact, case-sensitive) — REP108
#: covers everything else that *looks like* a counter dict.
_REP101_CONTAINERS = frozenset({"stats", "_stats"})


def _is_counter_container(name: str | None) -> bool:
    """Does ``name`` look like a shared counter/stats dict?

    Matches ``*_stats``/``*_counters`` (any case — module-global counter
    dicts are upper-case by convention) plus the bare ``counters`` /
    ``stats_counters`` names, but leaves the exact ``stats``/``_stats``
    containers to REP101, which owns their history.
    """
    if name is None or name in _REP101_CONTAINERS:
        return False
    lowered = name.lower()
    return (lowered.endswith(("_stats", "_counters"))
            or lowered in ("counters", "stats_counters"))


def _check_unregistered_counter_path(context: ModuleContext) -> list[Finding]:
    findings: list[Finding] = []
    for node in ast.walk(context.tree):
        if isinstance(node, ast.AugAssign):
            targets = [node.target]
        elif isinstance(node, ast.Assign):
            targets = node.targets
        else:
            continue
        for target in targets:
            if not isinstance(target, ast.Subscript):
                continue
            container = target.value
            name = (container.attr if isinstance(container, ast.Attribute)
                    else container.id if isinstance(container, ast.Name)
                    else None)
            if not _is_counter_container(name):
                continue
            function = context.enclosing_function(node)
            if function is not None and function.name in _SETUP_FUNCTIONS:
                continue
            if context.under_lock(node):
                continue
            findings.append(REP108.finding(
                context, node,
                f"counter dict {name!r} mutated outside a lock and outside "
                "the metrics registry: the sample a concurrent /metrics "
                "scrape (or /stats snapshot) reads can be torn or lost"))
    return findings


REP108 = register_rule(LintRule(
    id="REP108",
    name="unregistered-counter-path",
    summary="counter dicts (*_stats, *_counters) move only under a lock or "
            "through MetricsRegistry / the owner's locked bump()/tally()",
    hint="route the increment through MetricsRegistry.bump_counters (or the "
         "owner's locked helper, e.g. count_lp_event/_count_process), or "
         "wrap it in `with <lock>:` so scrapes see consistent values",
    history="the telemetry layer exposes every layer's counter dict via "
            "pull sources; an unlocked mutation path makes /metrics and "
            "/stats disagree in exactly the way the reconciliation tests "
            "forbid",
    check=_check_unregistered_counter_path,
))

#: The full repo rule set, in id order (used by docs and tests).
ALL_RULES = (REP101, REP102, REP103, REP104, REP105, REP106, REP107, REP108)
