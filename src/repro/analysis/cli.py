"""``python -m repro.analysis``: the CI gate in one command.

Usage::

    python -m repro.analysis src/                 # human-readable findings
    python -m repro.analysis src/ --format=json   # machine-readable report
    python -m repro.analysis --list-rules         # the rule inventory
    python -m repro.analysis src/ --rule REP101   # one rule only

Exit codes: ``0`` — zero unsuppressed findings (the gate passes); ``1`` —
at least one unsuppressed finding; ``2`` — usage error.  Suppressed findings
are always *reported* (with their justifications) but never fail the gate.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis.linter import lint_paths, registered_rules


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="Static invariant linter and plan-artifact verifier for "
                    "the repro codebase.")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to lint (default: src/)")
    parser.add_argument("--format", choices=("text", "json"), default="text",
                        help="output format (default: text)")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="RULE_ID",
                        help="run only this rule (repeatable); unused-"
                             "suppression hygiene is skipped under a subset")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the registered rules and exit")
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = registered_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id} {rule.name}")
            print(f"    invariant: {rule.summary}")
            print(f"    history:   {rule.history}")
        return 0
    if args.rule:
        by_id = {rule.id: rule for rule in rules}
        unknown = [rule_id for rule_id in args.rule if rule_id not in by_id]
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}; "
                         f"known: {', '.join(sorted(by_id))}")
        selected = tuple(by_id[rule_id] for rule_id in args.rule)
    else:
        selected = None
    paths = args.paths or ["src/"]
    report = lint_paths(paths, rules=selected)
    if args.format == "json":
        print(report.to_json())
    else:
        print(report.render())
    return 0 if report.clean else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
