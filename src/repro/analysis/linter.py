"""The AST invariant linter: rule registry, suppressions, file walking.

The runtime never re-checks the invariants its correctness rests on — that a
shared counter is only moved under its lock, that an ``async def`` never
blocks the event loop, that a backend mutation clears the memos derived from
it.  This module is the *framework* half of enforcing them statically: it
parses each source file once, hands the tree to every registered
:class:`LintRule` (the repo-specific rules live in
:mod:`repro.analysis.rules`) and reconciles the findings with justified
inline suppressions.

Suppressions
------------
A finding is suppressed by a comment on the offending line (or on a
comment-only line directly above it)::

    counter.value += 1  # repro-analysis: allow[REP101] -- single-threaded setup path

The justification after ``--`` is mandatory: a bare ``allow`` is itself a
finding (``REP100``), as is a suppression that no longer matches any finding
— suppressions must never outlive the code they excuse.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.analysis.findings import Finding, Report

#: Rule id for analysis hygiene problems: unparseable files, suppressions
#: without a justification, suppressions that match no finding.
HYGIENE_RULE = "REP100"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro-analysis:\s*allow\[(?P<rules>[A-Z0-9*,\s]+)\]"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$")


class ModuleContext:
    """One parsed module plus the cross-cutting lookups every rule needs."""

    def __init__(self, tree: ast.Module, source: str, path: str) -> None:
        self.tree = tree
        self.source = source
        self.path = path
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    # ------------------------------------------------------------- traversal
    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
            self, node: ast.AST) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The nearest ``def``/``async def`` the node's code runs inside."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def under_lock(self, node: ast.AST) -> bool:
        """True when the node executes inside ``with <something>lock...:``.

        The lock convention is lexical and repo-wide: every mutex in the tree
        is named ``*lock*`` (``self._lock``, ``self._stats_lock``,
        ``_stats_lock``), so holding one is detectable as an enclosing
        ``with`` whose context expression mentions ``lock``.
        """
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.With, ast.AsyncWith)):
                for item in ancestor.items:
                    if "lock" in ast.unparse(item.context_expr).lower():
                        return True
        return False

    @staticmethod
    def dotted_name(node: ast.AST) -> str | None:
        """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if isinstance(node, ast.Name):
            parts.append(node.id)
            return ".".join(reversed(parts))
        return None


@dataclass(frozen=True)
class LintRule:
    """One registered invariant check.

    ``history`` names the production/triage incident the rule encodes, so a
    future reader knows the failure is real, not theoretical.
    """

    id: str
    name: str
    summary: str
    hint: str
    history: str
    check: Callable[[ModuleContext], list[Finding]] = field(compare=False)

    def finding(self, context: ModuleContext, node: ast.AST,
                message: str, hint: str | None = None) -> Finding:
        return Finding(rule=self.id, path=context.path,
                       line=getattr(node, "lineno", 1),
                       column=getattr(node, "col_offset", 0),
                       message=message,
                       hint=self.hint if hint is None else hint)


_REGISTRY: dict[str, LintRule] = {}


def register_rule(rule: LintRule) -> LintRule:
    if rule.id in _REGISTRY:
        raise ValueError(f"duplicate lint rule id {rule.id!r}")
    _REGISTRY[rule.id] = rule
    return rule


def registered_rules() -> tuple[LintRule, ...]:
    """Every registered rule, importing the repo rule set on first use."""
    from repro.analysis import rules as _rules  # noqa: F401  (registration side effect)

    return tuple(_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY))


@dataclass
class _Suppression:
    line: int            # the source line the comment sits on
    covers: int          # the code line it applies to
    rules: tuple[str, ...]
    justification: str
    used: bool = False


def _comment_tokens(source: str) -> list[tuple[int, int, str]]:
    """``(line, column, text)`` for every real comment token.

    Tokenizing (rather than regex-scanning raw lines) keeps suppression
    syntax inside string literals and docstrings inert — only actual
    comments can suppress a finding.
    """
    import io
    import tokenize

    comments: list[tuple[int, int, str]] = []
    try:
        for token in tokenize.generate_tokens(io.StringIO(source).readline):
            if token.type == tokenize.COMMENT:
                comments.append((token.start[0], token.start[1], token.string))
    except tokenize.TokenError:  # pragma: no cover - parse errors reported separately
        pass
    return comments


def _collect_suppressions(source: str, path: str) -> tuple[list[_Suppression],
                                                           list[Finding]]:
    suppressions: list[_Suppression] = []
    hygiene: list[Finding] = []
    for number, column, text in _comment_tokens(source):
        match = _SUPPRESSION_RE.search(text)
        if match is None:
            continue
        rule_ids = tuple(part.strip() for part in match.group("rules").split(",")
                         if part.strip())
        justification = (match.group("why") or "").strip()
        covers = number
        if column == 0 or source.splitlines()[number - 1][:column].strip() == "":
            # A comment-only line shields the next source line.
            covers = number + 1
        if not justification:
            hygiene.append(Finding(
                rule=HYGIENE_RULE, path=path, line=number,
                column=column,
                message=f"suppression allow[{', '.join(rule_ids)}] has no "
                        "justification",
                hint="write `# repro-analysis: allow[RULE] -- <why this is "
                     "safe>`; unjustified suppressions are findings"))
            continue
        suppressions.append(_Suppression(line=number, covers=covers,
                                         rules=rule_ids,
                                         justification=justification))
    return suppressions, hygiene


def lint_source(source: str, path: str,
                rules: Sequence[LintRule] | None = None,
                check_unused_suppressions: bool | None = None) -> list[Finding]:
    """Lint one module's source text; returns findings (suppressed included).

    ``check_unused_suppressions`` defaults to "only when the full registered
    rule set runs" — under a partial rule set a suppression for an unselected
    rule is legitimately idle, not stale.
    """
    full_set = rules is None
    selected = registered_rules() if rules is None else tuple(rules)
    if check_unused_suppressions is None:
        check_unused_suppressions = full_set
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [Finding(rule=HYGIENE_RULE, path=path,
                        line=error.lineno or 1, column=error.offset or 0,
                        message=f"file does not parse: {error.msg}",
                        hint="fix the syntax error; unparseable files cannot "
                             "be verified")]
    suppressions, findings = _collect_suppressions(source, path)
    context = ModuleContext(tree, source, path)
    for rule in selected:
        findings.extend(rule.check(context))
    for finding in findings:
        if finding.rule == HYGIENE_RULE:
            continue
        for suppression in suppressions:
            if (finding.line == suppression.covers
                    and (finding.rule in suppression.rules
                         or "*" in suppression.rules)):
                finding.suppressed = True
                finding.justification = suppression.justification
                suppression.used = True
                break
    if check_unused_suppressions:
        for suppression in suppressions:
            if not suppression.used:
                findings.append(Finding(
                    rule=HYGIENE_RULE, path=path, line=suppression.line,
                    column=0,
                    message=f"suppression allow[{', '.join(suppression.rules)}] "
                            "matches no finding",
                    hint="delete the stale suppression — it no longer excuses "
                         "anything"))
    findings.sort(key=lambda f: (f.line, f.column, f.rule))
    return findings


def iter_python_files(paths: Sequence[str | Path]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
    return files


def lint_paths(paths: Sequence[str | Path],
               rules: Sequence[LintRule] | None = None) -> Report:
    """Lint every ``.py`` file under ``paths`` into one :class:`Report`."""
    report = Report()
    for file_path in iter_python_files(paths):
        source = file_path.read_text(encoding="utf-8")
        report.extend(lint_source(source, str(file_path), rules=rules))
    report.sort()
    return report
