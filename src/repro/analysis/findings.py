"""Findings: the one record every analysis pass emits.

Both halves of :mod:`repro.analysis` — the AST invariant linter and the
static plan verifier — report problems as :class:`Finding` objects carrying a
rule identifier, a ``file:line`` anchor, a human message and a concrete fix
hint.  One record type means one JSON schema, one text renderer and one CI
gate (``python -m repro.analysis src/ --format=json`` exits non-zero iff any
*unsuppressed* finding survives).

A finding can be *suppressed* by a justified inline comment (see
:mod:`repro.analysis.linter`); suppressed findings are still reported — with
their justification — so the suppression inventory stays auditable, but they
do not fail the gate.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class Finding:
    """One analysis result anchored to a source location."""

    rule: str
    path: str
    line: int
    column: int
    message: str
    #: A concrete, actionable repair suggestion ("route the increment through
    #: ``EngineStats.bump``", "add the missing bag for atom R(x, y)", ...).
    hint: str = ""
    #: True when a justified inline suppression covers this finding.
    suppressed: bool = False
    #: The justification text of the covering suppression, if any.
    justification: str = ""

    @property
    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.column}"

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
            "hint": self.hint,
            "suppressed": self.suppressed,
            "justification": self.justification,
        }

    def render(self) -> str:
        tail = f" [suppressed: {self.justification}]" if self.suppressed else ""
        hint = f"\n    hint: {self.hint}" if self.hint else ""
        return f"{self.location}: {self.rule}: {self.message}{tail}{hint}"


@dataclass
class Report:
    """All findings of one run, with the gate decision precomputed."""

    findings: list[Finding] = field(default_factory=list)

    @property
    def unsuppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if not finding.suppressed]

    @property
    def suppressed(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.suppressed]

    @property
    def clean(self) -> bool:
        """True when the run passes the CI gate (zero unsuppressed findings)."""
        return not self.unsuppressed

    def extend(self, findings: Iterable[Finding]) -> None:
        self.findings.extend(findings)

    def sort(self) -> None:
        self.findings.sort(key=lambda f: (f.path, f.line, f.column, f.rule))

    def as_dict(self) -> dict:
        by_rule: dict[str, int] = {}
        for finding in self.unsuppressed:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        return {
            "summary": {
                "findings": len(self.unsuppressed),
                "suppressed": len(self.suppressed),
                "clean": self.clean,
                "by_rule": dict(sorted(by_rule.items())),
            },
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent, sort_keys=False)

    def render(self) -> str:
        if not self.findings:
            return "no findings"
        lines = [finding.render() for finding in self.findings]
        lines.append(f"{len(self.unsuppressed)} finding(s), "
                     f"{len(self.suppressed)} suppressed")
        return "\n".join(lines)
