"""The static plan verifier: artifacts are proven well-formed before they run.

The paper's guarantees are conditional: Yannakakis is ``O(N + OUT)`` *if* the
query really is free-connex acyclic, a static TD plan is bounded by the fhtw
witness *if* its bags satisfy the running-intersection property and cover
every atom, PANDA's proof sequence bounds intermediates *if* every step is a
legal polymatroid rewrite, and the vectorized kernels compute the right
⊕-aggregates *if* the semiring's values fit the registered array reductions.
The runtime re-checks none of this — plans are rebuilt from cached
:class:`~repro.engine.plan_cache.PlanRecipe` objects with ``validate=False``
and shipped to shard workers as bare bag tuples — so a corrupted or poisoned
recipe would execute silently and return wrong answers.

This module is the gate.  Every checker returns a list of *problems* (plain
actionable strings); empty means verified.  :func:`assert_valid` converts
problems into a :class:`PlanVerificationError`.  The engine verifies every
recipe before it enters the plan cache (``Engine._resolve_plan``, counted by
``EngineStats.plans_verified``) and :func:`verify_dispatch` re-checks a plan
once before its first partition-parallel dispatch
(:func:`repro.engine.parallel.run_partitioned`), including the
pickle-safety of process-worker payloads.

Checks implemented here:

* **running intersection** — the bags admit a join tree in which, for every
  variable, the bags containing it form a connected subtree (checked
  explicitly on the GYO-produced tree, not assumed from it);
* **atom/variable coverage** — every query atom fits inside some bag, and
  bags use only the query's variables;
* **free-variable safety** — the free variables stay projectable: bags plus
  an atom over the free variables remain acyclic (free-connex);
* **semijoin-order validity** — an acyclic structure admits a full-reducer
  semijoin order, i.e. GYO reduction succeeds (Yannakakis' precondition);
* **width sanity** — cached widths satisfy ``subw ≤ fhtw + ε`` with an
  explicit slack, never a raw float comparison (the PR 2 lesson);
* **semiring ↔ kernel capability** — a semiring registered for vectorized
  kernels must carry scalar values; tuple-valued semirings (top-k min-plus)
  must fall back to the reference path;
* **proof-step well-formedness** — every Shannon-flow proof step is a legal
  rewrite applied to terms that exist, and the replayed sequence produces
  every target term.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Iterable, Mapping, Sequence

from repro.flows.proof_sequence import ProofSequence
from repro.flows.proof_steps import (
    ProofStepError,
    Term,
    step_is_value_preserving,
)
from repro.optimizer.planner import PlanKind, QueryPlan
from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import JoinTree, gyo_reduction, is_free_connex
from repro.utils.varsets import format_varset

#: Slack for comparing LP-derived widths.  The LP solver's objective carries
#: ~1e-9 error (see :data:`repro.panda.executor.TRUNCATION_SLACK` for the bug
#: this convention comes from), so width consistency is checked with an
#: explicit epsilon, never with raw ``<=``.
WIDTH_SLACK = 1e-6


class PlanVerificationError(ValueError):
    """A plan artifact failed static verification; ``problems`` lists why."""

    def __init__(self, what: str, problems: Sequence[str]) -> None:
        self.what = what
        self.problems = list(problems)
        details = "\n".join(f"  - {problem}" for problem in self.problems)
        super().__init__(f"{what} failed static verification:\n{details}")


def assert_valid(what: str, problems: Sequence[str]) -> None:
    """Raise :class:`PlanVerificationError` when ``problems`` is non-empty."""
    if problems:
        raise PlanVerificationError(what, problems)


# ---------------------------------------------------------------------------
# bag-structure checks
# ---------------------------------------------------------------------------

def _connected_under(tree: JoinTree, members: list[int]) -> bool:
    """True when ``members`` induce a connected subtree of ``tree``."""
    if len(members) <= 1:
        return True
    member_set = set(members)
    adjacency: dict[int, list[int]] = {index: [] for index in members}
    for child, parent in tree.edges():
        if child in member_set and parent in member_set:
            adjacency[child].append(parent)
            adjacency[parent].append(child)
    seen = {members[0]}
    frontier = [members[0]]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in seen:
                seen.add(neighbour)
                frontier.append(neighbour)
    return len(seen) == len(members)


def verify_bags(bags: Sequence[Iterable[str]],
                query_atoms: Sequence[tuple[str, frozenset[str]]] = (),
                free_variables: Iterable[str] | None = None,
                variables: frozenset[str] | None = None,
                label: str = "decomposition") -> list[str]:
    """Structural verification of one bag set (one tree decomposition).

    ``query_atoms`` are ``(relation, varset)`` pairs to check coverage
    against; ``variables`` bounds the allowed variable universe;
    ``free_variables`` triggers the free-connex (free-variable safety)
    check.  All in the *same* name space as the bags — callers translate.
    """
    problems: list[str] = []
    bag_sets = [frozenset(bag) for bag in bags]
    if not bag_sets:
        return [f"{label} has no bags: a plan cannot execute an empty "
                "decomposition — rebuild the recipe from a fresh estimate"]
    for bag in bag_sets:
        if not bag:
            problems.append(f"{label} contains an empty bag — drop it or "
                            "rebuild the recipe")
    bag_sets = [bag for bag in bag_sets if bag]
    if variables is not None:
        for bag in bag_sets:
            unknown = bag - variables
            if unknown:
                problems.append(
                    f"{label} bag {format_varset(bag)} uses variables "
                    f"{format_varset(frozenset(unknown))} that do not occur "
                    "in the query — the recipe was bound to the wrong query")
    for relation, varset in query_atoms:
        if not any(varset <= bag for bag in bag_sets):
            problems.append(
                f"{label} covers no bag for atom {relation}"
                f"{format_varset(varset)} — its join constraint would be "
                "silently dropped; add a bag containing "
                f"{format_varset(varset)}")
    tree = gyo_reduction(bag_sets)
    if tree is None:
        problems.append(
            f"{label} bags are not acyclic (GYO reduction fails), so no "
            "semijoin full-reducer order exists — the bags do not form a "
            "valid tree decomposition")
    else:
        # Re-check the running-intersection property explicitly on the
        # produced tree instead of trusting the reduction.
        for variable in sorted({v for bag in bag_sets for v in bag}):
            members = [index for index, node in enumerate(tree.nodes)
                       if variable in node]
            if not _connected_under(tree, members):
                problems.append(
                    f"{label} violates the running-intersection property for "
                    f"variable {variable}: the bags containing it do not "
                    "form a connected subtree — joins may equate unrelated "
                    "occurrences")
    if free_variables is not None:
        free = frozenset(free_variables)
        if free and tree is not None and \
                not is_free_connex(bag_sets, free):
            problems.append(
                f"{label} is not free-connex for free variables "
                f"{format_varset(free)}: projecting after the join loses the "
                "O(N + OUT) guarantee — enumerate a free-connex "
                "decomposition instead")
    return problems


def verify_semijoin_order(bags: Sequence[Iterable[str]]) -> list[str]:
    """A full-reducer semijoin order exists iff GYO reduction succeeds."""
    bag_sets = [frozenset(bag) for bag in bags if frozenset(bag)]
    if not bag_sets:
        return ["no bags: nothing to order"]
    if gyo_reduction(bag_sets) is None:
        return ["no full-reducer semijoin order exists: the hypergraph is "
                "cyclic, so Yannakakis-style semijoin reduction is unsound"]
    return []


# ---------------------------------------------------------------------------
# recipe and plan verification
# ---------------------------------------------------------------------------

def _canonical_atoms(query: ConjunctiveQuery,
                     renaming: Mapping[str, str]) -> list[tuple[str, frozenset[str]]]:
    return [(atom.relation, frozenset(renaming[v] for v in atom.varset))
            for atom in query.atoms]


def verify_recipe(recipe, query: ConjunctiveQuery | None = None,
                  renaming: Mapping[str, str] | None = None) -> list[str]:
    """Verify a :class:`~repro.engine.plan_cache.PlanRecipe` before caching.

    ``query``/``renaming`` (the canonical renaming from
    :func:`repro.engine.fingerprint.query_fingerprint`) enable the coverage
    and free-variable checks; without them only the self-contained structure
    is verified.  Returns problems; empty means the recipe may enter the
    plan cache.
    """
    problems: list[str] = []
    if not isinstance(recipe.kind, PlanKind):
        return [f"unknown plan kind {recipe.kind!r}: expected one of "
                f"{[kind.value for kind in PlanKind]}"]
    if not isinstance(recipe.fingerprint, str) or not recipe.fingerprint:
        problems.append("recipe has no fingerprint: cache entries without an "
                        "identity cannot be invalidated or audited")
    fhtw, subw = recipe.fhtw_width, recipe.subw_width
    for name, width in (("fhtw", fhtw), ("subw", subw)):
        if not isinstance(width, (int, float)):
            problems.append(f"{name} width {width!r} is not a number")
    if isinstance(fhtw, (int, float)) and isinstance(subw, (int, float)) \
            and not (math.isnan(fhtw) or math.isnan(subw)):
        if subw > fhtw + WIDTH_SLACK:
            problems.append(
                f"width inversion: subw = {subw:.6g} exceeds fhtw = "
                f"{fhtw:.6g} beyond the {WIDTH_SLACK:g} slack, but the "
                "submodular width never exceeds the fractional hypertree "
                "width — the widths were computed for different queries")
        if min(fhtw, subw) < -WIDTH_SLACK:
            problems.append(
                f"negative width (fhtw = {fhtw:.6g}, subw = {subw:.6g}): "
                "LP width objectives are non-negative")

    canonical_atoms: list[tuple[str, frozenset[str]]] = []
    canonical_free: frozenset[str] | None = None
    canonical_vars: frozenset[str] | None = None
    if query is not None:
        if renaming is None:
            _, renaming = query.canonicalize()
        canonical_atoms = _canonical_atoms(query, renaming)
        canonical_free = frozenset(renaming[v] for v in query.free_variables)
        canonical_vars = frozenset(renaming.values())

    if recipe.kind is PlanKind.STATIC_TD:
        if not recipe.best_bags:
            problems.append(
                "static-TD recipe has no best_bags: the plan cannot be "
                "rebuilt — cache it with the winning decomposition's bags")
        else:
            problems.extend(verify_bags(
                recipe.best_bags, canonical_atoms,
                free_variables=canonical_free, variables=canonical_vars,
                label="static decomposition"))
    elif recipe.kind is PlanKind.ADAPTIVE_PANDA:
        if not recipe.decomposition_bags:
            problems.append(
                "adaptive recipe has no decomposition_bags: adaptive PANDA "
                "unions over free-connex decompositions and cannot run "
                "without them")
        for index, bags in enumerate(recipe.decomposition_bags):
            problems.extend(verify_bags(
                bags, canonical_atoms,
                free_variables=canonical_free, variables=canonical_vars,
                label=f"adaptive decomposition #{index}"))
    elif recipe.kind is PlanKind.YANNAKAKIS:
        if not (recipe.is_acyclic and recipe.is_free_connex):
            problems.append(
                "Yannakakis recipe for a query not flagged free-connex "
                "acyclic: semijoin reduction is unsound on cyclic queries — "
                "re-plan as static-TD or adaptive")
        if query is not None:
            problems.extend(verify_semijoin_order(
                [varset for _, varset in canonical_atoms]))
            if canonical_free and not is_free_connex(
                    [varset for _, varset in canonical_atoms], canonical_free):
                problems.append(
                    "query is acyclic but not free-connex for its free "
                    f"variables {format_varset(canonical_free)}: Yannakakis "
                    "loses the O(N + OUT) bound — plan a free-connex "
                    "decomposition instead")
    return problems


def verify_plan(plan: QueryPlan) -> list[str]:
    """Verify an executable plan in its own (original) variable space."""
    query = plan.query
    atoms = [(atom.relation, atom.varset) for atom in query.atoms]
    problems: list[str] = []
    if plan.kind is PlanKind.STATIC_TD:
        if plan.decomposition is None:
            problems.append("static-TD plan carries no decomposition")
        else:
            problems.extend(verify_bags(
                plan.decomposition.bags, atoms,
                free_variables=query.free_variables,
                variables=query.variables, label="static decomposition"))
    elif plan.kind is PlanKind.ADAPTIVE_PANDA:
        for index, decomposition in enumerate(plan.decompositions):
            problems.extend(verify_bags(
                decomposition.bags, atoms,
                free_variables=query.free_variables,
                variables=query.variables,
                label=f"adaptive decomposition #{index}"))
    elif plan.kind is PlanKind.YANNAKAKIS:
        problems.extend(verify_semijoin_order(
            [varset for _, varset in atoms]))
        if query.free_variables and not is_free_connex(
                [varset for _, varset in atoms], query.free_variables):
            problems.append(
                "Yannakakis plan for a non-free-connex projection: the "
                "semijoin order cannot make the projection linear")
    return problems


# ---------------------------------------------------------------------------
# shard-payload pickle safety (the runtime complement of lint rule REP104)
# ---------------------------------------------------------------------------

def verify_shard_payload(payload: Mapping | Sequence,
                         label: str = "shard payload",
                         _depth: int = 0) -> list[str]:
    """Reject process-worker payloads that carry unpicklable callables.

    Walks the payload's plain containers (dict/list/tuple/set) to a bounded
    depth; any function, lambda or bound method found there would die inside
    the process pool as an opaque ``BrokenProcessPool`` — reject it here,
    with a name, before dispatch.
    """
    problems: list[str] = []
    if _depth > 6:
        return problems
    items: Iterable
    if isinstance(payload, Mapping):
        items = payload.items()
    else:
        items = enumerate(payload)
    for key, value in items:
        where = f"{label}[{key!r}]"
        if callable(value) and not isinstance(value, type):
            problems.append(
                f"{where} holds a callable ({getattr(value, '__qualname__', value)!r}): "
                "lambdas/closures/bound methods cannot cross the process "
                "boundary — ship plain data and rebuild behaviour in the "
                "worker")
        elif isinstance(value, (dict, list, tuple, set, frozenset)):
            problems.extend(verify_shard_payload(
                value if isinstance(value, dict) else list(value),
                label=where, _depth=_depth + 1))
    return problems


def verify_cluster_task(task: Mapping) -> list[str]:
    """Statically verify a cluster dispatch task before it reaches a worker.

    A task is the cluster coordinator's unit of work: identity fields
    (``task_id``/``shard``/``attempt``), the process-executor shard payload,
    and optionally a chaos-harness ``fault`` directive.  Everything crosses a
    process boundary, so the payload must pass the pickle-safety walk of
    :func:`verify_shard_payload` and the fault directive must be a plain dict
    naming a known fault kind — a malformed directive would otherwise fail
    *inside* the worker as a generic task error and be retried pointlessly.
    """
    problems: list[str] = []
    if not isinstance(task.get("task_id"), str) or not task.get("task_id"):
        problems.append("cluster task needs a non-empty string 'task_id'")
    if not isinstance(task.get("shard"), int):
        problems.append("cluster task needs an integer 'shard' index")
    attempt = task.get("attempt")
    if not isinstance(attempt, int) or attempt < 1:
        problems.append("cluster task needs a 1-based integer 'attempt'")
    payload = task.get("payload")
    if not isinstance(payload, Mapping):
        problems.append("cluster task needs a mapping 'payload' "
                        "(the process-executor shard payload)")
    else:
        problems.extend(verify_shard_payload(payload, label="cluster payload"))
    directive = task.get("fault")
    if directive is not None:
        from repro.testing.faults import FAULT_KINDS

        if not isinstance(directive, dict):
            problems.append(
                f"cluster task fault directive must be a plain dict, "
                f"got {type(directive).__name__}")
        elif directive.get("kind") not in FAULT_KINDS:
            problems.append(
                f"cluster task fault directive kind {directive.get('kind')!r} "
                f"is not one of {FAULT_KINDS}")
    return problems


def verify_dispatch(plan: QueryPlan) -> None:
    """Verify a plan once before partition-parallel dispatch (memoized).

    The result is cached on the plan object, so repeated sharded executions
    of one prepared plan pay the structural check exactly once — the
    warm-path overhead budget (<5% on ``bench_engine``) stays intact.
    """
    if getattr(plan, "_dispatch_verified", False):
        return
    assert_valid(f"{plan.kind.value} plan for {plan.query}", verify_plan(plan))
    plan._dispatch_verified = True  # type: ignore[attr-defined]


# ---------------------------------------------------------------------------
# semiring ↔ kernel capability compatibility
# ---------------------------------------------------------------------------

def verify_semiring_kernel_compatibility(semiring) -> list[str]:
    """A kernel-registered semiring must carry scalar (array-able) values.

    The vectorized kernels reduce annotation *arrays*; a semiring whose
    values are tuples or objects (top-k min-plus keeps the k best costs as a
    sorted tuple) cannot be expressed as an ``np.minimum.reduceat``-style
    reduction and must take the reference Python path.  A spec registered
    for such a semiring would silently compute element-wise garbage.
    """
    from repro.relational.kernels import kernel_supported_semirings

    problems: list[str] = []
    scalar = all(isinstance(value, (bool, int, float))
                 for value in (semiring.zero, semiring.one))
    if semiring.name in kernel_supported_semirings() and not scalar:
        problems.append(
            f"semiring {semiring.name!r} carries non-scalar values "
            f"(zero={semiring.zero!r}, one={semiring.one!r}) but is "
            "registered for vectorized kernels — tuple-valued semirings "
            "must route to the reference fallback path")
    return problems


# ---------------------------------------------------------------------------
# Shannon-flow proof-step well-formedness
# ---------------------------------------------------------------------------

def verify_proof_sequence(sequence: ProofSequence) -> list[str]:
    """Every step must be a legal rewrite on terms that exist, and the
    replayed sequence must produce every target term.

    A malformed step is exactly how PANDA's measure-table interpretation
    goes wrong: a step consuming a term that is not present corresponds to
    partitioning a table that was never materialised.
    """
    problems: list[str] = []
    terms = Counter(sequence.initial_sources)
    for index, step in enumerate(sequence.steps):
        consumed = step.consumed()
        produced = step.produced()
        # Value direction: decomposition/composition preserve the coefficient
        # sum exactly; monotonicity/submodularity may only lose value.  A
        # step whose produced terms cover *more* than it consumed would
        # manufacture entropy out of nothing.
        delta: Counter = Counter()
        for term in consumed:
            for subset, coeff in term.coefficients().items():
                delta[subset] -= coeff
        for term in produced:
            for subset, coeff in term.coefficients().items():
                delta[subset] += coeff
        if step_is_value_preserving(step) and any(delta.values()):
            problems.append(
                f"step {index + 1} ({step}) claims to preserve value but "
                "changes the coefficient identity — decomposition and "
                "composition must rewrite h-terms exactly")
        try:
            step.apply(terms)
        except ProofStepError as error:
            problems.append(
                f"step {index + 1} is not applicable: {error} — earlier "
                "steps never produced the consumed term")
            return problems
    for target, count in sequence.targets.items():
        have = terms[Term(target)]
        if have < count:
            problems.append(
                f"replayed sequence produces h{format_varset(target)} with "
                f"multiplicity {have} < required {count}: the proof does "
                "not establish its Shannon-flow inequality")
    return problems
