"""Tree decompositions of conjunctive queries (Section 3.4).

Following the paper, a tree decomposition (TD) of a query ``Q`` is specified
by its set of *bags*: variable sets that (1) form an acyclic query and
(2) jointly cover every atom of ``Q``.  A TD is *free-connex* when the acyclic
query over the bags remains acyclic after an extra atom over the free
variables is added; for Boolean and full queries every TD is free-connex.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import JoinTree, gyo_reduction, is_acyclic, is_free_connex
from repro.utils.varsets import format_varset


class TreeDecomposition:
    """A tree decomposition identified by its set of bags.

    Bags are stored canonically: as a sorted tuple of frozensets with bags
    that are subsets of other bags removed (they carry no information for the
    cost model, which only looks at the maximum bag).
    """

    def __init__(self, bags: Iterable[Iterable[str]]) -> None:
        raw = [frozenset(bag) for bag in bags if frozenset(bag)]
        if not raw:
            raise ValueError("a tree decomposition needs at least one non-empty bag")
        maximal = [bag for bag in raw
                   if not any(bag < other for other in raw)]
        unique = sorted(set(maximal), key=lambda bag: (len(bag), sorted(bag)))
        self.bags: tuple[frozenset[str], ...] = tuple(unique)

    @property
    def variables(self) -> frozenset[str]:
        result: set[str] = set()
        for bag in self.bags:
            result.update(bag)
        return frozenset(result)

    @property
    def width_hint(self) -> int:
        """Size of the largest bag minus one (the classical tree width proxy)."""
        return max(len(bag) for bag in self.bags) - 1

    # ------------------------------------------------------------ validation
    def is_acyclic(self) -> bool:
        """True when the bags form an acyclic hypergraph."""
        return is_acyclic(self.bags)

    def covers_query(self, query: ConjunctiveQuery) -> bool:
        """True when every atom of the query fits in some bag."""
        return all(any(atom.varset <= bag for bag in self.bags)
                   for atom in query.atoms)

    def is_valid_for(self, query: ConjunctiveQuery) -> bool:
        """Conditions (1) and (2) of Section 3.4."""
        return (self.variables <= query.variables
                and self.is_acyclic()
                and self.covers_query(query))

    def is_free_connex_for(self, free_variables: Iterable[str]) -> bool:
        """Free-connex condition: bags plus an atom over the free variables stay acyclic."""
        return is_free_connex(self.bags, free_variables)

    # -------------------------------------------------------------- structure
    def join_tree(self) -> JoinTree:
        """A join tree over the bags (the bags are acyclic by construction)."""
        tree = gyo_reduction(self.bags)
        if tree is None:
            raise ValueError("the bags of this decomposition are not acyclic")
        return tree

    def dominates(self, other: "TreeDecomposition") -> bool:
        """Domination order used to prune redundant decompositions.

        ``self`` dominates ``other`` when every bag of ``self`` is contained
        in some bag of ``other``.  For any monotone set function ``h`` this
        implies ``max_B∈self h(B) <= max_B∈other h(B)``, so dominated TDs can
        never improve either the fractional hypertree width or the submodular
        width.
        """
        return all(any(bag <= other_bag for other_bag in other.bags)
                   for bag in self.bags)

    # --------------------------------------------------------------- dunders
    def __len__(self) -> int:
        return len(self.bags)

    def __iter__(self):
        return iter(self.bags)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeDecomposition):
            return NotImplemented
        return set(self.bags) == set(other.bags)

    def __hash__(self) -> int:
        return hash(frozenset(self.bags))

    def __str__(self) -> str:
        return "TD[" + ", ".join(format_varset(bag) for bag in self.bags) + "]"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return str(self)


def trivial_decomposition(query: ConjunctiveQuery) -> TreeDecomposition:
    """The one-bag decomposition that puts every variable together."""
    return TreeDecomposition([query.variables])


def decomposition_from_join_tree(nodes: Sequence[Iterable[str]]) -> TreeDecomposition:
    """Wrap explicit bags (e.g. from a join tree of an acyclic query) as a TD."""
    return TreeDecomposition(nodes)
