"""Tree decompositions and their enumeration (Section 3.4)."""

from repro.decompositions.treedecomp import (
    TreeDecomposition,
    decomposition_from_join_tree,
    trivial_decomposition,
)
from repro.decompositions.enumerate import (
    TooManyVariablesError,
    decomposition_from_elimination_order,
    enumerate_tree_decompositions,
    free_connex_decompositions,
    nonredundant_decompositions,
)

__all__ = [
    "TreeDecomposition",
    "trivial_decomposition",
    "decomposition_from_join_tree",
    "decomposition_from_elimination_order",
    "enumerate_tree_decompositions",
    "free_connex_decompositions",
    "nonredundant_decompositions",
    "TooManyVariablesError",
]
