"""Enumeration of (free-connex) tree decompositions.

The width measures of Sections 4 and 5 minimise or maximise over the set
``TD(Q)`` of free-connex tree decompositions.  Up to redundancy, every tree
decomposition is refined by one induced by a *variable elimination order*:
eliminating a variable creates a bag containing the variable and its current
neighbours, after which the neighbours are connected and the variable removed.
This module enumerates exactly those decompositions (restricting elimination
orders to put the existential variables first, which yields free-connex TDs
for queries with projections) and prunes dominated ones, since dominated TDs
can change neither ``fhtw`` nor ``subw``.
"""

from __future__ import annotations

from itertools import permutations
from typing import Iterable, Sequence

from repro.decompositions.treedecomp import TreeDecomposition, trivial_decomposition
from repro.query.cq import ConjunctiveQuery


class TooManyVariablesError(ValueError):
    """Raised when a query is too large for exhaustive TD enumeration."""


def decomposition_from_elimination_order(query: ConjunctiveQuery,
                                         order: Sequence[str]) -> TreeDecomposition:
    """The tree decomposition induced by eliminating variables in ``order``.

    Variables not listed in ``order`` are placed in a single final bag (this
    is how the free variables of a non-full query are handled: they are never
    eliminated, and the final bag keeps them together, which makes the
    decomposition free-connex).
    """
    remaining_edges: list[frozenset[str]] = [atom.varset for atom in query.atoms]
    bags: list[frozenset[str]] = []
    eliminated: set[str] = set()
    for variable in order:
        if variable in eliminated:
            continue
        touching = [edge for edge in remaining_edges if variable in edge]
        if touching:
            bag = frozenset().union(*touching)
        else:
            bag = frozenset({variable})
        bags.append(bag)
        eliminated.add(variable)
        new_edge = bag - {variable}
        remaining_edges = [edge for edge in remaining_edges if variable not in edge]
        if new_edge:
            remaining_edges.append(new_edge)
    leftover = query.variables - eliminated
    if leftover:
        bags.append(frozenset(leftover))
    return TreeDecomposition(bags)


def enumerate_tree_decompositions(query: ConjunctiveQuery,
                                  max_variables: int = 9,
                                  include_trivial: bool = True,
                                  only_nonredundant: bool = True) -> list[TreeDecomposition]:
    """All free-connex tree decompositions of ``query`` (up to redundancy).

    Elimination orders permute the existential variables; the free variables
    stay in the final bag, which guarantees the free-connex property.  For
    Boolean and full queries all variables are permuted.  Decompositions that
    are dominated by another decomposition are removed when
    ``only_nonredundant`` is set (the default), because they cannot affect any
    width computed in this library.
    """
    variables = query.variables
    if len(variables) > max_variables:
        raise TooManyVariablesError(
            f"query has {len(variables)} variables; exhaustive TD enumeration is "
            f"limited to {max_variables} (raise max_variables to override)")
    if query.is_boolean or query.is_full:
        to_eliminate = sorted(variables)
    else:
        to_eliminate = sorted(query.bound_variables)

    found: set[TreeDecomposition] = set()
    if to_eliminate:
        for order in permutations(to_eliminate):
            decomposition = decomposition_from_elimination_order(query, order)
            if not decomposition.is_valid_for(query):
                continue
            if not decomposition.is_free_connex_for(query.free_variables):
                continue
            found.add(decomposition)
    if include_trivial or not found:
        trivial = trivial_decomposition(query)
        if trivial.is_free_connex_for(query.free_variables):
            found.add(trivial)
    decompositions = sorted(found, key=lambda td: (len(td.bags), str(td)))
    if only_nonredundant:
        decompositions = nonredundant_decompositions(decompositions)
    return decompositions


def nonredundant_decompositions(decompositions: Iterable[TreeDecomposition]) -> list[TreeDecomposition]:
    """Keep only decompositions that are minimal under the domination order.

    A decomposition dominated by a *different* decomposition is dropped; among
    decompositions that dominate each other (identical bag sets are already
    collapsed by ``TreeDecomposition``) one representative is kept.
    """
    decompositions = list(dict.fromkeys(decompositions))
    kept: list[TreeDecomposition] = []
    for candidate in decompositions:
        dominated_by_other = any(
            other is not candidate and other.dominates(candidate) and not candidate.dominates(other)
            for other in decompositions)
        if dominated_by_other:
            continue
        mutually_dominating_kept = any(
            other.dominates(candidate) and candidate.dominates(other) for other in kept)
        if mutually_dominating_kept:
            continue
        kept.append(candidate)
    return kept


def free_connex_decompositions(query: ConjunctiveQuery,
                               max_variables: int = 9) -> list[TreeDecomposition]:
    """Alias matching the paper's ``TD(Q)`` notation."""
    return enumerate_tree_decompositions(query, max_variables=max_variables)
