"""Deterministic fault injection: one seedable API for every chaos test.

Two injection surfaces, matching where real systems break:

* **Storage faults** — :class:`FlakyBackend` wraps a real backend and raises
  on the k-th index build, reproducing a failing disk/page mid-query.  It
  grew up inside ``tests/test_service_faults.py``; it lives here so the
  service tests, the cluster chaos battery and future PRs inject the same
  fault through the same object.
* **Dispatch faults** — :class:`FaultPlan` is the coordinator-side schedule
  of worker-level faults for :mod:`repro.engine.cluster`.  The coordinator
  consults it at every dispatch and ack; the plan answers with picklable
  *directives* (plain dicts) that ride inside the task payload, and
  :func:`perform_fault` interprets them inside the worker process.  All four
  classic faults are covered: **kill-on-nth-task** (hard worker crash via
  ``os._exit``), **delay-shard** (a straggler), **drop-ack** (a lost result
  message) and **flaky-payload** (a task that raises on its first attempts).

Every decision a plan makes is a pure function of its configuration and the
dispatch order, so a chaos run replays identically — there is no wall-clock
or RNG state hidden in the plan.  The optional ``seed`` feeds
:func:`repro.utils.retry.seeded_fraction` for the probabilistic
``raise_rate`` mode, which is likewise hash-deterministic per (shard,
attempt).
"""

from __future__ import annotations

import os
import threading
import time
from dataclasses import dataclass, field

from repro.relational.storage import StorageBackend
from repro.utils.retry import seeded_fraction

#: The index-building methods FlakyBackend can be told to fail.
ALL_INDEX_METHODS = ("hash_index", "key_set", "group_index", "trie")

#: Fault directive kinds perform_fault understands (also the set the plan
#: verifier accepts inside cluster task payloads).
FAULT_KINDS = ("exit", "sleep", "raise")


class FaultInjected(RuntimeError):
    """The error raised by an injected ``raise`` fault — a distinct type, so
    tests can tell an injected failure from a real bug in the path under
    test."""


def perform_fault(directive: dict) -> None:
    """Interpret a fault directive inside a worker (or any victim).

    ``{"kind": "exit"}`` kills the process outright (``os._exit`` — no
    cleanup, no exception, exactly like a segfault or OOM kill);
    ``{"kind": "sleep", "seconds": s}`` delays, manufacturing a straggler;
    ``{"kind": "raise"}`` raises :class:`FaultInjected`, the soft task
    failure.  Unknown kinds raise ``ValueError`` so a typo in a chaos test
    cannot silently disable its fault.
    """
    kind = directive.get("kind")
    if kind == "exit":
        os._exit(int(directive.get("code", 17)))
    elif kind == "sleep":
        time.sleep(float(directive.get("seconds", 0.1)))
    elif kind == "raise":
        raise FaultInjected(directive.get("message", "injected task fault"))
    else:
        raise ValueError(f"unknown fault directive kind {kind!r}")


@dataclass
class FaultPlan:
    """A deterministic, seedable schedule of dispatch-level faults.

    The cluster coordinator calls :meth:`task_fault` once per dispatched
    task (in dispatch order) and :meth:`drop_ack` once per received result.
    Configuration:

    ``kill_on_task``
        The 1-based dispatch ordinal whose task carries an ``exit``
        directive — whichever worker draws that task dies mid-task.  Fires
        exactly once; the retried task is clean, so the query recovers.
    ``delay_shard`` / ``delay_seconds``
        The shard whose *first* dispatch sleeps before executing — the
        deterministic straggler.  Speculative re-dispatches of the same
        shard are never delayed, so speculation observably wins.
    ``flaky_shard`` / ``flaky_failures``
        The shard whose first ``flaky_failures`` attempts raise
        :class:`FaultInjected`; set it ``>= max_attempts`` to force retry
        exhaustion and exercise the serial-degradation path.
    ``drop_ack_shard``
        The shard whose first successful result message is discarded by the
        coordinator, as if the ack were lost in transit; the shard retries.
    ``raise_rate`` / ``seed``
        Hash-deterministic probabilistic failures for soak-style tests:
        attempt ``a`` of shard ``s`` raises iff
        ``seeded_fraction(seed, s, a) < raise_rate``.

    The mutable counters (`dispatched`, fired flags) are guarded by a lock
    so a plan shared with speculative dispatch paths stays consistent.
    """

    kill_on_task: int | None = None
    kill_exit_code: int = 17
    delay_shard: int | None = None
    delay_seconds: float = 0.4
    flaky_shard: int | None = None
    flaky_failures: int = 1
    drop_ack_shard: int | None = None
    raise_rate: float = 0.0
    seed: int = 0
    #: Dispatch ordinal counter (1-based after the first call).
    dispatched: int = 0
    _kill_fired: bool = False
    _drop_fired: bool = False
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def task_fault(self, shard: int, attempt: int,
                   speculative: bool = False) -> dict | None:
        """The directive (or ``None``) for one dispatch of ``shard``."""
        with self._lock:
            self.dispatched += 1
            ordinal = self.dispatched
            if (self.kill_on_task is not None and not self._kill_fired
                    and ordinal >= self.kill_on_task):
                self._kill_fired = True
                return {"kind": "exit", "code": self.kill_exit_code}
        if speculative:
            # Speculative copies run clean: the harness measures whether the
            # coordinator routes around the fault, not whether it can be
            # re-injected forever.
            return None
        if shard == self.delay_shard and attempt == 1:
            return {"kind": "sleep", "seconds": self.delay_seconds}
        if shard == self.flaky_shard and attempt <= self.flaky_failures:
            return {"kind": "raise",
                    "message": f"flaky payload: shard {shard} attempt {attempt}"}
        if self.raise_rate > 0 and \
                seeded_fraction(self.seed, shard, attempt) < self.raise_rate:
            return {"kind": "raise",
                    "message": f"seeded fault: shard {shard} attempt {attempt}"}
        return None

    def drop_ack(self, shard: int, speculative: bool = False) -> bool:
        """True when the coordinator should pretend this ack never arrived."""
        if speculative or shard != self.drop_ack_shard:
            return False
        with self._lock:
            if self._drop_fired:
                return False
            self._drop_fired = True
            return True


# ---------------------------------------------------------------------------
# storage-level faults
# ---------------------------------------------------------------------------

class FlakyBackend(StorageBackend):
    """A delegating backend that raises on the k-th index build.

    ``share()`` returns the wrapper itself (mirroring the base-class
    contract), so the failure follows the relation through every renamed
    facade the evaluator creates.  ``supports_kernels`` stays ``False``: the
    point is to fail inside the tuple-at-a-time index machinery.
    """

    supports_kernels = False

    def __init__(self, inner: StorageBackend, fail_on: tuple[str, ...],
                 after: int = 1) -> None:
        super().__init__()
        self._inner = inner
        self._fail_on = fail_on
        self._after = after
        self.index_calls = 0

    @property
    def kind(self) -> str:
        # Derived relations inherit the wrapped engine's kind, so answers
        # built from a flaky relation resolve to a real backend.
        return self._inner.kind

    def _maybe_fail(self, method: str) -> None:
        if method in self._fail_on:
            self.index_calls += 1
            if self.index_calls >= self._after:
                raise RuntimeError(
                    f"injected fault: {method} build #{self.index_calls}")

    def share(self) -> "FlakyBackend":
        self.shared = True
        self._inner.share()
        return self

    def heal(self) -> None:
        """Stop injecting faults (the 'operator replaced the disk' event)."""
        self._fail_on = ()

    # -- delegation ---------------------------------------------------------
    def __len__(self):
        return len(self._inner)

    def iter_rows(self):
        return self._inner.iter_rows()

    def row_set(self):
        return self._inner.row_set()

    def contains(self, row):
        return self._inner.contains(row)

    def add(self, row):
        self._inner.add(row)

    def fork(self):
        return FlakyBackend(self._inner.fork(), self._fail_on, self._after)

    def spawn(self, rows, assume_unique=False):
        return self._inner.spawn(rows, assume_unique=assume_unique)

    def has_cached_index(self, key_positions):
        return self._inner.has_cached_index(key_positions)

    def hash_index(self, key_positions):
        self._maybe_fail("hash_index")
        return self._inner.hash_index(key_positions)

    def key_set(self, key_positions):
        self._maybe_fail("key_set")
        return self._inner.key_set(key_positions)

    def degree_index(self, given_positions, value_position):
        return self._inner.degree_index(given_positions, value_position)

    def group_index(self, given_positions, value_positions):
        self._maybe_fail("group_index")
        return self._inner.group_index(given_positions, value_positions)

    def trie(self, positions):
        self._maybe_fail("trie")
        return self._inner.trie(positions)

    def project_backend(self, positions):
        return self._inner.project_backend(positions)


def flaky_database(query, *, after: int = 1, size: int = 50, domain: int = 12,
                   seed: int = 11,
                   methods: tuple[str, ...] = ALL_INDEX_METHODS):
    """A random database whose first relation fails its ``after``-th index
    build — the shared fixture behind the service fault tests."""
    from repro.datagen import random_graph_database

    database = random_graph_database(query, size=size, domain=domain, seed=seed)
    name = database.relation_names()[0]
    flaky = FlakyBackend(database[name]._backend, methods, after)
    database[name]._backend = flaky
    return database, flaky
