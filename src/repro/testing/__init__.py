"""Shared deterministic test instrumentation (fault injection, chaos plans).

This package is importable from production code paths — the cluster worker
loop interprets fault directives through :mod:`repro.testing.faults` — but it
is only ever *activated* by tests and benchmarks: with no fault plan
installed, nothing here runs.
"""

from repro.testing.faults import (
    ALL_INDEX_METHODS,
    FaultInjected,
    FaultPlan,
    FlakyBackend,
    flaky_database,
    perform_fault,
)

__all__ = [
    "ALL_INDEX_METHODS",
    "FaultInjected",
    "FaultPlan",
    "FlakyBackend",
    "flaky_database",
    "perform_fault",
]
