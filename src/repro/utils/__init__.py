"""Small shared utilities: variable sets and rational-arithmetic helpers."""

from repro.utils.varsets import (
    VarSet,
    format_varset,
    powerset,
    proper_nonempty_subsets,
    varset,
)
from repro.utils.rationals import (
    as_fraction,
    common_denominator,
    rationalize,
    scale_to_integers,
)

__all__ = [
    "VarSet",
    "varset",
    "format_varset",
    "powerset",
    "proper_nonempty_subsets",
    "as_fraction",
    "rationalize",
    "common_denominator",
    "scale_to_integers",
]
