"""Deterministic retry policies: exponential backoff with seeded jitter.

Retries in a distributed dispatch loop have two classic failure modes, and
this module is built so both are *testable*:

* **thundering herds** — N shards failing together and all retrying at the
  same instant.  The cure is jitter, but random jitter makes failure
  scheduling unreproducible, which is poison for a deterministic chaos
  harness.  :class:`RetryPolicy` therefore derives its jitter from a keyed
  hash of ``(seed, key, attempt)``: every (shard, attempt) pair gets its own
  spread-out delay, and the whole schedule replays bit-identically for a
  given seed.
* **runaway retries** — attempt accounting scattered across call sites lets
  concurrent failure paths (a worker death *and* an error ack for the same
  shard) each grant themselves "one more try".  :class:`RetryBudget`
  centralizes the ledger behind one lock, so the total number of granted
  attempts per key can never exceed ``policy.max_attempts`` no matter how
  many threads ask.
"""

from __future__ import annotations

import hashlib
import threading
from dataclasses import dataclass


def seeded_fraction(seed: int, *parts: object) -> float:
    """A deterministic pseudo-random fraction in ``[0, 1)`` from a key.

    Stable across processes and Python versions (unlike ``hash()``, which is
    salted per interpreter): the fraction is read off a BLAKE2b digest of the
    rendered key parts, so the same ``(seed, parts)`` always yields the same
    value — in the coordinator, in a forked worker, and in the test that
    pins the schedule.
    """
    digest = hashlib.blake2b(
        ":".join(str(part) for part in (seed, *parts)).encode("utf-8"),
        digest_size=8).digest()
    return int.from_bytes(digest, "big") / 2**64


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with deterministic, seeded jitter.

    ``max_attempts`` counts *total* attempts (the first dispatch plus every
    retry), so ``max_attempts=3`` means at most two retries.  The delay
    before retry ``k`` (1-based) is::

        min(max_delay, base_delay * multiplier**(k-1) * (1 + jitter * u))

    where ``u`` is the seeded fraction for ``(seed, key, k)`` — two shards
    failing in the same round back off at different instants, yet the whole
    schedule is a pure function of the policy and the key.
    """

    max_attempts: int = 3
    base_delay: float = 0.01
    multiplier: float = 2.0
    max_delay: float = 0.25
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("a retry policy needs at least one attempt")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1:
            raise ValueError("the backoff multiplier must be >= 1")
        if self.jitter < 0:
            raise ValueError("the jitter fraction must be >= 0")

    @property
    def max_retries(self) -> int:
        """Retries after the first attempt: ``max_attempts - 1``."""
        return self.max_attempts - 1

    def delay(self, retry: int, key: str = "") -> float:
        """Seconds to wait before retry number ``retry`` (1-based) of ``key``."""
        if retry < 1:
            raise ValueError("retry numbers are 1-based")
        raw = self.base_delay * self.multiplier ** (retry - 1)
        jittered = raw * (1.0 + self.jitter * seeded_fraction(
            self.seed, key, retry))
        return min(self.max_delay, jittered)

    def schedule(self, key: str = "") -> tuple[float, ...]:
        """The full backoff schedule for ``key``: one delay per retry."""
        return tuple(self.delay(retry, key)
                     for retry in range(1, self.max_attempts))


class RetryBudget:
    """A thread-safe attempt ledger enforcing ``policy.max_attempts`` per key.

    Every dispatch — the first one included — draws an attempt number from
    :meth:`grant`; a ``None`` grant means the key is exhausted and the caller
    must degrade instead of retrying.  The grant happens atomically under one
    lock, so concurrent failure observers (an error ack racing a dead-worker
    reap for the same shard) can never jointly over-spend the budget.
    """

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self._attempts: dict[object, int] = {}
        self._lock = threading.Lock()

    def grant(self, key: object) -> int | None:
        """The next attempt number for ``key`` (1-based), or ``None``."""
        with self._lock:
            used = self._attempts.get(key, 0)
            if used >= self.policy.max_attempts:
                return None
            self._attempts[key] = used + 1
            return used + 1

    def attempts(self, key: object) -> int:
        """Attempts granted for ``key`` so far."""
        with self._lock:
            return self._attempts.get(key, 0)

    def exhausted(self, key: object) -> bool:
        with self._lock:
            return self._attempts.get(key, 0) >= self.policy.max_attempts

    def delay_for(self, key: object, attempt: int) -> float:
        """Backoff before ``attempt`` (the value :meth:`grant` returned).

        Attempt 1 is the initial dispatch — no delay; attempt ``k > 1`` is
        retry ``k - 1`` of the policy schedule.
        """
        if attempt <= 1:
            return 0.0
        return self.policy.delay(attempt - 1, key=str(key))
