"""Helpers for turning floating-point LP solutions into exact rationals.

The Shannon-flow machinery (Section 7 of the paper) needs *integral*
inequalities: the dual LP is solved numerically with HiGHS and the resulting
coefficients are reconstructed as small-denominator :class:`fractions.Fraction`
values, after which the identity form is verified exactly.  The helpers in this
module implement that reconstruction.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd
from typing import Iterable, Mapping, Sequence, TypeVar

K = TypeVar("K")

#: Default cap on reconstructed denominators.  Optimal dual solutions of the
#: LPs that arise from small queries have tiny denominators (2, 3, 4, 6, ...);
#: anything larger almost certainly indicates numerical noise.
DEFAULT_MAX_DENOMINATOR = 48


def as_fraction(value: float | int | Fraction,
                max_denominator: int = DEFAULT_MAX_DENOMINATOR) -> Fraction:
    """Convert ``value`` to a :class:`Fraction` with a bounded denominator.

    Values that are already exact (``int`` or ``Fraction``) pass through
    unchanged.  Tiny floating point noise (|value| < 1e-9) is snapped to zero.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if abs(value) < 1e-9:
        return Fraction(0)
    return Fraction(value).limit_denominator(max_denominator)


def rationalize(values: Mapping[K, float],
                max_denominator: int = DEFAULT_MAX_DENOMINATOR) -> dict[K, Fraction]:
    """Rationalize every value of a mapping, dropping exact zeros."""
    result: dict[K, Fraction] = {}
    for key, value in values.items():
        frac = as_fraction(value, max_denominator=max_denominator)
        if frac != 0:
            result[key] = frac
    return result


def common_denominator(values: Iterable[Fraction]) -> int:
    """Least common multiple of the denominators of ``values`` (at least 1)."""
    lcm = 1
    for value in values:
        denominator = Fraction(value).denominator
        lcm = lcm * denominator // gcd(lcm, denominator)
    return lcm


def scale_to_integers(values: Mapping[K, Fraction]) -> tuple[dict[K, int], int]:
    """Scale a rational mapping to integers.

    Returns the integer mapping together with the scaling factor ``d`` (the
    least common denominator), so that ``result[k] == values[k] * d`` for all
    keys.
    """
    lcm = common_denominator(values.values())
    scaled = {key: int(value * lcm) for key, value in values.items()}
    return scaled, lcm


def is_close_to_fraction(value: float, frac: Fraction, tol: float = 1e-6) -> bool:
    """Check that a floating point value is within ``tol`` of a fraction."""
    return abs(value - float(frac)) <= tol


def sequence_as_fractions(values: Sequence[float],
                          max_denominator: int = DEFAULT_MAX_DENOMINATOR) -> list[Fraction]:
    """Rationalize a sequence of values, keeping zeros in place."""
    return [as_fraction(value, max_denominator=max_denominator) for value in values]
