"""Canonical handling of sets of query variables.

Throughout the library, a *variable* is a string (``"X"``, ``"Y"``, ...) and a
*variable set* is a ``frozenset`` of strings.  Entropy vectors, degree
constraints, tree-decomposition bags and bound LPs are all keyed by such
frozensets, so this module centralises construction, formatting and subset
enumeration for them.
"""

from __future__ import annotations

from itertools import chain, combinations
from typing import Iterable, Iterator

#: Type alias used across the code base for readability.
VarSet = frozenset


def varset(variables: Iterable[str] | str) -> frozenset[str]:
    """Build a canonical variable set.

    Accepts any iterable of variable names.  As a convenience a single string
    is interpreted as an iterable of single-character variable names only when
    every character is an uppercase letter (the convention used by the paper's
    examples, e.g. ``varset("XYZ") == {"X", "Y", "Z"}``); otherwise the string
    is treated as one variable name.
    """
    if isinstance(variables, str):
        if variables and all(ch.isalpha() and ch.isupper() for ch in variables):
            return frozenset(variables)
        return frozenset([variables]) if variables else frozenset()
    return frozenset(variables)


def format_varset(variables: frozenset[str]) -> str:
    """Human-readable rendering of a variable set, e.g. ``{X,Y,Z}``.

    Variables are sorted so that output is deterministic; the empty set is
    rendered as the conventional ``{}``.
    """
    if not variables:
        return "{}"
    return "{" + ",".join(sorted(variables)) + "}"


def powerset(variables: Iterable[str]) -> Iterator[frozenset[str]]:
    """Iterate over every subset of ``variables`` (including the empty set).

    Subsets are produced in order of increasing size, and within a size in the
    lexicographic order of the sorted variable names, so iteration order is
    deterministic.
    """
    items = sorted(set(variables))
    subsets = chain.from_iterable(
        combinations(items, size) for size in range(len(items) + 1)
    )
    for subset in subsets:
        yield frozenset(subset)


def proper_nonempty_subsets(variables: Iterable[str]) -> Iterator[frozenset[str]]:
    """Iterate over the non-empty proper subsets of ``variables``."""
    full = frozenset(variables)
    for subset in powerset(full):
        if subset and subset != full:
            yield subset


def union_all(sets: Iterable[Iterable[str]]) -> frozenset[str]:
    """Union of an iterable of variable sets."""
    result: set[str] = set()
    for entry in sets:
        result.update(entry)
    return frozenset(result)
