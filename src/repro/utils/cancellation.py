"""Cooperative query cancellation: deadlines and explicit cancel signals.

The evaluation algorithms are plain synchronous Python — a cancelled query
cannot be pre-empted, it has to *notice*.  A :class:`CancellationToken`
carries the signal (an explicit :meth:`~CancellationToken.cancel` or a
wall-clock deadline) and the algorithms consult it through
:meth:`~repro.relational.operators.WorkCounter.check`, which the engine calls
at every recorded step and the inner loops call on their own cadence (the
generic join checks every :data:`~repro.algorithms.generic_join.CHECK_INTERVAL`
explored partial assignments, the vectorized WCOJ once per frontier level).
A tripped token raises :class:`QueryCancelledError` *mid-plan*, so a query
with a huge intermediate join stops within a bounded amount of extra work
instead of at the next materialised result.

Deadlines are absolute wall-clock times (``time.time()``), so a token's
deadline can be shipped to process-pool shard workers — every worker on the
box reads the same clock and trips within the same instant, which is how the
engine's ``"process"`` executor cancels sharded runs cooperatively.
"""

from __future__ import annotations

import time


class QueryCancelledError(RuntimeError):
    """Raised inside evaluation loops when a cancellation token has tripped."""


class CancellationToken:
    """A cooperative cancellation signal: explicit cancel and/or a deadline.

    The token itself holds no lock: ``cancel()`` flips a single attribute
    (atomic under the GIL) and ``check()`` only reads, so tokens can be shared
    freely between the asyncio service loop, thread-pool shard workers and the
    engine's serving thread.  Tokens are picklable — the deadline is a plain
    wall-clock float — which is what lets the process executor rebuild an
    equivalent token inside each shard worker.
    """

    def __init__(self, deadline: float | None = None) -> None:
        #: Absolute wall-clock deadline (``time.time()`` seconds), or ``None``.
        self.deadline = deadline
        self._cancelled = False
        self._reason: str | None = None

    @classmethod
    def with_timeout(cls, seconds: float | None) -> "CancellationToken":
        """A token that trips ``seconds`` from now (``None`` = no deadline)."""
        if seconds is None:
            return cls()
        return cls(deadline=time.time() + seconds)

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @property
    def reason(self) -> str | None:
        return self._reason

    @property
    def deadline_exceeded(self) -> bool:
        """True when the trip came from the deadline, not an explicit cancel."""
        return self._cancelled and self._reason is not None \
            and self._reason.startswith("deadline exceeded")

    def remaining(self) -> float | None:
        """Seconds until the deadline (may be negative), or ``None``."""
        if self.deadline is None:
            return None
        return self.deadline - time.time()

    def cancel(self, reason: str = "query cancelled") -> None:
        """Trip the token; every subsequent :meth:`check` raises."""
        if not self._cancelled:
            self._reason = reason
            self._cancelled = True

    def check(self) -> None:
        """Raise :class:`QueryCancelledError` if the token has tripped.

        The deadline is evaluated lazily here, so a token created with a
        deadline costs one ``time.time()`` call per check and nothing else.
        """
        if not self._cancelled and self.deadline is not None \
                and time.time() >= self.deadline:
            self.cancel(f"deadline exceeded after {self.deadline:.6f}")
        if self._cancelled:
            raise QueryCancelledError(self._reason or "query cancelled")
