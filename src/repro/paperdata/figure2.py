"""The running example of the paper: Figure 2's instance and the statistics
``S□`` (Eq. (23)) and ``S□full`` (Eq. (16)).

Figure 2 gives a concrete database for the 4-cycle query ``Q□full`` together
with its three output tuples and, in red, the probability annotations of the
uniform distribution over the output.  These exact values are reproduced by
experiment F2 and reused throughout the unit tests, because the paper derives
every entropy argument from this instance.
"""

from __future__ import annotations

from fractions import Fraction

from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.stats.constraints import ConstraintSet


def figure2_database() -> Database:
    """The exact instance of Figure 2.

    ``R(X,Y)``, ``S(Y,Z)``, ``T(Z,W)``, ``U(W,X)`` with the paper's values
    (1, 2, p, q, 3, 4, 5, i, j, k kept verbatim as ints and strings).
    """
    database = Database()
    database.add(Relation("R", ("x", "y"), [(1, "p"), (1, "q"), (2, "p")]))
    database.add(Relation("S", ("y", "z"), [("p", 3), ("q", 4), ("q", 5)]))
    database.add(Relation("T", ("z", "w"), [(3, "i"), (5, "i"), (5, "j")]))
    database.add(Relation("U", ("w", "x"), [("i", 1), ("j", 1), ("k", 2)]))
    return database


def figure2_expected_output() -> list[tuple]:
    """The output of ``Q□full`` on the Figure 2 instance, as (X, Y, Z, W) tuples."""
    return [(1, "p", 3, "i"), (1, "q", 5, "i"), (1, "q", 5, "j")]


def figure2_output_probabilities() -> dict[tuple, Fraction]:
    """The uniform output distribution of Figure 2 (each output tuple has mass 1/3)."""
    return {row: Fraction(1, 3) for row in figure2_expected_output()}


def figure2_marginal_probabilities() -> dict[str, dict[tuple, Fraction]]:
    """The red marginal annotations of Figure 2, per input relation.

    Tuples that never participate in the output have marginal probability 0.
    """
    return {
        "R": {(1, "p"): Fraction(1, 3), (1, "q"): Fraction(2, 3), (2, "p"): Fraction(0)},
        "S": {("p", 3): Fraction(1, 3), ("q", 4): Fraction(0), ("q", 5): Fraction(2, 3)},
        "T": {(3, "i"): Fraction(1, 3), (5, "i"): Fraction(1, 3), (5, "j"): Fraction(1, 3)},
        "U": {("i", 1): Fraction(2, 3), ("j", 1): Fraction(1, 3), ("k", 2): Fraction(0)},
    }


def four_cycle_cardinality_statistics(size: float) -> ConstraintSet:
    """``S□`` from Eq. (23): every edge relation of the 4-cycle has size at most N."""
    statistics = ConstraintSet(base=size)
    statistics.add_cardinality("XY", size, guard="R")
    statistics.add_cardinality("YZ", size, guard="S")
    statistics.add_cardinality("ZW", size, guard="T")
    statistics.add_cardinality("WX", size, guard="U")
    return statistics


def four_cycle_full_statistics(size: float, degree_bound: float) -> ConstraintSet:
    """``S□full`` from Eq. (16): cardinalities N, the FD W→X on U, and deg_U(W|X) ≤ C."""
    statistics = four_cycle_cardinality_statistics(size)
    statistics.add_functional_dependency("W", "X", guard="U")
    statistics.add_degree("W", "X", degree_bound, guard="U")
    return statistics
