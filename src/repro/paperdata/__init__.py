"""Exact data and statistics from the paper's running example (Figure 2, Eq. (16), (23))."""

from repro.paperdata.figure2 import (
    figure2_database,
    figure2_expected_output,
    figure2_marginal_probabilities,
    figure2_output_probabilities,
    four_cycle_cardinality_statistics,
    four_cycle_full_statistics,
)

__all__ = [
    "figure2_database",
    "figure2_expected_output",
    "figure2_output_probabilities",
    "figure2_marginal_probabilities",
    "four_cycle_cardinality_statistics",
    "four_cycle_full_statistics",
]
