"""repro: an information-theoretic query optimization and evaluation library.

A faithful, pure-Python reproduction of the PANDA framework described in
"Query Optimization and Evaluation via Information Theory: A Tutorial"
(Abo Khamis, Ngo, Suciu — PODS 2026).  The library covers the full pipeline:

* **statistics** — degree constraints, functional dependencies, ℓp-norm
  constraints (:mod:`repro.stats`);
* **cost estimation** — the AGM and polymatroid output-size bounds for
  conjunctive queries and disjunctive datalog rules (:mod:`repro.bounds`),
  and the width measures built on them: fractional hypertree width,
  submodular width, ω-submodular width (:mod:`repro.widths`);
* **plan search** — Shannon-flow inequalities as exact dual certificates and
  their proof sequences (:mod:`repro.flows`);
* **plan execution** — the PANDA / PANDAExpress executor for disjunctive
  datalog rules and adaptive multi-decomposition plans (:mod:`repro.panda`),
  next to the classical algorithms it subsumes or is compared against:
  Yannakakis, worst-case optimal generic join, static tree-decomposition
  plans, binary join plans, semiring (FAQ) evaluation and FMM-based
  evaluation (:mod:`repro.algorithms`);
* **the optimizer** tying it together (:mod:`repro.optimizer`).

Quickstart::

    from repro import four_cycle_projected, plan
    from repro.paperdata import four_cycle_cardinality_statistics
    from repro.datagen import hard_four_cycle_instance

    query = four_cycle_projected()
    stats = four_cycle_cardinality_statistics(size=10_000)
    chosen = plan(query, stats)          # picks the adaptive PANDA plan
    print(chosen.explain())
    result = chosen.execute(hard_four_cycle_instance(200))
    print(len(result.answer), "answers")

Storage backend selection — relations live on a pluggable storage engine
(:mod:`repro.relational.storage`).  ``"set"`` is the always-recompute
semantics reference; ``"columnar"`` caches hash indexes, key sets, degree
structures and prefix tries across evaluations (the right choice when the
same queries run repeatedly against the same database)::

    from repro import Database, Relation, set_default_backend, using_backend

    edges = Relation("E", ("src", "dst"), [(1, 2), (2, 3)], backend="columnar")
    database = Database([edges], backend="columnar")   # pins every relation
    database.cache_stats()                             # index build/hit counters

    set_default_backend("columnar")                    # process-wide default
    with using_backend("columnar"):                    # or scoped
        fresh = Relation("F", ("a", "b"), [(1, 1)])
"""

from repro.query import (
    Atom,
    ConjunctiveQuery,
    cycle_query,
    four_cycle_boolean,
    four_cycle_full,
    four_cycle_projected,
    parse_query,
    triangle_query,
)
from repro.relational import (
    ColumnarBackend,
    Database,
    Relation,
    SetBackend,
    StorageBackend,
    get_default_backend,
    set_default_backend,
    using_backend,
)
from repro.stats import ConstraintSet, DegreeConstraint, LpNormConstraint, collect_statistics
from repro.bounds import agm_bound, ddr_polymatroid_bound, polymatroid_bound
from repro.widths import (
    fractional_hypertree_width,
    omega_submodular_width_four_cycle,
    submodular_width,
)
from repro.flows import construct_proof_sequence, find_shannon_flow
from repro.panda import evaluate_adaptive, evaluate_ddr
from repro.algorithms import (
    evaluate_bruteforce,
    evaluate_static_plan,
    evaluate_yannakakis,
    generic_join,
)
from repro.optimizer import PlanKind, estimate_costs, plan, plan_and_execute
from repro.engine import Engine, EngineStats, PreparedQuery

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "parse_query",
    "cycle_query",
    "triangle_query",
    "four_cycle_full",
    "four_cycle_projected",
    "four_cycle_boolean",
    "Relation",
    "Database",
    "StorageBackend",
    "SetBackend",
    "ColumnarBackend",
    "get_default_backend",
    "set_default_backend",
    "using_backend",
    "ConstraintSet",
    "DegreeConstraint",
    "LpNormConstraint",
    "collect_statistics",
    "agm_bound",
    "polymatroid_bound",
    "ddr_polymatroid_bound",
    "fractional_hypertree_width",
    "submodular_width",
    "omega_submodular_width_four_cycle",
    "find_shannon_flow",
    "construct_proof_sequence",
    "evaluate_ddr",
    "evaluate_adaptive",
    "evaluate_bruteforce",
    "evaluate_yannakakis",
    "evaluate_static_plan",
    "generic_join",
    "estimate_costs",
    "plan",
    "plan_and_execute",
    "PlanKind",
    "Engine",
    "EngineStats",
    "PreparedQuery",
    "__version__",
]
