"""A ring-buffered slow-query log with explicit drop accounting.

Every query slower than the configured threshold is recorded: tenant, query
name, elapsed seconds, outcome, row count, and — the reason this lives in the
telemetry package — the query's **trace id**, so ``GET /slow`` is a direct
index into the tracer's ring buffer (``GET /slow`` → pick a trace id →
``tracer.export_trace`` shows where the time went).

The buffer is bounded (oldest-out) and never truncates silently: evicting an
entry increments ``dropped``, which the stats document and the ``/slow``
response both expose, so "the log looks short" is always distinguishable
from "few queries were slow".
"""

from __future__ import annotations

import threading
import time
from collections import deque


class SlowQueryLog:
    """Threshold filter + bounded ring of slow-query records."""

    def __init__(self, threshold_seconds: float | None = 1.0,
                 capacity: int = 128) -> None:
        if capacity < 1:
            raise ValueError("the slow-query log needs room for at least "
                             "one entry")
        self.threshold_seconds = threshold_seconds
        self.capacity = capacity
        self._lock = threading.Lock()
        self._entries: deque[dict] = deque()
        self.recorded = 0
        self.dropped = 0

    def record(self, *, tenant: str, query: str, elapsed: float,
               trace_id: str = "", row_count: int | None = None,
               outcome: str = "completed") -> bool:
        """Record the query if it crossed the threshold; returns whether it
        did.  ``threshold_seconds=None`` disables the log entirely."""
        if self.threshold_seconds is None or elapsed < self.threshold_seconds:
            return False
        entry = {
            "tenant": tenant,
            "query": query,
            "elapsed": elapsed,
            "trace_id": trace_id,
            "row_count": row_count,
            "outcome": outcome,
            "at": time.time(),
        }
        with self._lock:
            self.recorded += 1
            while len(self._entries) >= self.capacity:
                self._entries.popleft()
                self.dropped += 1
            self._entries.append(entry)
        return True

    def entries(self) -> list[dict]:
        """Newest-last snapshot of the retained entries."""
        with self._lock:
            return [dict(entry) for entry in self._entries]

    def stats(self) -> dict:
        with self._lock:
            return {
                "threshold_seconds": self.threshold_seconds,
                "capacity": self.capacity,
                "entries": len(self._entries),
                "recorded": self.recorded,
                "dropped": self.dropped,
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.recorded = 0
            self.dropped = 0
