"""Lightweight query tracing: spans, deterministic ids, cross-process reattach.

A *span* is one timed step of serving a query — the service request, the
engine's plan-cache lookup, an LP solve, a Yannakakis semijoin pass, a PANDA
proof step, one shard's execution on a cluster worker.  Spans form a tree:
each records its parent's id, and the tree for one request is a *trace*.

Design constraints, in order:

* **Determinism** — span ids are per-trace sequence numbers (``s1``,
  ``s2``, …) and trace ids a process-wide serial (``t1``, ``t2``, …), never
  random.  Spans created in a *worker* process are namespaced by the prefix
  shipped with their parent context (``task-7.s1``), so two attempts of the
  same shard — retries and speculative twins carry distinct task ids — can
  never collide when their spans reassemble under the coordinator's trace.
* **Bounded memory** — finished traces live in a ring buffer
  (:data:`DEFAULT_TRACE_CAPACITY` traces); evictions are *counted*
  (``dropped_traces``), never silent.
* **Cheap when off** — with tracing disabled every ``span()`` call returns
  the shared :data:`NULL_SPAN` after one attribute check; no allocation, no
  lock, no timestamp.
* **Closed exactly once** — ``finish()`` is idempotent (double finishes are
  counted, not applied), and the context-manager form closes on every exit
  path including exceptions, which it records as the span's status.

Timing uses ``time.perf_counter`` (CLOCK_MONOTONIC): monotonic within a
process and — on the POSIX platforms the fork-based executors run on —
shared across the coordinator and its forked workers, so cross-process span
timings are directly comparable.

Propagation is contextvar-based (``with tracer.span(...)`` makes the span
the ambient parent).  Contextvars do **not** cross thread-pool or process
boundaries on their own; callers hop them explicitly:

* thread pools / asyncio executors: capture ``span.context()`` (or
  ``tracer.export_context()``) before the hop and wrap the work in
  ``tracer.attach(ctx)`` or pass ``parent=ctx`` to the first span;
* process/cluster workers: ship ``tracer.export_context(prefix=...)`` (a
  plain picklable dict) in the payload, open worker spans with
  ``parent=SpanContext.from_dict(...)``, then ``drain_remote(...)`` the
  finished span records and return them with the result; the coordinator
  calls :meth:`Tracer.adopt` to splice them into the original trace.
"""

from __future__ import annotations

import contextvars
import threading
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass

DEFAULT_TRACE_CAPACITY = 256

#: The ambient span of the current logical context: a :class:`Span`, a
#: :class:`SpanContext` (after an explicit ``attach``), the suppression
#: sentinel (inside an unsampled trace), or ``None``.
_CURRENT: contextvars.ContextVar = contextvars.ContextVar(
    "repro_current_span", default=None)

#: Sentinel marking "inside an unsampled trace": descendants must not start
#: fresh root traces of their own.
_SUPPRESSED = object()


@dataclass(frozen=True)
class SpanContext:
    """The picklable identity of a span, for crossing thread/process hops."""

    trace_id: str
    span_id: str
    #: Id namespace for spans created under this context in *another*
    #: process; empty for same-process hops.
    prefix: str = ""

    def as_dict(self) -> dict:
        return {"trace_id": self.trace_id, "span_id": self.span_id,
                "prefix": self.prefix}

    @classmethod
    def from_dict(cls, doc: dict | None) -> "SpanContext | None":
        if not doc:
            return None
        return cls(trace_id=doc["trace_id"], span_id=doc["span_id"],
                   prefix=doc.get("prefix", ""))


class _NullSpan:
    """The shared do-nothing span returned when tracing is disabled."""

    __slots__ = ()
    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, key, value) -> "_NullSpan":
        return self

    def finish(self, status: str | None = None, **attrs) -> None:
        return None

    def context(self) -> None:
        return None

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _SuppressedSpan:
    """Root span of an *unsampled* trace: records nothing, but marks the
    context so descendants do not each start a fresh root trace."""

    __slots__ = ("_token",)
    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""

    def __enter__(self) -> "_SuppressedSpan":
        self._token = _CURRENT.set(_SUPPRESSED)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        _CURRENT.reset(self._token)
        return False

    def set(self, key, value) -> "_SuppressedSpan":
        return self

    def finish(self, status: str | None = None, **attrs) -> None:
        return None

    def context(self) -> None:
        return None

    def __bool__(self) -> bool:
        return False


class Span:
    """One timed step; use as a context manager or finish manually."""

    __slots__ = ("_tracer", "trace_id", "span_id", "parent_id", "name",
                 "attrs", "prefix", "started", "ended", "status",
                 "finished", "_token")

    def __init__(self, tracer: "Tracer", trace_id: str, span_id: str,
                 parent_id: str | None, name: str, attrs: dict | None,
                 prefix: str) -> None:
        self._tracer = tracer
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.attrs = dict(attrs) if attrs else {}
        self.prefix = prefix
        self.started = time.perf_counter()
        self.ended: float | None = None
        self.status = "ok"
        self.finished = False
        self._token = None

    def set(self, key: str, value) -> "Span":
        """Attach (or overwrite) one attribute; a no-op after ``finish``."""
        if not self.finished:
            self.attrs[key] = value
        return self

    def context(self) -> SpanContext:
        return SpanContext(self.trace_id, self.span_id, self.prefix)

    def finish(self, status: str | None = None, **attrs) -> None:
        self._tracer._finish(self, status, attrs)

    def __enter__(self) -> "Span":
        self._token = _CURRENT.set(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
        status = None
        if exc_type is not None and self.status == "ok":
            status = f"error: {exc_type.__name__}"
        self.finish(status=status)
        return False

    def __bool__(self) -> bool:
        return True

    def as_record(self) -> dict:
        """The span as a plain picklable/JSON-able dict."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.started,
            "end": self.ended,
            "status": self.status,
            "attrs": dict(self.attrs),
        }


class _TraceRecord:
    """Coordinator-side state of one trace: finished spans + open count."""

    __slots__ = ("trace_id", "spans", "open_spans", "serials", "foreign")

    def __init__(self, trace_id: str, foreign: bool = False) -> None:
        self.trace_id = trace_id
        self.spans: list[dict] = []
        self.open_spans = 0
        #: Next span sequence number, per id prefix ("" = local spans).
        self.serials: dict[str, int] = {}
        #: True when this record only relays spans to another process (a
        #: worker tracing under a shipped remote context).
        self.foreign = foreign


class Tracer:
    """The span factory and per-process trace store (ring-buffered)."""

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY,
                 enabled: bool = True, sampling: float = 1.0) -> None:
        self._lock = threading.Lock()
        self._records: OrderedDict[str, _TraceRecord] = OrderedDict()
        self.capacity = capacity
        self._enabled = enabled
        self._sampling = sampling
        self._sample_acc = 0.0
        self._trace_serial = 0
        self.dropped_traces = 0
        self.double_finishes = 0
        #: Finished spans whose trace had already been evicted (or, for
        #: ``adopt``, never existed here) — counted, never silently lost.
        self.orphan_spans = 0

    # ------------------------------------------------------------- switches
    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, flag: bool) -> bool:
        previous = self._enabled
        self._enabled = bool(flag)
        return previous

    def set_sampling(self, rate: float) -> float:
        """Fraction of *root* traces recorded (children follow their root);
        deterministic (a running accumulator, not a PRNG)."""
        previous = self._sampling
        self._sampling = min(1.0, max(0.0, rate))
        return previous

    def _sample(self) -> bool:
        if self._sampling >= 1.0:
            return True
        if self._sampling <= 0.0:
            return False
        with self._lock:
            self._sample_acc += self._sampling
            if self._sample_acc >= 1.0:
                self._sample_acc -= 1.0
                return True
            return False

    # ---------------------------------------------------------------- spans
    def span(self, name: str, attrs: dict | None = None,
             parent: SpanContext | Span | None = None):
        """Open a span (returns :data:`NULL_SPAN` when tracing is off).

        With no explicit ``parent`` the ambient span of the current context
        is the parent; with none ambient either, a new trace is rooted here
        (subject to sampling).  Pass a :class:`SpanContext` rebuilt from a
        shipped payload to attach a *remote* parent — the span (and its
        descendants) then allocate ids under the context's prefix.
        """
        if not self._enabled:
            return NULL_SPAN
        parent_ctx = parent if parent is not None else _CURRENT.get()
        if parent_ctx is _SUPPRESSED:
            return NULL_SPAN
        if parent_ctx is None:
            if not self._sample():
                return _SuppressedSpan()
            with self._lock:
                self._trace_serial += 1
                trace_id = f"t{self._trace_serial}"
                record = self._new_record_locked(trace_id)
                span_id = self._next_id_locked(record, "")
                record.open_spans += 1
            return Span(self, trace_id, span_id, None, name, attrs, "")
        if isinstance(parent_ctx, (_NullSpan, _SuppressedSpan)):
            return NULL_SPAN
        prefix = getattr(parent_ctx, "prefix", "")
        trace_id = parent_ctx.trace_id
        foreign = isinstance(parent_ctx, SpanContext) and bool(prefix)
        with self._lock:
            record = self._records.get(trace_id)
            if record is None:
                record = self._new_record_locked(trace_id, foreign=foreign)
            span_id = self._next_id_locked(record, prefix)
            record.open_spans += 1
        return Span(self, trace_id, span_id, parent_ctx.span_id, name,
                    attrs, prefix)

    def _new_record_locked(self, trace_id: str,
                           foreign: bool = False) -> _TraceRecord:
        record = _TraceRecord(trace_id, foreign=foreign)
        self._records[trace_id] = record
        while len(self._records) > self.capacity:
            _, evicted = self._records.popitem(last=False)
            self.dropped_traces += 1
            self.orphan_spans += max(0, evicted.open_spans)
        return record

    @staticmethod
    def _next_id_locked(record: _TraceRecord, prefix: str) -> str:
        serial = record.serials.get(prefix, 0) + 1
        record.serials[prefix] = serial
        return f"{prefix}.s{serial}" if prefix else f"s{serial}"

    def _finish(self, span: Span, status: str | None, attrs: dict) -> None:
        ended = time.perf_counter()
        with self._lock:
            if span.finished:
                self.double_finishes += 1
                return
            span.finished = True
            span.ended = ended
            if status is not None:
                span.status = status
            if attrs:
                span.attrs.update(attrs)
            record = self._records.get(span.trace_id)
            if record is None:
                self.orphan_spans += 1
                return
            record.spans.append(span.as_record())
            record.open_spans -= 1

    # ---------------------------------------------------------- propagation
    def current_context(self) -> SpanContext | None:
        """The ambient span's context, or ``None`` (incl. unsampled traces)."""
        current = _CURRENT.get()
        if current is None or current is _SUPPRESSED:
            return None
        if isinstance(current, SpanContext):
            return current
        if isinstance(current, Span):
            return current.context()
        return None

    def export_context(self, prefix: str = "") -> dict | None:
        """The ambient context as a picklable dict for a worker payload."""
        ctx = self.current_context()
        if ctx is None:
            return None
        return {"trace_id": ctx.trace_id, "span_id": ctx.span_id,
                "prefix": prefix}

    @contextmanager
    def attach(self, context: SpanContext | None):
        """Make ``context`` the ambient parent inside the block (explicit
        hop across a thread/executor boundary); ``None`` is a no-op."""
        if context is None:
            yield
            return
        token = _CURRENT.set(context)
        try:
            yield
        finally:
            _CURRENT.reset(token)

    def drain_remote(self, trace_id: str, prefix: str) -> list[dict]:
        """Worker side: pop this process's finished spans under ``prefix``
        for shipping back with the shard result."""
        if not trace_id or not prefix:
            return []
        marker = f"{prefix}.s"
        with self._lock:
            record = self._records.get(trace_id)
            if record is None:
                return []
            shipped = [doc for doc in record.spans
                       if doc["span_id"].startswith(marker)]
            if shipped:
                record.spans = [doc for doc in record.spans
                                if not doc["span_id"].startswith(marker)]
            if record.foreign and not record.spans and record.open_spans <= 0:
                del self._records[trace_id]
        return shipped

    def adopt(self, span_records: list[dict]) -> int:
        """Coordinator side: splice worker span records into their traces.

        Returns how many were adopted; records for unknown (evicted) traces
        are counted as orphans instead.
        """
        adopted = 0
        with self._lock:
            for doc in span_records:
                record = self._records.get(doc.get("trace_id", ""))
                if record is None:
                    self.orphan_spans += 1
                    continue
                record.spans.append(dict(doc))
                adopted += 1
        return adopted

    # -------------------------------------------------------------- export
    def trace_ids(self) -> list[str]:
        with self._lock:
            return [tid for tid, record in self._records.items()
                    if not record.foreign]

    def open_spans(self, trace_id: str | None = None) -> int:
        with self._lock:
            if trace_id is not None:
                record = self._records.get(trace_id)
                return record.open_spans if record is not None else 0
            return sum(record.open_spans for record in self._records.values())

    def export_trace(self, trace_id: str) -> dict | None:
        """The trace as a JSON-able document (spans sorted by start time,
        durations and start offsets precomputed)."""
        with self._lock:
            record = self._records.get(trace_id)
            if record is None:
                return None
            spans = [dict(doc) for doc in record.spans]
            open_spans = record.open_spans
        spans.sort(key=lambda doc: doc["start"])
        origin = spans[0]["start"] if spans else 0.0
        for doc in spans:
            doc["start_offset"] = doc["start"] - origin
            doc["duration"] = ((doc["end"] - doc["start"])
                               if doc.get("end") is not None else None)
        return {"trace_id": trace_id, "spans": spans,
                "open_spans": open_spans}

    def export_all(self) -> list[dict]:
        docs = [self.export_trace(tid) for tid in self.trace_ids()]
        return [doc for doc in docs if doc is not None]

    def stats(self) -> dict:
        """Ring-buffer and integrity counters (for ``/stats`` and tests)."""
        with self._lock:
            return {
                "enabled": self._enabled,
                "sampling": self._sampling,
                "capacity": self.capacity,
                "traces": len(self._records),
                "open_spans": sum(r.open_spans for r in self._records.values()),
                "dropped_traces": self.dropped_traces,
                "double_finishes": self.double_finishes,
                "orphan_spans": self.orphan_spans,
            }

    def reset(self) -> None:
        """Drop every trace and zero the integrity counters (tests only)."""
        with self._lock:
            self._records.clear()
            self.dropped_traces = 0
            self.double_finishes = 0
            self.orphan_spans = 0
            self._sample_acc = 0.0


#: The process-wide tracer every layer shares.
_TRACER = Tracer()


def get_tracer() -> Tracer:
    return _TRACER


def tracing_enabled() -> bool:
    return _TRACER.enabled


def set_tracing_enabled(flag: bool) -> bool:
    """Globally enable/disable span recording; returns the previous state."""
    return _TRACER.set_enabled(flag)


@contextmanager
def using_tracing(flag: bool):
    """Temporarily force tracing on/off (benchmarks, tests)."""
    previous = _TRACER.set_enabled(flag)
    try:
        yield _TRACER
    finally:
        _TRACER.set_enabled(previous)
