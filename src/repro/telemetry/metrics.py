"""One process-wide metrics registry over every layer's legacy counter dict.

The repo grew one ad-hoc counter dict per layer — storage backend
``cache_stats`` (``hash_index_builds``/``hash_index_hits``), the LP
substrate's ``lp_cache_stats`` (``region_builds``/``region_hits``/…), kernel
usage (``join_kernels``/``join_fallbacks``), the plan cache
(``plan_builds``/``plan_hits``), :class:`~repro.engine.core.EngineStats`,
admission control, cluster recovery.  Those dicts stay exactly as they are
(tests pin their keys); this module is the *single exposure point* over all
of them:

* **instruments** — :class:`Counter`/:class:`Gauge`/:class:`Histogram` with
  label sets, for code that pushes values directly (``EngineStats.bump``
  forwards its deltas here via :func:`bump_counters`);
* **pull sources** — ``register_source(name, collect, owner=...)`` adds a
  callback sampled at scrape time; ``owner`` is held by weak reference, so a
  dropped engine/service never leaks a dead collector;
* **canonical naming** — every legacy key is renamed on the way out to one
  ``<layer>.<cache>.<event>`` scheme (``storage.hash_index.builds``,
  ``lp.region.hits``, ``kernel.join.vectorized``,
  ``engine.plan_cache.builds``, ``service.admission.admitted``,
  ``cluster.tasks.retried``).  :func:`legacy_key` inverts the mapping so a
  canonical sample can always be reconciled against the legacy dict it came
  from;
* **Prometheus text** — :func:`MetricsRegistry.render_prometheus` emits the
  standard exposition format (dots become underscores under a ``repro_``
  prefix) for ``GET /metrics`` on the HTTP frontend.

Because sources *pull from the same underlying dicts* that ``/stats``
reports, the two endpoints reconcile by construction — the telemetry tests
assert it.
"""

from __future__ import annotations

import threading
import weakref
from typing import Callable, Iterable, NamedTuple


class Sample(NamedTuple):
    """One scraped value: canonical name, label dict, value, instrument kind."""

    name: str
    labels: dict
    value: float
    kind: str = "counter"


# ---------------------------------------------------------------------------
# canonical <layer>.<cache>.<event> naming over the legacy keys
# ---------------------------------------------------------------------------

#: Cluster run counters → canonical names (see ``cluster.RUN_COUNTERS``).
_CLUSTER_CANONICAL = {
    "tasks_dispatched": "cluster.tasks.dispatched",
    "tasks_retried": "cluster.tasks.retried",
    "task_failures": "cluster.tasks.failures",
    "stragglers_redispatched": "cluster.tasks.speculated",
    "acks_dropped": "cluster.acks.dropped",
    "workers_respawned": "cluster.workers.respawned",
    "workers_quarantined": "cluster.workers.quarantined",
    "spawn_failures": "cluster.workers.spawn_failures",
    "degraded_executions": "cluster.runs.degraded",
}

_PLAN_CACHE_CANONICAL = {
    "plan_builds": "engine.plan_cache.builds",
    "plan_hits": "engine.plan_cache.hits",
    "plan_evictions": "engine.plan_cache.evictions",
    "plan_entries": "engine.plan_cache.entries",
}


def canonical_storage_key(key: str) -> str:
    """``hash_index_builds`` → ``storage.hash_index.builds``."""
    for suffix in ("_builds", "_hits"):
        if key.endswith(suffix):
            return f"storage.{key[:-len(suffix)]}.{suffix[1:]}"
    return f"storage.misc.{key}"


def canonical_lp_key(key: str) -> str:
    """``region_builds`` → ``lp.region.builds``; other movements keep their
    name under ``lp.model``."""
    for suffix in ("_builds", "_hits"):
        if key.endswith(suffix):
            return f"lp.{key[:-len(suffix)]}.{suffix[1:]}"
    return f"lp.model.{key}"


def canonical_kernel_key(key: str) -> str:
    """``join_kernels`` → ``kernel.join.vectorized``; ``join_fallbacks`` →
    ``kernel.join.fallbacks``."""
    if key.endswith("_kernels"):
        return f"kernel.{key[: -len('_kernels')]}.vectorized"
    if key.endswith("_fallbacks"):
        return f"kernel.{key[: -len('_fallbacks')]}.fallbacks"
    return f"kernel.misc.{key}"


def canonical_plan_cache_key(key: str) -> str:
    return _PLAN_CACHE_CANONICAL.get(key, f"engine.plan_cache.{key}")


def canonical_cluster_key(key: str) -> str:
    return _CLUSTER_CANONICAL.get(key, f"cluster.misc.{key}")


def canonical_admission_key(key: str) -> str:
    return f"service.admission.{key}"


def canonical_engine_key(key: str) -> str:
    return f"engine.stats.{key}"


_CANONICALIZERS: dict[str, Callable[[str], str]] = {
    "storage": canonical_storage_key,
    "lp": canonical_lp_key,
    "kernel": canonical_kernel_key,
    "plan_cache": canonical_plan_cache_key,
    "cluster": canonical_cluster_key,
    "admission": canonical_admission_key,
    "engine": canonical_engine_key,
}


def canonical_key(layer: str, legacy: str) -> str:
    """The ``<layer>.<cache>.<event>`` name for a legacy counter key."""
    try:
        return _CANONICALIZERS[layer](legacy)
    except KeyError:
        raise ValueError(f"unknown metrics layer {layer!r}; "
                         f"pick one of {sorted(_CANONICALIZERS)}") from None


def legacy_key(canonical: str) -> str:
    """Invert :func:`canonical_key`: the legacy dict key a canonical sample
    reconciles against (aliases, satellite of the naming normalization)."""
    for legacy, name in _CLUSTER_CANONICAL.items():
        if name == canonical:
            return legacy
    for legacy, name in _PLAN_CACHE_CANONICAL.items():
        if name == canonical:
            return legacy
    parts = canonical.split(".")
    if len(parts) < 3:
        return canonical
    layer, cache, event = parts[0], ".".join(parts[1:-1]), parts[-1]
    if layer == "storage" and event in ("builds", "hits"):
        return f"{cache}_{event}"
    if layer == "lp":
        if cache == "model":
            return event
        if event in ("builds", "hits"):
            return f"{cache}_{event}"
        return event
    if layer == "kernel":
        if event == "vectorized":
            return f"{cache}_kernels"
        if event == "fallbacks":
            return f"{cache}_fallbacks"
        return event
    # engine.stats.*, service.admission.*, …: the trailing segment is the key.
    return event


def canonical_events(layer: str, events: dict) -> dict[str, float]:
    """Rename a whole legacy counter dict into canonical space."""
    rename = _CANONICALIZERS[layer]
    return {rename(key): value for key, value in events.items()}


# ---------------------------------------------------------------------------
# instruments
# ---------------------------------------------------------------------------

def _label_key(labels: dict) -> tuple:
    return tuple(sorted(labels.items()))


class Counter:
    """A monotonically increasing value, optionally per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._values: dict[tuple, float] = {}

    def inc(self, amount: float = 1.0, **labels) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels) -> float:
        with self._lock:
            return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> list[Sample]:
        with self._lock:
            return [Sample(self.name, dict(key), value, self.kind)
                    for key, value in self._values.items()]


class Gauge(Counter):
    """A value that can move both ways (``set`` replaces, ``inc`` adds)."""

    kind = "gauge"

    def inc(self, amount: float = 1.0, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set(self, value: float, **labels) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)


class Histogram:
    """Cumulative bucket counts plus sum/count, per label set."""

    kind = "histogram"
    DEFAULT_BUCKETS = (0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0)

    def __init__(self, name: str, help: str = "",
                 buckets: Iterable[float] | None = None) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets or self.DEFAULT_BUCKETS))
        self._lock = threading.Lock()
        self._counts: dict[tuple, list[int]] = {}
        self._totals: dict[tuple, tuple[int, float]] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = self._counts[key] = [0] * len(self.buckets)
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    counts[index] += 1
            count, total = self._totals.get(key, (0, 0.0))
            self._totals[key] = (count + 1, total + value)

    def snapshot(self, **labels) -> dict:
        key = _label_key(labels)
        with self._lock:
            counts = list(self._counts.get(key, [0] * len(self.buckets)))
            count, total = self._totals.get(key, (0, 0.0))
        return {"buckets": dict(zip(self.buckets, counts)),
                "count": count, "sum": total}

    def samples(self) -> list[Sample]:
        with self._lock:
            keys = list(self._totals)
            counts = {key: list(self._counts[key]) for key in keys}
            totals = dict(self._totals)
        out: list[Sample] = []
        for key in keys:
            labels = dict(key)
            for bound, bucket_count in zip(self.buckets, counts[key]):
                out.append(Sample(f"{self.name}.bucket",
                                  {**labels, "le": f"{bound:g}"},
                                  bucket_count, "histogram"))
            count, total = totals[key]
            out.append(Sample(f"{self.name}.bucket",
                              {**labels, "le": "+Inf"}, count, "histogram"))
            out.append(Sample(f"{self.name}.count", labels, count, "histogram"))
            out.append(Sample(f"{self.name}.sum", labels, total, "histogram"))
        return out


# ---------------------------------------------------------------------------
# the registry
# ---------------------------------------------------------------------------

class MetricsRegistry:
    """Instruments plus weakly-owned pull sources; see the module docstring."""

    def __init__(self) -> None:
        self._lock = threading.RLock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        #: name → (owner weakref | None, collect callable).
        self._sources: dict[str, tuple[weakref.ref | None, Callable]] = {}

    # ---------------------------------------------------------- instruments
    def counter(self, name: str, help: str = "") -> Counter:
        return self._instrument(name, Counter, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._instrument(name, Gauge, help)

    def histogram(self, name: str, help: str = "",
                  buckets: Iterable[float] | None = None) -> Histogram:
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = Histogram(name, help, buckets)
                self._instruments[name] = instrument
            elif not isinstance(instrument, Histogram):
                raise ValueError(f"metric {name!r} already registered as "
                                 f"{instrument.kind}")
            return instrument

    def _instrument(self, name: str, cls, help: str):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = cls(name, help)
                self._instruments[name] = instrument
            elif type(instrument) is not cls:
                raise ValueError(f"metric {name!r} already registered as "
                                 f"{instrument.kind}")
            return instrument

    def bump_counters(self, deltas: dict[str, float],
                      **labels) -> None:
        """Apply a batch of counter increments (zero/negative skipped)."""
        for name, delta in deltas.items():
            if delta and delta > 0:
                self.counter(name).inc(delta, **labels)

    # -------------------------------------------------------------- sources
    def register_source(self, name: str, collect: Callable,
                        owner: object | None = None) -> None:
        """Add (or replace) a pull source sampled at every ``collect()``.

        ``collect`` returns an iterable of :class:`Sample` (or
        ``(name, labels, value)`` tuples).  With an ``owner``, the source is
        dropped automatically once the owner is garbage collected.
        """
        ref = weakref.ref(owner) if owner is not None else None
        with self._lock:
            self._sources[name] = (ref, collect)

    def unregister_source(self, name: str) -> bool:
        with self._lock:
            return self._sources.pop(name, None) is not None

    def source_names(self) -> list[str]:
        with self._lock:
            return sorted(self._sources)

    # -------------------------------------------------------------- scraping
    def collect(self) -> list[Sample]:
        with self._lock:
            instruments = list(self._instruments.values())
            sources = list(self._sources.items())
        samples: list[Sample] = []
        for instrument in instruments:
            samples.extend(instrument.samples())
        dead: list[str] = []
        for name, (ref, collect) in sources:
            if ref is not None and ref() is None:
                dead.append(name)
                continue
            for item in collect():
                if isinstance(item, Sample):
                    samples.append(item)
                else:
                    sample_name, labels, value = item[0], item[1], item[2]
                    kind = item[3] if len(item) > 3 else "counter"
                    samples.append(Sample(sample_name, dict(labels),
                                          value, kind))
        if dead:
            with self._lock:
                for name in dead:
                    self._sources.pop(name, None)
        return samples

    def value(self, name: str, **labels) -> float:
        """Sum of every collected sample matching ``name`` and ``labels``
        (labels are a filter: a sample matches when it carries them all)."""
        total = 0.0
        for sample in self.collect():
            if sample.name != name:
                continue
            if all(sample.labels.get(k) == v for k, v in labels.items()):
                total += sample.value
        return total

    def as_documents(self) -> list[dict]:
        """Every sample as a JSON-able document (the ``metrics`` op)."""
        return [{"name": s.name, "labels": s.labels, "value": s.value,
                 "kind": s.kind} for s in self.collect()]

    def render_prometheus(self) -> str:
        """The Prometheus text exposition of every sample."""
        samples = self.collect()
        by_name: dict[str, list[Sample]] = {}
        for sample in samples:
            by_name.setdefault(sample.name, []).append(sample)
        lines: list[str] = []
        for name in sorted(by_name):
            group = by_name[name]
            metric = _prometheus_name(name)
            kind = group[0].kind
            lines.append(f"# TYPE {metric} "
                         f"{'gauge' if kind == 'gauge' else 'counter'}")
            for sample in group:
                if sample.labels:
                    rendered = ",".join(
                        f'{_prometheus_name(key, bare=True)}="{value}"'
                        for key, value in sorted(sample.labels.items()))
                    lines.append(f"{metric}{{{rendered}}} {sample.value:g}")
                else:
                    lines.append(f"{metric} {sample.value:g}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Drop every instrument and source (tests only)."""
        with self._lock:
            self._instruments.clear()
            self._sources.clear()


def _prometheus_name(name: str, bare: bool = False) -> str:
    cleaned = name.replace(".", "_").replace("-", "_")
    return cleaned if bare else f"repro_{cleaned}"


#: The process-wide registry every layer shares.
_REGISTRY = MetricsRegistry()
_DEFAULTS_INSTALLED = False
_DEFAULTS_LOCK = threading.Lock()


def get_registry() -> MetricsRegistry:
    return _REGISTRY


def bump_counters(deltas: dict[str, float], **labels) -> None:
    """Forward a batch of deltas into the process registry (push path)."""
    _REGISTRY.bump_counters(deltas, **labels)


def install_default_sources() -> None:
    """Register the process-global pull sources (LP, kernels, storage,
    tracer integrity).  Idempotent; imported layers are resolved lazily so
    this module stays import-cycle-free.
    """
    global _DEFAULTS_INSTALLED
    with _DEFAULTS_LOCK:
        if _DEFAULTS_INSTALLED:
            return
        _DEFAULTS_INSTALLED = True

    def _lp_samples():
        from repro.lp.model import lp_cache_stats

        return [Sample(name, {}, value) for name, value
                in canonical_events("lp", lp_cache_stats()).items()]

    def _kernel_samples():
        from repro.relational.kernels import kernel_stats

        return [Sample(name, {}, value) for name, value
                in canonical_events("kernel", kernel_stats()).items()]

    def _storage_samples():
        from repro.relational.storage import storage_stats

        return [Sample(name, {}, value) for name, value
                in canonical_events("storage", storage_stats()).items()]

    def _tracer_samples():
        from repro.telemetry.trace import get_tracer

        stats = get_tracer().stats()
        return [
            Sample("telemetry.traces.buffered", {}, stats["traces"], "gauge"),
            Sample("telemetry.traces.dropped", {}, stats["dropped_traces"]),
            Sample("telemetry.spans.open", {}, stats["open_spans"], "gauge"),
            Sample("telemetry.spans.double_finishes", {},
                   stats["double_finishes"]),
            Sample("telemetry.spans.orphaned", {}, stats["orphan_spans"]),
        ]

    _REGISTRY.register_source("lp", _lp_samples)
    _REGISTRY.register_source("kernels", _kernel_samples)
    _REGISTRY.register_source("storage", _storage_samples)
    _REGISTRY.register_source("tracer", _tracer_samples)
