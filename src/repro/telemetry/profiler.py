"""The cardinality profiler: polymatroid estimates vs observed node sizes.

ROADMAP open item 3 asks for the feedback loop the paper implies but never
implements: the engine *predicts* intermediate sizes with polymatroid bounds
(the LP of Section 3) and then *sees* the real sizes go by — the
:class:`~repro.relational.operators.WorkCounter` tallies every materialised
intermediate.  This module closes the observation half of that loop, as
read-only telemetry:

* a **plan node** is a unit the cost model prices: a decomposition bag of a
  static/adaptive plan, a join-tree node of a Yannakakis plan, and the
  output relation itself;
* at plan-build time the engine seeds one :class:`NodeProfile` per node with
  the polymatroid bound of the node's variable set
  (:func:`repro.bounds.polymatroid.polymatroid_bound` accepts a bare
  variable set; the LP solves are region-cached, so seeding is cheap);
* at execution time the runners report observed node sizes through
  ``WorkCounter.observe_node`` (they pickle across shard workers and merge
  with the counters), and the engine folds them into the profile;
* the profile is keyed by the plan-cache entry — it lives *inside* the
  cached :class:`~repro.engine.plan_cache.PlanRecipe`, so every execution of
  the same query fingerprint (including alpha-renamings, via the canonical
  renaming) accumulates into one profile that survives as long as the cache
  entry does.

Node keys are canonical variable names (the fingerprint renaming), so a
renamed query's observations land on the same nodes its twin seeded.
:meth:`CardinalityProfile.estimated_vs_observed` is the report the optimizer
hook will eventually consume — and what ``Engine.explain(analyze=True)`` and
the example script print today.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class NodeProfile:
    """One plan node: its estimate (fixed at seeding) and observed sizes."""

    kind: str
    #: Canonically renamed, sorted variable names — the node's identity.
    variables: tuple[str, ...]
    estimated_exponent: float | None = None
    #: ``N ** estimated_exponent`` — the polymatroid size bound.
    estimated_rows: float | None = None
    runs: int = 0
    observed_last: int = 0
    observed_peak: int = 0
    observed_total: int = 0

    def observe(self, rows: int) -> None:
        self.runs += 1
        self.observed_last = rows
        self.observed_peak = max(self.observed_peak, rows)
        self.observed_total += rows

    def as_dict(self) -> dict:
        ratio = None
        if self.estimated_rows and self.runs:
            ratio = self.observed_peak / self.estimated_rows
        return {
            "node": f"{self.kind}({','.join(self.variables)})",
            "kind": self.kind,
            "variables": list(self.variables),
            "estimated_exponent": self.estimated_exponent,
            "estimated_rows": self.estimated_rows,
            "runs": self.runs,
            "observed_last": self.observed_last,
            "observed_peak": self.observed_peak,
            "observed_mean": (self.observed_total / self.runs
                              if self.runs else None),
            "observed_over_estimated": ratio,
        }


class CardinalityProfile:
    """Per-fingerprint estimated-vs-observed sizes for every plan node."""

    def __init__(self, fingerprint: str, plan_kind: str) -> None:
        self.fingerprint = fingerprint
        self.plan_kind = plan_kind
        self.executions = 0
        self._lock = threading.Lock()
        self._nodes: dict[tuple[str, ...], NodeProfile] = {}

    # ------------------------------------------------------------- seeding
    def seed(self, nodes: Iterable[tuple[str, Iterable[str]]],
             statistics, renaming: dict[str, str]) -> None:
        """Price each ``(kind, variable set)`` node with its polymatroid
        bound.  ``statistics`` and the variable sets are in the query's own
        namespace; keys are stored canonically via ``renaming``.
        """
        from repro.bounds.polymatroid import polymatroid_bound

        for kind, variables in nodes:
            varset = frozenset(variables)
            key = _canonical(varset, renaming)
            with self._lock:
                if key in self._nodes:
                    continue
            bound = polymatroid_bound(varset, statistics)
            profile = NodeProfile(kind=kind, variables=key,
                                  estimated_exponent=bound.exponent,
                                  estimated_rows=bound.size_bound)
            with self._lock:
                self._nodes.setdefault(key, profile)

    # ---------------------------------------------------------- observation
    def record(self, observations: Sequence[tuple[str, Sequence[str], int]],
               renaming: dict[str, str]) -> None:
        """Fold one execution's ``WorkCounter.observations`` into the profile.

        ``renaming`` maps the *executing* query's variable names to canonical
        ones — it may differ from the seeding query's renaming when the plan
        was reused across an alpha-renaming.
        """
        with self._lock:
            self.executions += 1
            for kind, variables, rows in observations:
                key = _canonical(variables, renaming)
                node = self._nodes.get(key)
                if node is None:
                    # An execution-time intermediate the cost model never
                    # priced (e.g. a sub-bag projection): still tracked,
                    # with no estimate to compare against.
                    node = self._nodes[key] = NodeProfile(kind=kind,
                                                          variables=key)
                node.observe(int(rows))

    # -------------------------------------------------------------- reports
    def nodes(self) -> list[NodeProfile]:
        with self._lock:
            return sorted(self._nodes.values(),
                          key=lambda node: (node.kind, node.variables))

    def estimated_vs_observed(self) -> list[dict]:
        """One document per node: the polymatroid estimate next to what the
        executions actually materialised."""
        return [node.as_dict() for node in self.nodes()]

    def as_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "plan_kind": self.plan_kind,
            "executions": self.executions,
            "nodes": self.estimated_vs_observed(),
        }

    def describe(self) -> str:
        """A fixed-width estimated-vs-observed table (the example script)."""
        rows = self.estimated_vs_observed()
        header = (f"{'node':<38} {'est. rows':>12} {'peak':>8} "
                  f"{'last':>8} {'obs/est':>8}")
        lines = [f"profile {self.fingerprint or '(uncached)'} "
                 f"[{self.plan_kind}] over {self.executions} executions",
                 header, "-" * len(header)]
        for doc in rows:
            estimated = (f"{doc['estimated_rows']:.1f}"
                         if doc["estimated_rows"] is not None else "-")
            ratio = (f"{doc['observed_over_estimated']:.3f}"
                     if doc["observed_over_estimated"] is not None else "-")
            lines.append(f"{doc['node']:<38} {estimated:>12} "
                         f"{doc['observed_peak']:>8} {doc['observed_last']:>8} "
                         f"{ratio:>8}")
        return "\n".join(lines)


def plan_nodes(plan) -> list[tuple[str, frozenset[str]]]:
    """The priceable nodes of a :class:`~repro.optimizer.planner.QueryPlan`,
    in the plan's own variable namespace."""
    nodes: list[tuple[str, frozenset[str]]] = [
        ("output", frozenset(plan.query.free_variables))]
    seen = {frozenset(plan.query.free_variables)}
    if plan.decomposition is not None:
        for bag in plan.decomposition.bags:
            bag = frozenset(bag)
            if bag not in seen:
                seen.add(bag)
                nodes.append(("bag", bag))
    for decomposition in plan.decompositions:
        for bag in decomposition.bags:
            bag = frozenset(bag)
            if bag not in seen:
                seen.add(bag)
                nodes.append(("bag", bag))
    if plan.decomposition is None and not plan.decompositions:
        # Yannakakis: the join-tree nodes are the atoms' variable sets.
        for atom in plan.query.atoms:
            varset = frozenset(atom.variables)
            if varset not in seen:
                seen.add(varset)
                nodes.append(("node", varset))
    return nodes


def _canonical(variables: Iterable[str],
               renaming: dict[str, str]) -> tuple[str, ...]:
    return tuple(sorted(renaming.get(v, v) for v in variables))
