"""Unified telemetry: tracing, the metrics registry, the cardinality
profiler and the slow-query log.

The four modules are deliberately dependency-light (stdlib only at import
time; layer modules are imported lazily inside collectors), so any layer of
the engine can import :mod:`repro.telemetry` without cycles.
"""

from repro.telemetry.metrics import (
    MetricsRegistry,
    Sample,
    bump_counters,
    canonical_events,
    canonical_key,
    get_registry,
    install_default_sources,
    legacy_key,
)
from repro.telemetry.profiler import CardinalityProfile, NodeProfile, plan_nodes
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.trace import (
    NULL_SPAN,
    Span,
    SpanContext,
    Tracer,
    get_tracer,
    set_tracing_enabled,
    tracing_enabled,
    using_tracing,
)

__all__ = [
    "NULL_SPAN",
    "CardinalityProfile",
    "MetricsRegistry",
    "NodeProfile",
    "Sample",
    "SlowQueryLog",
    "Span",
    "SpanContext",
    "Tracer",
    "bump_counters",
    "canonical_events",
    "canonical_key",
    "get_registry",
    "get_tracer",
    "install_default_sources",
    "legacy_key",
    "plan_nodes",
    "set_tracing_enabled",
    "tracing_enabled",
    "using_tracing",
]
