"""Linear programming substrate: named LPs over HiGHS plus an exact rational simplex."""

from repro.lp.model import (
    InfeasibleProgramError,
    LinearProgram,
    LPSolution,
    UnboundedProgramError,
    solve_max,
)
from repro.lp.exact import (
    ExactLPError,
    ExactSolution,
    solve_min_with_inequalities,
    solve_standard_form,
)

__all__ = [
    "LinearProgram",
    "LPSolution",
    "InfeasibleProgramError",
    "UnboundedProgramError",
    "solve_max",
    "ExactLPError",
    "ExactSolution",
    "solve_standard_form",
    "solve_min_with_inequalities",
]
