"""Linear programming substrate: compiled sparse named LPs over HiGHS plus an
exact rational simplex (the semantics reference for the numeric path)."""

from repro.lp.model import (
    BoundedCache,
    CompiledConstraints,
    InfeasibleProgramError,
    LinearProgram,
    LPSolution,
    UnboundedProgramError,
    clear_lp_caches,
    count_lp_event,
    lp_cache_delta,
    lp_cache_stats,
    lp_caching_disabled,
    lp_caching_enabled,
    register_lp_cache,
    reset_lp_cache_stats,
    solve_max,
)
from repro.lp.exact import (
    ExactLPError,
    ExactSolution,
    solve_min_with_inequalities,
    solve_standard_form,
)

__all__ = [
    "LinearProgram",
    "LPSolution",
    "BoundedCache",
    "CompiledConstraints",
    "InfeasibleProgramError",
    "UnboundedProgramError",
    "solve_max",
    "lp_cache_stats",
    "lp_cache_delta",
    "reset_lp_cache_stats",
    "lp_caching_disabled",
    "lp_caching_enabled",
    "clear_lp_caches",
    "register_lp_cache",
    "count_lp_event",
    "ExactLPError",
    "ExactSolution",
    "solve_standard_form",
    "solve_min_with_inequalities",
]
