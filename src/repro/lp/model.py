"""A compile-once / solve-many linear-programming kernel over scipy's HiGHS.

Every information-theoretic computation in the library — polymatroid bounds,
fractional hypertree width, submodular width, Shannon-flow duals, fractional
edge covers — is a linear program.  This module gives them a single, named
interface: variables and constraints are referenced by name, and the solution
is returned as a dictionary, which keeps the call sites close to the paper's
notation (variables named ``h{X,Y}``, ``λ_B``, ``w_{Y|X}`` and so on).

The solver path is *compiled*: :meth:`LinearProgram.compile` lowers the
name-keyed constraint rows to cached sparse CSR matrices exactly once per
structural revision (adding a variable or a constraint invalidates the cache,
changing the objective does not), dropping duplicate rows along the way, and
stamps the result with a structural fingerprint.  :meth:`LinearProgram.solve`,
:meth:`LinearProgram.solve_many` and :meth:`LinearProgram.resolve` all reuse
the compiled matrices — a program solved against many objectives (one LP per
bag, one per selector, one per re-optimisation) pays the matrix construction
once.  ``resolve`` additionally supports per-solve right-hand-side overrides
and *ephemeral* extra variables/rows, which lets callers such as
``max min_B h(B)`` stack their auxiliary rows on top of a shared compiled
feasible region without mutating it.  On top of the compiled matrices each
program memoizes its optima per (objective, overrides, extra rows): HiGHS is
deterministic, so re-solving an unchanged program against an already-seen
objective — the repeated-run serving scenario the ROADMAP targets — skips
the solver call entirely.

Cache observability mirrors the storage backends' ``cache_stats``: every
compile, compiled-solve, region build/hit and dropped duplicate row bumps a
process-wide counter exposed through :func:`lp_cache_stats` (callers in
:mod:`repro.bounds`, :mod:`repro.entropy` and :mod:`repro.flows` report their
cache events into the same table).  :func:`lp_caching_disabled` restores the
historical rebuild-per-solve behaviour — the baseline that
``benchmarks/bench_lp_substrate.py`` measures against.
"""

from __future__ import annotations

import hashlib
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Hashable, Iterator, Mapping, Sequence

import numpy as np
from scipy import sparse
from scipy.optimize import linprog


class InfeasibleProgramError(RuntimeError):
    """Raised when an LP has no feasible solution."""


class UnboundedProgramError(RuntimeError):
    """Raised when an LP is unbounded in the optimisation direction."""


# ---------------------------------------------------------------------------
# process-wide cache bookkeeping (shared by the LP-adjacent caches)
# ---------------------------------------------------------------------------

_STATS: dict[str, int] = {}
# The engine's thread pool solves LPs for concurrent queries; the shared
# stats table needs the same read-modify-write guard as every other
# process-wide counter (lint rule REP108).
_STATS_LOCK = threading.Lock()
_CACHING_ENABLED: bool = True
_CACHE_CLEARERS: list[Callable[[], None]] = []


def count_lp_event(event: str, amount: int = 1) -> None:
    """Bump a counter in the shared LP cache-stats table."""
    if amount:
        with _STATS_LOCK:
            _STATS[event] = _STATS.get(event, 0) + amount


def lp_cache_stats() -> dict[str, int]:
    """Build/hit counters for every LP-layer cache (compiled matrices,
    polymatroid regions, elemental-inequality memo, Shannon-flow certificates,
    edge-cover programs, deduplicated rows)."""
    with _STATS_LOCK:
        return dict(_STATS)


def lp_cache_delta(before: Mapping[str, int]) -> dict[str, int]:
    """The nonzero counter movements since a ``before = lp_cache_stats()``
    snapshot — the per-run reporting used by the PANDA and optimizer traces."""
    return {event: count - before.get(event, 0)
            for event, count in lp_cache_stats().items()
            if count - before.get(event, 0)}


def reset_lp_cache_stats() -> None:
    with _STATS_LOCK:
        _STATS.clear()


def lp_caching_enabled() -> bool:
    """Whether the LP-layer caches are active (see :func:`lp_caching_disabled`)."""
    return _CACHING_ENABLED


def register_lp_cache(clear: Callable[[], None]) -> None:
    """Register a cache-clearing callback with :func:`clear_lp_caches`.

    The region/elemental/flow caches live in their own modules; registering
    here lets one call drop every LP-layer cache without import cycles.
    """
    _CACHE_CLEARERS.append(clear)


def clear_lp_caches() -> None:
    """Drop every registered LP-layer cache (compiled programs stay with
    their owning :class:`LinearProgram`; shared caches are emptied)."""
    for clear in _CACHE_CLEARERS:
        clear()


class BoundedCache:
    """A small LRU memo wired into the shared LP cache bookkeeping.

    Lookups and stores count ``{prefix}_hits`` / ``{prefix}_builds`` in
    :func:`lp_cache_stats`, the cache registers itself with
    :func:`clear_lp_caches`, and both operations are no-ops while
    :func:`lp_caching_disabled` is active.  The region, elemental-inequality,
    Shannon-flow and edge-cover caches are all instances.
    """

    def __init__(self, event_prefix: str, capacity: int) -> None:
        self._entries: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._prefix = event_prefix
        self._capacity = capacity
        register_lp_cache(self._entries.clear)

    def lookup(self, key: Hashable) -> Any | None:
        """The memoized value (counting a hit) or ``None``."""
        if not lp_caching_enabled():
            return None
        value = self._entries.get(key)
        if value is not None:
            self._entries.move_to_end(key)
            count_lp_event(f"{self._prefix}_hits")
        return value

    def store(self, key: Hashable, value: Any) -> Any:
        """Memoize ``value`` (counting a build), evicting least-recently-used."""
        if lp_caching_enabled():
            count_lp_event(f"{self._prefix}_builds")
            self._entries[key] = value
            while len(self._entries) > self._capacity:
                self._entries.popitem(last=False)
        return value


@contextmanager
def lp_caching_disabled() -> Iterator[None]:
    """Context manager restoring the legacy rebuild-per-solve behaviour.

    Inside the context every :meth:`LinearProgram.solve` recompiles its
    matrices from scratch and the shared caches (polymatroid regions,
    elemental inequalities, Shannon-flow certificates, edge covers) are
    bypassed.  The benchmarks use this as the baseline; it is also handy to
    rule the caches out when debugging a numeric discrepancy.
    """
    global _CACHING_ENABLED
    previous = _CACHING_ENABLED
    _CACHING_ENABLED = False
    try:
        yield
    finally:
        _CACHING_ENABLED = previous


# ---------------------------------------------------------------------------
# the program
# ---------------------------------------------------------------------------

@dataclass
class _Constraint:
    name: str
    coefficients: dict[str, float]
    rhs: float
    kind: str  # "le" or "eq"
    #: True when the caller declared the row through ``add_ge``: the stored
    #: row is the negated ``<=`` form, and RHS overrides addressed to this
    #: name arrive in the original ``>=`` orientation.
    negated: bool = False


@dataclass
class LPSolution:
    """The result of solving a :class:`LinearProgram`."""

    objective: float
    values: dict[str, float]
    status: str = "optimal"

    def value(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def nonzero(self, tolerance: float = 1e-9) -> dict[str, float]:
        return {name: value for name, value in self.values.items()
                if abs(value) > tolerance}


@dataclass
class CompiledConstraints:
    """The sparse lowering of a program's constraint system.

    ``a_ub``/``a_eq`` are CSR matrices over the program's variable order (or
    ``None`` when there are no rows of that kind); ``row_of_name`` maps every
    constraint name — including names whose rows were deduplicated away — to
    the ``(kind, row index)`` of its surviving representative.
    :meth:`LinearProgram.resolve` uses the per-name bookkeeping
    (``rhs_of_name`` keeps each original constraint's row-space RHS,
    ``negated_names`` the ``add_ge`` orientations, ``members_of_row`` the
    dedup groups) to apply RHS overrides without relaxing a deduplicated
    sibling constraint.
    """

    order: tuple[str, ...]
    index: dict[str, int]
    bounds: list[tuple[float | None, float | None]]
    a_ub: sparse.csr_matrix | None
    b_ub: np.ndarray
    a_eq: sparse.csr_matrix | None
    b_eq: np.ndarray
    row_of_name: dict[str, tuple[str, int]]
    rhs_of_name: dict[str, float]
    negated_names: frozenset[str]
    members_of_row: dict[tuple[str, int], tuple[str, ...]]
    dropped_duplicates: int
    fingerprint: str


#: Per-program cap on memoized optima (cleared wholesale when exceeded; the
#: width workloads keep a handful of objectives per region).
_SOLUTION_CACHE_CAP = 512


def _rows_to_csr(rows: Sequence[tuple[tuple[int, float], ...]],
                 columns: int) -> sparse.csr_matrix | None:
    if not rows:
        return None
    data: list[float] = []
    indices: list[int] = []
    indptr: list[int] = [0]
    for row in rows:
        for column, value in row:
            indices.append(column)
            data.append(value)
        indptr.append(len(indices))
    return sparse.csr_matrix((data, indices, indptr), shape=(len(rows), columns))


class LinearProgram:
    """A named-variable linear program with cached sparse compilation.

    Variables default to the bounds ``[0, +inf)``; constraints are ``<=`` or
    ``==`` rows over named variables; the objective may be minimised or
    maximised.  Structure (variables, bounds, constraint rows) is compiled to
    CSR matrices once and reused across :meth:`solve`, :meth:`solve_many` and
    :meth:`resolve` calls until the structure changes.
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._variables: dict[str, tuple[float | None, float | None]] = {}
        self._order: list[str] = []
        self._constraints: list[_Constraint] = []
        self._constraint_names: set[str] = set()
        self._objective: dict[str, float] = {}
        self._maximize = False
        self._revision = 0
        self._compiled: CompiledConstraints | None = None
        self._compiled_revision = -1
        #: Memoized optima keyed by (objective, sense, RHS overrides, extra
        #: rows); invalidated with the compiled matrices.  HiGHS is
        #: deterministic, so identical (structure, objective) re-solves — the
        #: repeated-run serving scenario — can skip the solver outright.
        self._solutions: dict[tuple, LPSolution] = {}

    # -------------------------------------------------------------- building
    def add_variable(self, name: str, lower: float | None = 0.0,
                     upper: float | None = None) -> str:
        """Declare a variable; re-declaring intersects the bound intervals.

        ``None`` means unbounded on that side.  If the intersection of the old
        and new intervals is empty the program is trivially infeasible and
        :class:`InfeasibleProgramError` is raised immediately, rather than
        letting the conflicting declaration be silently ignored.
        """
        if name not in self._variables:
            self._variables[name] = (lower, upper)
            self._order.append(name)
            self._revision += 1
            return name
        old_lower, old_upper = self._variables[name]
        new_lower = old_lower if lower is None else \
            (lower if old_lower is None else max(old_lower, lower))
        new_upper = old_upper if upper is None else \
            (upper if old_upper is None else min(old_upper, upper))
        if new_lower is not None and new_upper is not None and new_lower > new_upper:
            raise InfeasibleProgramError(
                f"{self.name}: re-declaring variable {name!r} with bounds "
                f"[{lower}, {upper}] leaves the empty interval "
                f"[{new_lower}, {new_upper}]")
        if (new_lower, new_upper) != (old_lower, old_upper):
            self._variables[name] = (new_lower, new_upper)
            self._revision += 1
        return name

    def variable_names(self) -> list[str]:
        return list(self._order)

    def variable_bounds(self, name: str) -> tuple[float | None, float | None]:
        return self._variables[name]

    def _require_variables(self, coefficients: Mapping[str, float]) -> None:
        for name in coefficients:
            if name not in self._variables:
                self.add_variable(name)

    def _constraint_name(self, name: str | None) -> str:
        """Validate (or generate) a constraint name; names address RHS
        overrides, so reusing one would make overrides ambiguous."""
        resolved = name or f"c{len(self._constraints)}"
        if resolved in self._constraint_names:
            raise ValueError(f"{self.name}: duplicate constraint name {resolved!r}")
        self._constraint_names.add(resolved)
        return resolved

    def add_le(self, coefficients: Mapping[str, float], rhs: float,
               name: str | None = None) -> None:
        """Add ``Σ coeff·x <= rhs``."""
        self._require_variables(coefficients)
        self._constraints.append(_Constraint(
            self._constraint_name(name), dict(coefficients), float(rhs), "le"))
        self._revision += 1

    def add_ge(self, coefficients: Mapping[str, float], rhs: float,
               name: str | None = None) -> None:
        """Add ``Σ coeff·x >= rhs`` (stored as the negated ``<=`` row).

        RHS overrides through :meth:`resolve` keep the caller's ``>=``
        orientation — the negation is re-applied internally.
        """
        negated = {variable: -value for variable, value in coefficients.items()}
        self._require_variables(negated)
        self._constraints.append(_Constraint(
            self._constraint_name(name), negated, -float(rhs), "le",
            negated=True))
        self._revision += 1

    def add_eq(self, coefficients: Mapping[str, float], rhs: float,
               name: str | None = None) -> None:
        """Add ``Σ coeff·x == rhs``."""
        self._require_variables(coefficients)
        self._constraints.append(_Constraint(
            self._constraint_name(name), dict(coefficients), float(rhs), "eq"))
        self._revision += 1

    def set_objective(self, coefficients: Mapping[str, float],
                      maximize: bool = False) -> None:
        """Set the default objective (does not invalidate compiled matrices)."""
        self._require_variables(coefficients)
        self._objective = dict(coefficients)
        self._maximize = maximize

    # ------------------------------------------------------------ compilation
    def compile(self) -> CompiledConstraints:
        """Lower the constraint system to cached CSR matrices.

        Identical rows (same kind, same coefficients and — for equalities —
        the same RHS) are emitted once; ``<=`` rows that differ only in the
        RHS keep the tightest bound.  Dropped rows are tallied in the
        ``dedup_dropped_rows`` counter of :func:`lp_cache_stats`.
        """
        if (self._compiled is not None and self._compiled_revision == self._revision
                and lp_caching_enabled()):
            count_lp_event("compile_hits")
            return self._compiled

        index = {name: position for position, name in enumerate(self._order)}
        ub_rows: list[tuple[tuple[int, float], ...]] = []
        ub_rhs: list[float] = []
        eq_rows: list[tuple[tuple[int, float], ...]] = []
        eq_rhs: list[float] = []
        ub_by_signature: dict[tuple, int] = {}
        eq_by_signature: dict[tuple, int] = {}
        row_of_name: dict[str, tuple[str, int]] = {}
        rhs_of_name: dict[str, float] = {}
        negated_names: set[str] = set()
        members_of_row: dict[tuple[str, int], list[str]] = {}
        dropped = 0
        for constraint in self._constraints:
            merged: dict[int, float] = {}
            for name, value in constraint.coefficients.items():
                if value:
                    column = index[name]
                    merged[column] = merged.get(column, 0.0) + value
            signature = tuple(sorted(merged.items()))
            if constraint.kind == "le":
                position = ub_by_signature.get(signature)
                if position is None:
                    position = len(ub_rhs)
                    ub_by_signature[signature] = position
                    ub_rows.append(signature)
                    ub_rhs.append(constraint.rhs)
                else:
                    ub_rhs[position] = min(ub_rhs[position], constraint.rhs)
                    dropped += 1
                row_of_name[constraint.name] = ("le", position)
                members_of_row.setdefault(("le", position), []).append(constraint.name)
            else:
                key = (signature, constraint.rhs)
                position = eq_by_signature.get(key)
                if position is None:
                    position = len(eq_rhs)
                    eq_by_signature[key] = position
                    eq_rows.append(signature)
                    eq_rhs.append(constraint.rhs)
                else:
                    dropped += 1
                row_of_name[constraint.name] = ("eq", position)
                members_of_row.setdefault(("eq", position), []).append(constraint.name)
            rhs_of_name[constraint.name] = constraint.rhs
            if constraint.negated:
                negated_names.add(constraint.name)

        digest = hashlib.sha1()
        digest.update(repr(tuple(self._order)).encode())
        digest.update(repr(tuple(self._variables[name] for name in self._order)).encode())
        digest.update(repr(list(zip(ub_rows, ub_rhs))).encode())
        digest.update(repr(list(zip(eq_rows, eq_rhs))).encode())

        compiled = CompiledConstraints(
            order=tuple(self._order),
            index=index,
            bounds=[self._variables[name] for name in self._order],
            a_ub=_rows_to_csr(ub_rows, len(self._order)),
            b_ub=np.array(ub_rhs, dtype=float),
            a_eq=_rows_to_csr(eq_rows, len(self._order)),
            b_eq=np.array(eq_rhs, dtype=float),
            row_of_name=row_of_name,
            rhs_of_name=rhs_of_name,
            negated_names=frozenset(negated_names),
            members_of_row={row: tuple(names)
                            for row, names in members_of_row.items()},
            dropped_duplicates=dropped,
            fingerprint=digest.hexdigest(),
        )
        if lp_caching_enabled():
            count_lp_event("compile_builds")
            count_lp_event("dedup_dropped_rows", dropped)
        self._compiled = compiled
        self._compiled_revision = self._revision
        self._solutions.clear()
        return compiled

    def fingerprint(self) -> str:
        """Structural fingerprint of the compiled constraint system."""
        return self.compile().fingerprint

    # --------------------------------------------------------------- solving
    def solve(self) -> LPSolution:
        """Solve with HiGHS (through the compiled matrices).

        Raises :class:`InfeasibleProgramError` / :class:`UnboundedProgramError`
        on the corresponding solver statuses.
        """
        return self.resolve()

    def solve_many(self, objectives: Sequence[Mapping[str, float]],
                   maximize: bool = False) -> list[LPSolution]:
        """Solve the program once per objective, compiling the matrices once.

        This is the bulk entry point for the width computations: ``fhtw``
        solves one objective per bag and ``subw`` one per selector against the
        literally identical feasible region.
        """
        self.compile()
        return [self.resolve(objective=objective, maximize=maximize)
                for objective in objectives]

    def resolve(self, objective: Mapping[str, float] | None = None,
                maximize: bool | None = None,
                rhs_updates: Mapping[str, float] | None = None,
                extra_variables: Mapping[str, tuple[float | None, float | None]] | None = None,
                extra_le: Sequence[tuple[Mapping[str, float], float]] | None = None,
                ) -> LPSolution:
        """Re-solve against the compiled matrices without rebuilding them.

        ``objective``/``maximize`` default to the stored objective;
        ``rhs_updates`` overrides right-hand sides by constraint name for
        this solve only, in each constraint's original orientation (an
        ``add_ge`` row takes its new ``>=`` bound).  Overrides are
        dedup-aware: a sibling constraint sharing a deduplicated ``<=`` row
        keeps enforcing its own RHS (the tightest effective bound wins), and
        conflicting overrides on a shared equality row raise
        :class:`InfeasibleProgramError`.  ``extra_variables`` and ``extra_le`` append
        ephemeral columns and ``<=`` rows for this solve only — the compiled
        base region and the program itself are left untouched.  A re-solve
        whose (objective, overrides, extra rows) were already seen against
        the current compiled structure returns the memoized optimum.
        """
        compiled = self.compile()
        extras = dict(extra_variables or {})
        coefficients = self._objective if objective is None else objective
        sense_max = self._maximize if maximize is None else maximize

        solution_key = None
        if lp_caching_enabled():
            solution_key = (
                tuple(sorted(coefficients.items())), sense_max,
                tuple(sorted(rhs_updates.items())) if rhs_updates else (),
                tuple(extras.items()),
                tuple((tuple(sorted(row.items())), rhs)
                      for row, rhs in (extra_le or ())),
            )
            memoized = self._solutions.get(solution_key)
            if memoized is not None:
                count_lp_event("solution_hits")
                return LPSolution(objective=memoized.objective,
                                  values=dict(memoized.values),
                                  status=memoized.status)

        order = list(compiled.order) + list(extras)
        if not order:
            return LPSolution(objective=0.0, values={})
        index = dict(compiled.index)
        for offset, name in enumerate(extras):
            if name in index:
                raise ValueError(f"{self.name}: extra variable {name!r} "
                                 "shadows a declared variable")
            index[name] = len(compiled.order) + offset

        cost = np.zeros(len(order))
        for name, value in coefficients.items():
            position = index.get(name)
            if position is None:
                raise ValueError(f"{self.name}: objective references unknown "
                                 f"variable {name!r}")
            cost[position] = value
        if sense_max:
            cost = -cost

        b_ub = compiled.b_ub
        b_eq = compiled.b_eq
        if rhs_updates:
            b_ub = b_ub.copy()
            b_eq = b_eq.copy()
            # Collect row-space overrides per compiled row: an update keeps
            # its constraint's original orientation (add_ge rows arrive as
            # the new >= bound), and a deduplicated sibling that was *not*
            # updated keeps enforcing its own RHS.
            per_row: dict[tuple[str, int], dict[str, float]] = {}
            for name, value in rhs_updates.items():
                located = compiled.row_of_name.get(name)
                if located is None:
                    raise KeyError(f"{self.name}: no constraint named {name!r}")
                row_value = -float(value) if name in compiled.negated_names \
                    else float(value)
                per_row.setdefault(located, {})[name] = row_value
            for (kind, row), overrides in per_row.items():
                members = compiled.members_of_row[(kind, row)]
                effective = [overrides.get(member, compiled.rhs_of_name[member])
                             for member in members]
                if kind == "le":
                    b_ub[row] = min(effective)
                else:
                    if len(set(effective)) > 1:
                        raise InfeasibleProgramError(
                            f"{self.name}: conflicting RHS overrides for the "
                            f"equality row shared by {list(members)}")
                    b_eq[row] = effective[0]

        a_ub = compiled.a_ub
        a_eq = compiled.a_eq
        if extras:
            pad = len(extras)
            if a_ub is not None:
                a_ub = sparse.hstack(
                    [a_ub, sparse.csr_matrix((a_ub.shape[0], pad))], format="csr")
            if a_eq is not None:
                a_eq = sparse.hstack(
                    [a_eq, sparse.csr_matrix((a_eq.shape[0], pad))], format="csr")
        if extra_le:
            extra_rows: list[tuple[tuple[int, float], ...]] = []
            extra_rhs: list[float] = []
            for row_coefficients, rhs in extra_le:
                merged: dict[int, float] = {}
                for name, value in row_coefficients.items():
                    position = index.get(name)
                    if position is None:
                        raise ValueError(f"{self.name}: extra row references "
                                         f"unknown variable {name!r}")
                    if value:
                        merged[position] = merged.get(position, 0.0) + value
                extra_rows.append(tuple(sorted(merged.items())))
                extra_rhs.append(float(rhs))
            appended = _rows_to_csr(extra_rows, len(order))
            a_ub = appended if a_ub is None else \
                sparse.vstack([a_ub, appended], format="csr")
            b_ub = np.concatenate([b_ub, np.array(extra_rhs, dtype=float)])

        bounds = compiled.bounds + [extras[name] for name in extras]
        result = linprog(
            c=cost,
            A_ub=a_ub if a_ub is not None and a_ub.shape[0] else None,
            b_ub=b_ub if b_ub.size else None,
            A_eq=a_eq if a_eq is not None and a_eq.shape[0] else None,
            b_eq=b_eq if b_eq.size else None,
            bounds=bounds,
            method="highs",
        )
        if result.status == 2:
            raise InfeasibleProgramError(f"{self.name}: infeasible")
        if result.status == 3:
            raise UnboundedProgramError(f"{self.name}: unbounded")
        if not result.success:  # pragma: no cover - defensive
            raise RuntimeError(f"{self.name}: solver failed with status {result.status}")
        objective_value = float(result.fun)
        if sense_max:
            objective_value = -objective_value
        values = {name: float(result.x[index[name]]) for name in order}
        solution = LPSolution(objective=objective_value, values=values)
        if solution_key is not None:
            count_lp_event("solution_builds")
            if len(self._solutions) >= _SOLUTION_CACHE_CAP:
                self._solutions.clear()
            self._solutions[solution_key] = LPSolution(
                objective=objective_value, values=dict(values))
        return solution

    # ------------------------------------------------------------- reporting
    @property
    def num_variables(self) -> int:
        return len(self._order)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def describe(self) -> str:
        """A short human-readable summary (used by ``explain`` outputs)."""
        sense = "max" if self._maximize else "min"
        summary = (f"{self.name}: {sense} over {self.num_variables} variables, "
                   f"{self.num_constraints} constraints")
        if self._compiled is not None and self._compiled_revision == self._revision \
                and self._compiled.dropped_duplicates:
            summary += f" ({self._compiled.dropped_duplicates} duplicate rows dropped)"
        return summary


def solve_max(objective: Mapping[str, float],
              less_equal: Sequence[tuple[Mapping[str, float], float]],
              name: str = "lp") -> LPSolution:
    """One-shot helper: maximise ``objective`` subject to ``<=`` rows."""
    program = LinearProgram(name)
    for coefficients, rhs in less_equal:
        program.add_le(coefficients, rhs)
    program.set_objective(objective, maximize=True)
    return program.solve()
