"""A small linear-programming front end over scipy's HiGHS solver.

Every information-theoretic computation in the library — polymatroid bounds,
fractional hypertree width, submodular width, Shannon-flow duals, fractional
edge covers — is a linear program.  This module gives them a single, named
interface: variables and constraints are referenced by name, and the solution
is returned as a dictionary, which keeps the call sites close to the paper's
notation (variables named ``h{X,Y}``, ``λ_B``, ``w_{Y|X}`` and so on).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np
from scipy.optimize import linprog


class InfeasibleProgramError(RuntimeError):
    """Raised when an LP has no feasible solution."""


class UnboundedProgramError(RuntimeError):
    """Raised when an LP is unbounded in the optimisation direction."""


@dataclass
class _Constraint:
    name: str
    coefficients: dict[str, float]
    rhs: float
    kind: str  # "le" or "eq"


@dataclass
class LPSolution:
    """The result of solving a :class:`LinearProgram`."""

    objective: float
    values: dict[str, float]
    status: str = "optimal"

    def value(self, name: str, default: float = 0.0) -> float:
        return self.values.get(name, default)

    def nonzero(self, tolerance: float = 1e-9) -> dict[str, float]:
        return {name: value for name, value in self.values.items()
                if abs(value) > tolerance}


class LinearProgram:
    """A named-variable linear program.

    Variables default to the bounds ``[0, +inf)``; constraints are ``<=`` or
    ``==`` rows over named variables; the objective may be minimised or
    maximised.
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._variables: dict[str, tuple[float | None, float | None]] = {}
        self._order: list[str] = []
        self._constraints: list[_Constraint] = []
        self._objective: dict[str, float] = {}
        self._maximize = False

    # -------------------------------------------------------------- building
    def add_variable(self, name: str, lower: float | None = 0.0,
                     upper: float | None = None) -> str:
        """Declare a variable (idempotent; re-declaring tightens nothing)."""
        if name not in self._variables:
            self._variables[name] = (lower, upper)
            self._order.append(name)
        return name

    def variable_names(self) -> list[str]:
        return list(self._order)

    def _require_variables(self, coefficients: Mapping[str, float]) -> None:
        for name in coefficients:
            if name not in self._variables:
                self.add_variable(name)

    def add_le(self, coefficients: Mapping[str, float], rhs: float,
               name: str | None = None) -> None:
        """Add ``Σ coeff·x <= rhs``."""
        self._require_variables(coefficients)
        self._constraints.append(_Constraint(
            name or f"c{len(self._constraints)}", dict(coefficients), float(rhs), "le"))

    def add_ge(self, coefficients: Mapping[str, float], rhs: float,
               name: str | None = None) -> None:
        """Add ``Σ coeff·x >= rhs`` (stored as the negated ``<=`` row)."""
        negated = {variable: -value for variable, value in coefficients.items()}
        self.add_le(negated, -float(rhs), name=name)

    def add_eq(self, coefficients: Mapping[str, float], rhs: float,
               name: str | None = None) -> None:
        """Add ``Σ coeff·x == rhs``."""
        self._require_variables(coefficients)
        self._constraints.append(_Constraint(
            name or f"c{len(self._constraints)}", dict(coefficients), float(rhs), "eq"))

    def set_objective(self, coefficients: Mapping[str, float],
                      maximize: bool = False) -> None:
        self._require_variables(coefficients)
        self._objective = dict(coefficients)
        self._maximize = maximize

    # --------------------------------------------------------------- solving
    def solve(self) -> LPSolution:
        """Solve with HiGHS and return an :class:`LPSolution`.

        Raises :class:`InfeasibleProgramError` / :class:`UnboundedProgramError`
        on the corresponding solver statuses.
        """
        if not self._order:
            return LPSolution(objective=0.0, values={})
        index = {name: position for position, name in enumerate(self._order)}
        count = len(self._order)
        cost = np.zeros(count)
        for name, value in self._objective.items():
            cost[index[name]] = value
        if self._maximize:
            cost = -cost

        a_ub_rows, b_ub, a_eq_rows, b_eq = [], [], [], []
        for constraint in self._constraints:
            row = np.zeros(count)
            for name, value in constraint.coefficients.items():
                row[index[name]] += value
            if constraint.kind == "le":
                a_ub_rows.append(row)
                b_ub.append(constraint.rhs)
            else:
                a_eq_rows.append(row)
                b_eq.append(constraint.rhs)

        bounds = [self._variables[name] for name in self._order]
        result = linprog(
            c=cost,
            A_ub=np.array(a_ub_rows) if a_ub_rows else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq_rows) if a_eq_rows else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=bounds,
            method="highs",
        )
        if result.status == 2:
            raise InfeasibleProgramError(f"{self.name}: infeasible")
        if result.status == 3:
            raise UnboundedProgramError(f"{self.name}: unbounded")
        if not result.success:  # pragma: no cover - defensive
            raise RuntimeError(f"{self.name}: solver failed with status {result.status}")
        objective = float(result.fun)
        if self._maximize:
            objective = -objective
        values = {name: float(result.x[index[name]]) for name in self._order}
        return LPSolution(objective=objective, values=values)

    # ------------------------------------------------------------- reporting
    @property
    def num_variables(self) -> int:
        return len(self._order)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    def describe(self) -> str:
        """A short human-readable summary (used by ``explain`` outputs)."""
        sense = "max" if self._maximize else "min"
        return (f"{self.name}: {sense} over {self.num_variables} variables, "
                f"{self.num_constraints} constraints")


def solve_max(objective: Mapping[str, float],
              less_equal: Sequence[tuple[Mapping[str, float], float]],
              name: str = "lp") -> LPSolution:
    """One-shot helper: maximise ``objective`` subject to ``<=`` rows."""
    program = LinearProgram(name)
    for coefficients, rhs in less_equal:
        program.add_le(coefficients, rhs)
    program.set_objective(objective, maximize=True)
    return program.solve()
