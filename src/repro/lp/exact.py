"""An exact rational simplex solver.

The Shannon-flow certificates of Section 6.2 must be *exact* rational
inequalities before they can be turned into integral proof sequences
(Section 7).  The numeric path solves the dual LP with HiGHS and then
rationalises the answer; this module provides an independent, exact fallback:
a dense two-phase simplex over :class:`fractions.Fraction`, with Bland's rule
to guarantee termination.  It is only suitable for small programs (hundreds of
variables), which is exactly the size of the flow LPs for the queries studied
in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence


class ExactLPError(RuntimeError):
    """Raised when an exact LP is infeasible or unbounded."""


@dataclass
class ExactSolution:
    """Solution of an exact LP: optimal objective and variable values."""

    objective: Fraction
    values: list[Fraction]


def _pivot(tableau: list[list[Fraction]], basis: list[int], row: int, col: int) -> None:
    """Pivot the tableau on (row, col) in place."""
    pivot_value = tableau[row][col]
    tableau[row] = [entry / pivot_value for entry in tableau[row]]
    for other in range(len(tableau)):
        if other == row:
            continue
        factor = tableau[other][col]
        if factor == 0:
            continue
        tableau[other] = [entry - factor * pivot_row_entry
                          for entry, pivot_row_entry in zip(tableau[other], tableau[row])]
    basis[row] = col


def _run_simplex(tableau: list[list[Fraction]], basis: list[int],
                 num_columns: int) -> None:
    """Run the simplex method with Bland's rule until optimality.

    The last row of the tableau is the objective row (to be minimised); the
    last column is the right-hand side.
    """
    objective_row = len(tableau) - 1
    max_iterations = 50_000
    for _ in range(max_iterations):
        entering = None
        for col in range(num_columns):
            # repro-analysis: allow[REP106] -- exact rational simplex: the tableau holds Fractions, so comparisons are exact and need no epsilon
            if tableau[objective_row][col] < 0:
                entering = col
                break
        if entering is None:
            return
        leaving = None
        best_ratio: Fraction | None = None
        for row in range(objective_row):
            coefficient = tableau[row][entering]
            if coefficient > 0:
                ratio = tableau[row][-1] / coefficient
                if best_ratio is None or ratio < best_ratio or (
                        ratio == best_ratio and basis[row] < basis[leaving]):
                    best_ratio = ratio
                    leaving = row
        if leaving is None:
            raise ExactLPError("linear program is unbounded")
        _pivot(tableau, basis, leaving, entering)
    raise ExactLPError("simplex did not converge (iteration cap reached)")


def solve_standard_form(costs: Sequence[Fraction | int],
                        matrix: Sequence[Sequence[Fraction | int]],
                        rhs: Sequence[Fraction | int]) -> ExactSolution:
    """Solve ``min c·x  s.t.  A x = b, x >= 0`` exactly.

    Uses the two-phase simplex method: phase one minimises the sum of
    artificial variables to find a basic feasible solution, phase two
    optimises the true objective.
    """
    num_rows = len(matrix)
    num_cols = len(costs)
    cost_row = [Fraction(value) for value in costs]
    rows = [[Fraction(value) for value in row] for row in matrix]
    b = [Fraction(value) for value in rhs]
    if any(len(row) != num_cols for row in rows):
        raise ValueError("matrix rows must match the number of cost coefficients")
    if len(b) != num_rows:
        raise ValueError("rhs length must match the number of rows")

    # Normalise to b >= 0 so artificial variables start feasible.
    for i in range(num_rows):
        if b[i] < 0:
            rows[i] = [-value for value in rows[i]]
            b[i] = -b[i]

    total_cols = num_cols + num_rows  # original + artificial variables
    tableau: list[list[Fraction]] = []
    basis: list[int] = []
    for i in range(num_rows):
        row = list(rows[i]) + [Fraction(0)] * num_rows + [b[i]]
        row[num_cols + i] = Fraction(1)
        tableau.append(row)
        basis.append(num_cols + i)

    # Phase one objective: minimise the sum of artificials.
    phase_one = [Fraction(0)] * (total_cols + 1)
    for i in range(num_rows):
        phase_one = [p - entry for p, entry in zip(phase_one, tableau[i])]
    for j in range(num_cols, total_cols):
        phase_one[j] += Fraction(1)
    # Reduce: artificial columns in the basis already have cost 1; subtracting
    # each row once produces the correct reduced-cost row.
    tableau.append(phase_one)
    _run_simplex(tableau, basis, total_cols)
    if tableau[-1][-1] != 0:
        raise ExactLPError("linear program is infeasible")
    tableau.pop()

    # Drive any artificial variables out of the basis if possible.
    for row_index, basic in enumerate(basis):
        if basic >= num_cols:
            pivot_col = next((col for col in range(num_cols)
                              if tableau[row_index][col] != 0), None)
            if pivot_col is not None:
                _pivot(tableau, basis, row_index, pivot_col)

    # Phase two: the real objective, expressed in terms of the current basis.
    objective = [Fraction(0)] * (total_cols + 1)
    for j in range(num_cols):
        objective[j] = cost_row[j]
    for row_index, basic in enumerate(basis):
        coefficient = objective[basic]
        if coefficient != 0:
            objective = [obj - coefficient * entry
                         for obj, entry in zip(objective, tableau[row_index])]
    tableau.append(objective)
    # Forbid re-entering artificial columns by pricing them at +infinity;
    # easiest exact trick: simply never let them have a negative reduced cost.
    for j in range(num_cols, total_cols):
        if tableau[-1][j] < 0:
            tableau[-1][j] = Fraction(0)
    _run_simplex(tableau, basis, num_cols)

    values = [Fraction(0)] * num_cols
    for row_index, basic in enumerate(basis):
        if basic < num_cols:
            values[basic] = tableau[row_index][-1]
    objective_value = sum(cost_row[j] * values[j] for j in range(num_cols))
    return ExactSolution(objective=objective_value, values=values)


def solve_min_with_inequalities(costs: Sequence[Fraction | int],
                                le_matrix: Sequence[Sequence[Fraction | int]],
                                le_rhs: Sequence[Fraction | int],
                                eq_matrix: Sequence[Sequence[Fraction | int]] = (),
                                eq_rhs: Sequence[Fraction | int] = ()) -> ExactSolution:
    """Solve ``min c·x  s.t.  A_le x <= b_le, A_eq x = b_eq, x >= 0`` exactly.

    Slack variables are appended to turn ``<=`` rows into equalities; the
    reported solution drops them.
    """
    num_original = len(costs)
    num_slacks = len(le_matrix)
    full_costs = [Fraction(value) for value in costs] + [Fraction(0)] * num_slacks
    matrix: list[list[Fraction]] = []
    rhs: list[Fraction] = []
    for index, row in enumerate(le_matrix):
        extended = [Fraction(value) for value in row] + [Fraction(0)] * num_slacks
        extended[num_original + index] = Fraction(1)
        matrix.append(extended)
        rhs.append(Fraction(le_rhs[index]))
    for index, row in enumerate(eq_matrix):
        extended = [Fraction(value) for value in row] + [Fraction(0)] * num_slacks
        matrix.append(extended)
        rhs.append(Fraction(eq_rhs[index]))
    solution = solve_standard_form(full_costs, matrix, rhs)
    return ExactSolution(objective=solution.objective,
                         values=solution.values[:num_original])
