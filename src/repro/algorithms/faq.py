"""Functional aggregate queries: semiring evaluation by variable elimination (Section 9.1).

An FAQ computes ``⊕_{bound variables} ⊗_{atoms} annotation`` over a commutative
semiring.  For the Boolean semiring this is CQ evaluation; for the counting
semiring it is #CQ; for min-plus it finds minimum-weight assignments.  The
evaluation here is classical variable elimination along an elimination order
of the bound variables (equivalently, dynamic programming over a tree
decomposition), which is exact for every semiring.  PANDA-style adaptive
partitioning is only sound for idempotent semirings — the paper's Section 9.1
point — so the adaptive path (``repro.panda``) refuses non-idempotent
semirings and this module is the reference evaluator for counting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.semiring import AnnotatedRelation, Semiring


@dataclass
class FAQResult:
    """Result of an FAQ evaluation: a relation over the free variables with
    semiring annotations, plus the largest intermediate factor size."""

    output: AnnotatedRelation
    max_intermediate: int

    def scalar(self):
        """The single aggregate value (for Boolean queries)."""
        return self.output.total()

    def as_dict(self) -> dict[tuple, object]:
        return {row: value for row, value in self.output.items()}


def evaluate_faq(query: ConjunctiveQuery, database: Database, semiring: Semiring,
                 weight: Callable[[str, dict], object] | None = None,
                 elimination_order: Sequence[str] | None = None) -> FAQResult:
    """Evaluate the FAQ version of ``query`` over ``semiring``.

    Parameters
    ----------
    weight:
        Optional function ``(relation_name, tuple_as_dict) -> annotation``
        giving each input tuple its annotation; by default every tuple is
        annotated with the semiring's ``one`` (so counting counts solutions).
    elimination_order:
        Order in which the bound (existential) variables are eliminated;
        defaults to a greedy min-degree-style order.
    """
    factors: list[AnnotatedRelation] = []
    for atom, relation in zip(query.atoms, database.bind_query(query)):
        if weight is None:
            factors.append(AnnotatedRelation.from_relation(relation, semiring))
        else:
            factors.append(AnnotatedRelation.from_relation(
                relation, semiring,
                weight=lambda row, name=atom.relation: weight(name, row)))
    order = list(elimination_order) if elimination_order \
        else greedy_elimination_order(query)
    unknown = set(order) - query.bound_variables
    if unknown:
        raise ValueError(f"cannot eliminate free or unknown variables: {sorted(unknown)}")
    max_intermediate = max((len(f) for f in factors), default=0)

    for variable in order:
        touching = [f for f in factors if variable in f.column_set]
        untouched = [f for f in factors if variable not in f.column_set]
        if not touching:
            continue
        combined = touching[0]
        for factor in touching[1:]:
            combined = combined.join(factor)
            max_intermediate = max(max_intermediate, len(combined))
        keep = [c for c in combined.columns if c != variable]
        combined = combined.marginalize(keep)
        max_intermediate = max(max_intermediate, len(combined))
        factors = untouched + [combined]

    result = factors[0]
    for factor in factors[1:]:
        result = result.join(factor)
        max_intermediate = max(max_intermediate, len(result))
    remaining_bound = [c for c in result.columns if c in query.bound_variables]
    if remaining_bound:
        result = result.marginalize([c for c in result.columns
                                     if c not in set(remaining_bound)])
    result = result.marginalize(sorted(query.free_variables))
    max_intermediate = max(max_intermediate, len(result))
    return FAQResult(output=result, max_intermediate=max_intermediate)


def greedy_elimination_order(query: ConjunctiveQuery) -> list[str]:
    """Min-fill-style greedy order over the bound variables.

    At each step the bound variable whose elimination creates the smallest
    clique (fewest neighbours in the current hypergraph) is chosen.
    """
    edges = [set(atom.varset) for atom in query.atoms]
    remaining = set(query.bound_variables)
    order: list[str] = []
    while remaining:
        def neighbour_count(variable: str) -> int:
            neighbours: set[str] = set()
            for edge in edges:
                if variable in edge:
                    neighbours.update(edge)
            neighbours.discard(variable)
            return len(neighbours)

        best = min(sorted(remaining), key=neighbour_count)
        neighbours: set[str] = set()
        new_edges = []
        for edge in edges:
            if best in edge:
                neighbours.update(edge - {best})
            else:
                new_edges.append(edge)
        if neighbours:
            new_edges.append(neighbours)
        edges = new_edges
        order.append(best)
        remaining.remove(best)
    return order


def count_query_answers(query: ConjunctiveQuery, database: Database) -> int:
    """#CQ under *bag* semantics: the number of satisfying assignments to all variables.

    This counts assignments of every variable (the quantity probabilistic and
    counting applications care about); for the number of *distinct output
    tuples* use set-semantics evaluation instead.
    """
    from repro.relational.semiring import COUNTING_SEMIRING

    full = query.full_version()
    result = evaluate_faq(full, database, COUNTING_SEMIRING)
    total = result.output.marginalize([]).total() if len(result.output) else 0
    return int(total)
