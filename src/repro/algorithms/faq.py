"""Functional aggregate queries: semiring evaluation by variable elimination (Section 9.1).

An FAQ computes ``⊕_{bound variables} ⊗_{atoms} annotation`` over a commutative
semiring.  For the Boolean semiring this is CQ evaluation; for the counting
semiring it is #CQ; for min-plus it finds minimum-weight assignments.  The
evaluation here is classical variable elimination along an elimination order
of the bound variables (equivalently, dynamic programming over a tree
decomposition), which is exact for every semiring.  PANDA-style adaptive
partitioning is only sound for idempotent semirings — the paper's Section 9.1
point — so the adaptive path (``repro.panda``) refuses non-idempotent
semirings and this module is the reference evaluator for counting.

The evaluator runs on the annotated storage engine
(:mod:`repro.relational.storage`): factors come from the database's memoized
annotated bindings, eliminations go through each factor's (possibly cached)
per-variable probe indexes, and the eliminated variable is ⊕-aggregated *on
the fly* during its last join (aggregation pushdown) instead of being
projected out of a materialised intermediate.  Under the columnar annotated
engine, repeated evaluation of the same query family against the same
database reuses every base-factor index — the speedup measured by
``benchmarks/bench_faq_backends.py``.

Each elimination step is a :meth:`AnnotatedRelation.join_marginalize`, which
on kernel-capable backends (:mod:`repro.relational.kernels`) fuses the
⊗-join and the ⊕-fold into vectorized grouped reductions
(``np.add/minimum/maximum.reduceat``) for the exactly-representable
semirings (counting, boolean, min-plus, max-min, max-times); anything else
— e.g. the top-k min-plus semiring — falls back to the reference path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import WorkCounter
from repro.relational.semiring import AnnotatedRelation, Semiring
from repro.telemetry.trace import get_tracer


@dataclass
class FAQResult:
    """Result of an FAQ evaluation: a relation over the free variables with
    semiring annotations, plus the largest intermediate factor size."""

    output: AnnotatedRelation
    max_intermediate: int

    def scalar(self):
        """The single aggregate value (for Boolean queries)."""
        return self.output.total()

    def as_dict(self) -> dict[tuple, object]:
        return {row: value for row, value in self.output.items()}


def evaluate_faq(query: ConjunctiveQuery, database: Database, semiring: Semiring,
                 weight: Callable[[str, dict], object] | None = None,
                 weight_key: str | None = None,
                 elimination_order: Sequence[str] | None = None,
                 counter: WorkCounter | None = None) -> FAQResult:
    """Evaluate the FAQ version of ``query`` over ``semiring``.

    Parameters
    ----------
    weight:
        Optional function ``(relation_name, tuple_as_dict) -> annotation``
        giving each input tuple its annotation; by default every tuple is
        annotated with the semiring's ``one`` (so counting counts solutions).
    weight_key:
        Stable name for ``weight``; when given, the annotated factors it
        produces are memoized on the database (and their join indexes stay
        warm across repeated evaluations) just like the default annotation.
    elimination_order:
        Order in which the bound (existential) variables are eliminated;
        defaults to a greedy min-degree-style order.
    counter:
        Optional :class:`~repro.relational.operators.WorkCounter`: each
        elimination step tallies the combined factor's size, and the
        counter's cancellation token is consulted before every elimination
        and every trailing join, so a deadline-exceeded FAQ raises
        :class:`~repro.utils.cancellation.QueryCancelledError` mid-plan.
    """
    factors: list[AnnotatedRelation] = []
    for atom in query.atoms:
        if weight is None:
            factors.append(database.annotated_atom(atom, semiring))
        else:
            factors.append(database.annotated_atom(
                atom, semiring,
                weight=lambda row, name=atom.relation: weight(name, row),
                weight_key=weight_key))
    order = list(elimination_order) if elimination_order \
        else greedy_elimination_order(query)
    unknown = set(order) - query.bound_variables
    if unknown:
        raise ValueError(f"cannot eliminate free or unknown variables: {sorted(unknown)}")
    max_intermediate = max((len(f) for f in factors), default=0)

    for variable in order:
        touching = [f for f in factors if variable in f.column_set]
        untouched = [f for f in factors if variable not in f.column_set]
        if not touching:
            continue
        if counter is not None:
            counter.check()
        with get_tracer().span("faq.eliminate",
                               {"variable": variable,
                                "factors": len(touching)}) as span:
            combined, peak = _eliminate(touching, variable)
            span.set("rows_out", len(combined))
        max_intermediate = max(max_intermediate, peak)
        if counter is not None:
            counter.tally(len(combined), peak,
                          note=f"eliminate {variable}: {len(combined)} tuples")
        factors = untouched + [combined]

    result = factors[0]
    for factor in factors[1:]:
        if counter is not None:
            counter.check()
        result = result.join(factor)
        max_intermediate = max(max_intermediate, len(result))
        if counter is not None:
            counter.tally(len(result), len(result),
                          note=f"join remaining factor -> {len(result)} tuples")
    remaining_bound = [c for c in result.columns if c in query.bound_variables]
    if remaining_bound:
        result = result.marginalize([c for c in result.columns
                                     if c not in set(remaining_bound)])
    result = result.marginalize(sorted(query.free_variables))
    max_intermediate = max(max_intermediate, len(result))
    return FAQResult(output=result, max_intermediate=max_intermediate)


def _eliminate(touching: Sequence[AnnotatedRelation],
               variable: str) -> tuple[AnnotatedRelation, int]:
    """⊕-eliminate ``variable`` from the factors that mention it.

    A single touching factor is marginalized directly (served by the
    backend's memoized marginal group-by).  With several, the factors are
    joined left to right and the last join aggregates the variable away on
    the fly — the full join over the eliminated variable is never
    materialised.  Returns the combined factor together with the size of the
    largest relation materialised along the way (with three or more touching
    factors the leading joins are still full joins).
    """
    if len(touching) == 1:
        factor = touching[0]
        combined = factor.marginalize([c for c in factor.columns if c != variable])
        return combined, len(combined)
    combined = touching[0]
    peak = 0
    for factor in touching[1:-1]:
        combined = combined.join(factor)
        peak = max(peak, len(combined))
    combined = combined.join_marginalize(touching[-1], drop=(variable,))
    return combined, max(peak, len(combined))


def greedy_elimination_order(query: ConjunctiveQuery) -> list[str]:
    """Min-fill-style greedy order over the bound variables.

    At each step the bound variable whose elimination creates the smallest
    clique (fewest neighbours in the current hypergraph) is chosen.
    """
    edges = [set(atom.varset) for atom in query.atoms]
    remaining = set(query.bound_variables)
    order: list[str] = []
    while remaining:
        def neighbour_count(variable: str) -> int:
            neighbours: set[str] = set()
            for edge in edges:
                if variable in edge:
                    neighbours.update(edge)
            neighbours.discard(variable)
            return len(neighbours)

        best = min(sorted(remaining), key=neighbour_count)
        neighbours: set[str] = set()
        new_edges = []
        for edge in edges:
            if best in edge:
                neighbours.update(edge - {best})
            else:
                new_edges.append(edge)
        if neighbours:
            new_edges.append(neighbours)
        edges = new_edges
        order.append(best)
        remaining.remove(best)
    return order


def count_query_answers(query: ConjunctiveQuery, database: Database) -> int:
    """#CQ under *bag* semantics: the number of satisfying assignments to all variables.

    This counts assignments of every variable (the quantity probabilistic and
    counting applications care about); for the number of *distinct output
    tuples* use set-semantics evaluation instead.
    """
    from repro.relational.semiring import COUNTING_SEMIRING

    full = query.full_version()
    result = evaluate_faq(full, database, COUNTING_SEMIRING)
    total = result.output.marginalize([]).total() if len(result.output) else 0
    return int(total)
