"""Query evaluation algorithms: baselines, worst-case optimal joins, Yannakakis,
static tree-decomposition plans, semiring (FAQ) evaluation and matrix-multiplication
based evaluation."""

from repro.algorithms.bruteforce import (
    boolean_answer,
    count_answers,
    evaluate_bruteforce,
    full_join_of_query,
)
from repro.algorithms.binary_join import (
    BinaryPlanReport,
    best_binary_plan,
    evaluate_binary_plan,
    greedy_atom_order,
)
from repro.algorithms.generic_join import generic_join, generic_join_full
from repro.algorithms.yannakakis import (
    CyclicQueryError,
    evaluate_yannakakis,
    yannakakis_over_relations,
)
from repro.algorithms.static_plan import (
    StaticPlanReport,
    compute_bag_relation,
    evaluate_static_plan,
)
from repro.algorithms.faq import (
    FAQResult,
    count_query_answers,
    evaluate_faq,
    greedy_elimination_order,
)
from repro.algorithms.matmul import (
    OMEGA,
    count_four_cycles,
    count_triangles,
    count_two_paths,
    four_cycle_exists,
    matrix_multiplication_cost,
    relation_to_matrix,
)

__all__ = [
    "evaluate_bruteforce",
    "full_join_of_query",
    "boolean_answer",
    "count_answers",
    "evaluate_binary_plan",
    "best_binary_plan",
    "greedy_atom_order",
    "BinaryPlanReport",
    "generic_join",
    "generic_join_full",
    "evaluate_yannakakis",
    "yannakakis_over_relations",
    "CyclicQueryError",
    "evaluate_static_plan",
    "compute_bag_relation",
    "StaticPlanReport",
    "evaluate_faq",
    "count_query_answers",
    "greedy_elimination_order",
    "FAQResult",
    "OMEGA",
    "relation_to_matrix",
    "count_two_paths",
    "count_four_cycles",
    "four_cycle_exists",
    "count_triangles",
    "matrix_multiplication_cost",
]
