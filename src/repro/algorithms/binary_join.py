"""Traditional binary-join query plans (the textbook baseline, Section 1).

A binary plan joins the atoms pairwise in some order; the classical
System-R-style optimizer searches left-deep orders using cardinality
estimates.  These plans are the baseline that worst-case optimal joins and
PANDA improve on: on cyclic queries with skew their intermediate results can
be asymptotically larger than the AGM / polymatroid bounds.

Each pairwise join goes through :meth:`Relation.hash_join`, which — on
kernel-capable backends (:mod:`repro.relational.kernels`) — runs as a
vectorized sort/searchsorted match over dictionary-encoded code arrays
instead of a Python probe loop, with bit-identical output rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import permutations
from typing import Sequence

from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import WorkCounter
from repro.relational.relation import Relation


@dataclass
class BinaryPlanReport:
    """Execution trace of a binary join plan."""

    atom_order: tuple[int, ...]
    counter: WorkCounter = field(default_factory=WorkCounter)

    def describe(self, query: ConjunctiveQuery) -> str:
        rendered = " ⋈ ".join(str(query.atoms[index]) for index in self.atom_order)
        return (f"left-deep plan: {rendered}; max intermediate "
                f"{self.counter.max_intermediate} tuples")


def evaluate_binary_plan(query: ConjunctiveQuery, database: Database,
                         atom_order: Sequence[int] | None = None,
                         counter: WorkCounter | None = None) -> tuple[Relation, BinaryPlanReport]:
    """Evaluate a CQ with a left-deep sequence of binary hash joins.

    ``atom_order`` gives the join order as atom indices; the default is the
    greedy "smallest relation first, prefer connected atoms" heuristic.
    """
    relations = database.bind_query(query)
    if atom_order is None:
        atom_order = greedy_atom_order(query, database, relations=relations)
    else:
        atom_order = tuple(atom_order)
        if sorted(atom_order) != list(range(len(query.atoms))):
            raise ValueError("atom_order must be a permutation of the atom indices")
    report = BinaryPlanReport(atom_order=tuple(atom_order))
    work = counter if counter is not None else report.counter
    result = relations[atom_order[0]]
    for index in atom_order[1:]:
        result = result.hash_join(relations[index])
        work.record(result, note=f"join atom {index}")
    if query.is_boolean:
        answer = Relation(query.name, (), [()] if len(result) > 0 else [])
    else:
        answer = result.project(sorted(query.free_variables), name=query.name)
    work.record(answer, note="final projection")
    if counter is not None and counter is not report.counter:
        report.counter.merge(counter)
    return answer, report


def greedy_atom_order(query: ConjunctiveQuery, database: Database,
                      relations: Sequence[Relation] | None = None) -> tuple[int, ...]:
    """Smallest-relation-first order that keeps the join connected when possible.

    ``relations`` lets callers that already bound the query's atoms (one
    shared, cached binding per atom) pass them in instead of rebinding.
    """
    if relations is None:
        relations = database.bind_query(query)
    sizes = {index: len(relation) for index, relation in enumerate(relations)}
    remaining = set(range(len(query.atoms)))
    order: list[int] = []
    covered: set[str] = set()
    while remaining:
        connected = [index for index in remaining
                     if not order or (query.atoms[index].varset & covered)]
        pool = connected if connected else sorted(remaining)
        best = min(pool, key=lambda index: (sizes[index], index))
        order.append(best)
        covered.update(query.atoms[best].varset)
        remaining.remove(best)
    return tuple(order)


def best_binary_plan(query: ConjunctiveQuery, database: Database,
                     max_atoms_for_exhaustive: int = 6) -> tuple[Relation, BinaryPlanReport]:
    """Search left-deep orders for the plan with the smallest max intermediate.

    Exhaustive for small queries, greedy otherwise.  This is the "best a
    traditional optimizer could have done" baseline used by experiment E5.
    """
    if len(query.atoms) > max_atoms_for_exhaustive:
        return evaluate_binary_plan(query, database)
    best_result: tuple[Relation, BinaryPlanReport] | None = None
    for order in permutations(range(len(query.atoms))):
        answer, report = evaluate_binary_plan(query, database, atom_order=order)
        if (best_result is None
                or report.counter.max_intermediate < best_result[1].counter.max_intermediate):
            best_result = (answer, report)
    assert best_result is not None
    return best_result
