"""A worst-case optimal join in the Generic-Join / LeapFrog-TrieJoin style.

Worst-case optimal joins (Section 2.1, [52, 54, 56]) evaluate a *full* CQ one
variable at a time: at each level the candidate values of the current variable
are the intersection of the values compatible with the partial assignment in
every relation that contains the variable.  The total running time is
proportional to the AGM bound of the query (up to log factors), which is what
experiment E9 measures.

This implementation indexes each relation by every prefix of the global
variable order restricted to the relation's variables, so candidate lookups
are hash probes rather than scans.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Sequence

from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import WorkCounter
from repro.relational.relation import Relation


class _IndexedRelation:
    """One relation indexed for a fixed global variable order."""

    def __init__(self, relation: Relation, order: Sequence[str]) -> None:
        self.variables = [v for v in order if v in relation.column_set]
        positions = [relation.column_index(v) for v in self.variables]
        self.rows = [tuple(row[p] for p in positions) for row in relation]
        # index[k] maps a length-k prefix of this relation's variables to the
        # set of values of variable k+1 compatible with it.
        self.index: list[dict[tuple, set]] = []
        for depth in range(len(self.variables)):
            level: dict[tuple, set] = defaultdict(set)
            for row in self.rows:
                level[row[:depth]].add(row[depth])
            self.index.append(dict(level))

    def candidate_values(self, assignment: dict[str, object]) -> set | None:
        """Values allowed for this relation's first unassigned variable.

        Returns ``None`` when every variable of the relation is already
        assigned (in which case :meth:`consistent` should be used instead).
        """
        depth = 0
        prefix = []
        for variable in self.variables:
            if variable in assignment:
                prefix.append(assignment[variable])
                depth += 1
            else:
                break
        if depth == len(self.variables):
            return None
        return self.index[depth].get(tuple(prefix), set())

    def constrains(self, variable: str, assignment: dict[str, object]) -> bool:
        """True when ``variable`` is this relation's next unassigned variable."""
        for own in self.variables:
            if own in assignment:
                continue
            return own == variable
        return False


def generic_join(query: ConjunctiveQuery, database: Database,
                 variable_order: Sequence[str] | None = None,
                 counter: WorkCounter | None = None) -> Relation:
    """Evaluate a CQ with the generic worst-case-optimal join.

    The result is the projection onto the free variables of the full join; the
    enumeration itself always walks the full variable space, so the guarantee
    is the worst-case-optimality of the *full* query (as in the literature).
    """
    order = list(variable_order) if variable_order else sorted(query.variables)
    if set(order) != set(query.variables):
        raise ValueError("variable_order must mention every query variable exactly once")
    indexed = [_IndexedRelation(database.bind_atom(atom), order)
               for atom in query.atoms]
    free = sorted(query.free_variables)
    output_rows: set[tuple] = set()
    assignment: dict[str, object] = {}
    explored = 0

    def recurse(level: int) -> None:
        nonlocal explored
        if level == len(order):
            output_rows.add(tuple(assignment[v] for v in free))
            return
        variable = order[level]
        relevant = [rel for rel in indexed if rel.constrains(variable, assignment)]
        if not relevant:
            # The variable occurs only in relations whose other variables are
            # not yet bound; fall back to any relation containing it.
            relevant = [rel for rel in indexed if variable in rel.variables]
        candidate_sets = []
        for rel in relevant:
            values = rel.candidate_values(assignment)
            if values is not None:
                candidate_sets.append(values)
        if not candidate_sets:
            return
        candidates = set.intersection(*map(set, candidate_sets)) \
            if len(candidate_sets) > 1 else set(candidate_sets[0])
        for value in candidates:
            assignment[variable] = value
            explored += 1
            recurse(level + 1)
            del assignment[variable]

    recurse(0)
    result = Relation(query.name, tuple(free), output_rows)
    if counter is not None:
        counter.intermediate_tuples += explored
        counter.max_intermediate = max(counter.max_intermediate, len(result))
        counter.materializations += 1
        counter.notes.append(f"generic join explored {explored} partial assignments")
    return result


def generic_join_full(query: ConjunctiveQuery, database: Database,
                      variable_order: Sequence[str] | None = None,
                      counter: WorkCounter | None = None) -> Relation:
    """The full join of the query's atoms computed with generic join."""
    return generic_join(query.full_version(), database,
                        variable_order=variable_order, counter=counter)
