"""A worst-case optimal join in the Generic-Join / LeapFrog-TrieJoin style.

Worst-case optimal joins (Section 2.1, [52, 54, 56]) evaluate a *full* CQ one
variable at a time: at each level the candidate values of the current variable
are the intersection of the values compatible with the partial assignment in
every relation that contains the variable.  The total running time is
proportional to the AGM bound of the query (up to log factors), which is what
experiment E9 measures.

This implementation indexes each relation by every prefix of the global
variable order restricted to the relation's variables, so candidate lookups
are hash probes rather than scans.  The prefix tries live on the relations'
storage backends (:meth:`Relation.prefix_trie`): under the columnar backend
they are memoized, so re-evaluating a query against the same database skips
the index-building phase entirely.

The enumeration itself runs off a precomputed per-level probe plan.  Because
each relation's variables are kept sorted by the global order, the set of
relations constraining a level — and the trie depth and prefix positions each
one is probed at — depends only on the level, never on the values bound so
far, so all of it is resolved once before the recursion starts.

When every bound relation lives on a kernel-capable backend (see
:mod:`repro.relational.kernels`), the recursion is replaced wholesale by a
breadth-first vectorized frontier over dictionary-encoded code arrays — same
answers, same reported work count, but the per-level intersection probes run
as NumPy ``searchsorted`` batches instead of per-tuple hash lookups.
``using_kernels(False)`` restores the depth-first trie path.
"""

from __future__ import annotations

from typing import Sequence

from repro.query.cq import ConjunctiveQuery
from repro.relational import kernels
from repro.relational.database import Database
from repro.relational.operators import WorkCounter
from repro.relational.relation import Relation
from repro.relational.storage import ColumnarBackend
from repro.telemetry.trace import get_tracer
from repro.utils.cancellation import QueryCancelledError

#: How many explored partial assignments the depth-first enumeration may
#: process between two cancellation checks.  This bounds the cooperative
#: cancellation overshoot: once a :class:`WorkCounter`'s token trips, the
#: recursion performs at most ``CHECK_INTERVAL`` further extensions before
#: raising (the vectorized path checks once per frontier level instead).
CHECK_INTERVAL = 256


class _IndexedRelation:
    """One relation's trie view for a fixed global variable order."""

    def __init__(self, relation: Relation, order: Sequence[str]) -> None:
        self.variables = [v for v in order if v in relation.column_set]
        positions = tuple(relation.column_index(v) for v in self.variables)
        # index[k] maps a length-k prefix of this relation's variables to the
        # set of values of variable k+1 compatible with it.  Served (and, for
        # caching backends, memoized) by the relation's storage backend.
        self.index: list[dict[tuple, set]] = relation.prefix_trie(positions)


def _probe_plans(indexed: Sequence[_IndexedRelation],
                 order: Sequence[str]) -> list[list[tuple[list[dict], int, tuple[int, ...]]]]:
    """Per level: ``(trie, depth, prefix levels)`` for every constraining relation.

    At level ``L`` exactly the variables ``order[:L]`` are bound, so a
    relation constrains ``order[L]`` iff it contains that variable; the probe
    then happens at depth ``d`` = the variable's rank within the relation,
    with a prefix read from the levels its first ``d`` variables live at.
    """
    order_index = {variable: level for level, variable in enumerate(order)}
    plans: list[list[tuple[list[dict], int, tuple[int, ...]]]] = []
    for variable in order:
        entries = []
        for rel in indexed:
            if variable not in rel.variables:
                continue
            depth = rel.variables.index(variable)
            prefix_levels = tuple(order_index[v] for v in rel.variables[:depth])
            entries.append((rel.index, depth, prefix_levels))
        plans.append(entries)
    return plans


def generic_join(query: ConjunctiveQuery, database: Database,
                 variable_order: Sequence[str] | None = None,
                 counter: WorkCounter | None = None) -> Relation:
    """Evaluate a CQ with the generic worst-case-optimal join.

    The result is the projection onto the free variables of the full join; the
    enumeration itself always walks the full variable space, so the guarantee
    is the worst-case-optimality of the *full* query (as in the literature).
    """
    order = list(variable_order) if variable_order else sorted(query.variables)
    if set(order) != set(query.variables):
        raise ValueError("variable_order must mention every query variable exactly once")
    if counter is not None:
        counter.check()
    with get_tracer().span("wcoj.generic_join",
                           {"query": query.name,
                            "variables": len(order)}) as span:
        return _generic_join_traced(query, database, order, counter, span)


def _generic_join_traced(query: ConjunctiveQuery, database: Database,
                         order: list[str], counter: WorkCounter | None,
                         span) -> Relation:
    bound = database.bind_query(query)
    free = sorted(query.free_variables)
    order_index = {variable: level for level, variable in enumerate(order)}
    free_levels = tuple(order_index[v] for v in free)
    depth_total = len(order)
    if bound and kernels.kernel_ready(*[r._backend for r in bound]):
        # Breadth-first vectorized enumeration: the frontier of partial
        # assignments lives as per-level int64 code arrays, extended and
        # intersected with array kernels.  The per-level frontier sizes sum to
        # exactly the number of partial assignments the depth-first reference
        # enters, so the reported work count is identical.
        specs = []
        for relation in bound:
            rel_vars = [v for v in order if v in relation.column_set]
            specs.append((relation._backend,
                          tuple(relation.column_index(v) for v in rel_vars),
                          tuple(order_index[v] for v in rel_vars)))
        if counter is not None:
            def level_check(explored_so_far: int,
                            counter: WorkCounter = counter) -> None:
                try:
                    counter.check()
                except QueryCancelledError:
                    counter.tally(explored_so_far, 0,
                                  note=f"generic join cancelled after exploring "
                                       f"{explored_so_far} partial assignments")
                    raise
        else:
            level_check = None
        kernel_result = kernels.wcoj(specs, depth_total, free_levels,
                                     check=level_check)
        if kernel_result is not None:
            encoded, kernel_explored = kernel_result
            result = Relation._from_backend(
                query.name, tuple(free), ColumnarBackend.from_encoded(*encoded))
            if counter is not None:
                counter.tally(kernel_explored, len(result),
                              note=f"generic join explored {kernel_explored} "
                                   "partial assignments")
            span.set("explored", kernel_explored)
            span.set("rows_out", len(result))
            return result
    indexed = [_IndexedRelation(relation, order) for relation in bound]
    plans = _probe_plans(indexed, order)
    output_rows: set[tuple] = set()
    values: list = [None] * depth_total
    explored = 0
    check = counter.check if counter is not None else None

    def recurse(level: int) -> None:
        nonlocal explored
        if level == depth_total:
            output_rows.add(tuple(values[i] for i in free_levels))
            return
        candidate_sets = []
        for trie, depth, prefix_levels in plans[level]:
            found = trie[depth].get(tuple(values[i] for i in prefix_levels))
            if not found:
                return
            candidate_sets.append(found)
        if not candidate_sets:
            return
        if len(candidate_sets) == 1:
            candidates = candidate_sets[0]
        else:
            candidate_sets.sort(key=len)
            candidates = set.intersection(*candidate_sets)
        for value in candidates:
            values[level] = value
            explored += 1
            if check is not None and explored % CHECK_INTERVAL == 0:
                check()
            recurse(level + 1)

    try:
        recurse(0)
    except QueryCancelledError:
        # Account the partial exploration before propagating, so cancellation
        # overshoot stays observable through the counter's tally deltas.
        if counter is not None:
            counter.tally(explored, 0,
                          note=f"generic join cancelled after exploring "
                               f"{explored} partial assignments")
        raise
    backend_kind = bound[0].backend_kind if bound else None
    result = Relation(query.name, tuple(free), output_rows, backend=backend_kind)
    if counter is not None:
        # One atomic batch update: safe when the caller shares a counter
        # across partition-parallel shard workers.
        counter.tally(explored, len(result),
                      note=f"generic join explored {explored} partial assignments")
    span.set("explored", explored)
    span.set("rows_out", len(result))
    return result


def generic_join_full(query: ConjunctiveQuery, database: Database,
                      variable_order: Sequence[str] | None = None,
                      counter: WorkCounter | None = None) -> Relation:
    """The full join of the query's atoms computed with generic join."""
    return generic_join(query.full_version(), database,
                        variable_order=variable_order, counter=counter)
