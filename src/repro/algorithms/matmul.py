"""Matrix-multiplication based query evaluation (Section 9.3).

Outside combinatorial algorithms, certain queries admit faster evaluation via
(fast) matrix multiplication; the paper's example is the Boolean 4-cycle,
whose ω-submodular width (4ω−1)/(2ω+1) beats the submodular width 3/2.  This
module implements the matrix-multiplication route for 2-paths, triangles and
4-cycles on top of numpy (numpy's BLAS-backed ``@`` plays the role of the
"FMM oracle"): binary relations become 0/1 matrices, joins with one shared
variable become matrix products, and Boolean / counting answers are read off
the product.  Experiment E8 compares this path against the combinatorial one.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relational.relation import Relation

#: The best known matrix-multiplication exponent (Williams, Xu, Xu, Zhou 2024),
#: quoted in Section 9.3 of the paper.
OMEGA = 2.371552


@dataclass
class ValueIndex:
    """A bijection between the values of a column pair and matrix indices."""

    row_values: list
    column_values: list

    @property
    def shape(self) -> tuple[int, int]:
        return len(self.row_values), len(self.column_values)


def relation_to_matrix(relation: Relation, row_column: str, col_column: str,
                       row_values: list | None = None,
                       col_values: list | None = None) -> tuple[np.ndarray, ValueIndex]:
    """Encode a binary relation as a 0/1 matrix.

    Row/column value universes may be supplied so that several relations share
    index spaces (required when chaining products).
    """
    row_idx = relation.column_index(row_column)
    col_idx = relation.column_index(col_column)
    if row_values is None:
        row_values = sorted({row[row_idx] for row in relation}, key=repr)
    if col_values is None:
        col_values = sorted({row[col_idx] for row in relation}, key=repr)
    row_pos = {value: i for i, value in enumerate(row_values)}
    col_pos = {value: i for i, value in enumerate(col_values)}
    matrix = np.zeros((len(row_values), len(col_values)), dtype=np.int64)
    for row in relation:
        r = row_pos.get(row[row_idx])
        c = col_pos.get(row[col_idx])
        if r is not None and c is not None:
            matrix[r, c] = 1
    return matrix, ValueIndex(row_values, col_values)


def _chain_matrices(relations: list[Relation],
                    variables: list[str]) -> list[np.ndarray]:
    """Matrices for a chain R1(v0,v1), R2(v1,v2), ... sharing value universes.

    The value universe of each *variable name* is shared across every position
    where it occurs, so cyclic chains (where the first and last variables
    coincide) produce matrices whose trace is meaningful.
    """
    value_sets: dict[str, set] = {name: set() for name in variables}
    for position, relation in enumerate(relations):
        for variable in (variables[position], variables[position + 1]):
            idx = relation.column_index(variable)
            value_sets[variable].update(row[idx] for row in relation)
    universes = {name: sorted(values, key=repr) for name, values in value_sets.items()}
    matrices = []
    for index, relation in enumerate(relations):
        matrix, _ = relation_to_matrix(relation, variables[index], variables[index + 1],
                                       row_values=universes[variables[index]],
                                       col_values=universes[variables[index + 1]])
        matrices.append(matrix)
    return matrices


def count_two_paths(first: Relation, second: Relation,
                    join_variable: str, start: str, end: str) -> int:
    """Number of (start, middle, end) paths: the counting 2-path query."""
    matrices = _chain_matrices([first.project([start, join_variable]),
                                second.project([join_variable, end])],
                               [start, join_variable, end])
    product = matrices[0] @ matrices[1]
    return int(product.sum())


def count_four_cycles(r: Relation, s: Relation, t: Relation, u: Relation,
                      variables: tuple[str, str, str, str] = ("X", "Y", "Z", "W")) -> int:
    """Number of satisfying assignments of the full 4-cycle query.

    ``R(X,Y), S(Y,Z), T(Z,W), U(W,X)`` with each relation's columns named by
    ``variables`` — the count equals ``trace(M_R · M_S · M_T · M_U)``.
    """
    x, y, z, w = variables
    chain = _chain_matrices(
        [r.project([x, y]), s.project([y, z]), t.project([z, w]), u.project([w, x])],
        [x, y, z, w, x])
    product = chain[0] @ chain[1] @ chain[2] @ chain[3]
    size = min(product.shape)
    return int(np.trace(product[:size, :size]))


def four_cycle_exists(r: Relation, s: Relation, t: Relation, u: Relation,
                      variables: tuple[str, str, str, str] = ("X", "Y", "Z", "W")) -> bool:
    """The Boolean 4-cycle query Q□bool via matrix multiplication."""
    return count_four_cycles(r, s, t, u, variables=variables) > 0


def count_triangles(r: Relation, s: Relation, t: Relation,
                    variables: tuple[str, str, str] = ("X", "Y", "Z")) -> int:
    """Number of triangles ``R(X,Y), S(Y,Z), T(Z,X)`` via trace(M_R M_S M_T)."""
    x, y, z = variables
    chain = _chain_matrices([r.project([x, y]), s.project([y, z]), t.project([z, x])],
                            [x, y, z, x])
    product = chain[0] @ chain[1] @ chain[2]
    size = min(product.shape)
    return int(np.trace(product[:size, :size]))


def matrix_multiplication_cost(m: int, n: int, p: int, omega: float = OMEGA) -> float:
    """The square-blocking FMM cost of an (m×n)·(n×p) product (Eq. (77)).

    With γ = ω − 2 the cost is ``max(m·n·p^γ, m·n^γ·p, m^γ·n·p)``.
    """
    gamma = omega - 2.0
    return max(m * n * (p ** gamma), m * (n ** gamma) * p, (m ** gamma) * n * p)
