"""Brute-force CQ evaluation, used as ground truth by tests and experiments.

The full join is materialised pairwise and then projected onto the free
variables.  Nothing here is clever — that is the point: every other evaluation
algorithm in the library is validated against this one on small inputs.
"""

from __future__ import annotations

from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import WorkCounter, join_all
from repro.relational.relation import Relation


def full_join_of_query(query: ConjunctiveQuery, database: Database,
                       counter: WorkCounter | None = None) -> Relation:
    """The natural join of all (bound) atoms, over every variable of the query."""
    bound = database.bind_query(query)
    result = join_all(bound, counter=counter, name=f"{query.name}_full_join")
    # Normalise the column order for deterministic downstream behaviour.
    ordered = sorted(query.variables)
    missing = [v for v in ordered if v not in result.column_set]
    if missing:
        # Can only happen for queries whose atoms do not cover some variable,
        # which ConjunctiveQuery forbids; keep a defensive error anyway.
        raise RuntimeError(f"join result is missing variables {missing}")
    return result.project(ordered, name=f"{query.name}_full_join")


def evaluate_bruteforce(query: ConjunctiveQuery, database: Database,
                        counter: WorkCounter | None = None) -> Relation:
    """Evaluate ``query`` by materialising the full join and projecting to ``F``.

    For a Boolean query the result is a nullary relation containing the empty
    tuple iff the body is satisfiable.
    """
    full = full_join_of_query(query, database, counter=counter)
    if query.is_boolean:
        rows = [()] if len(full) > 0 else []
        return Relation(query.name, (), rows)
    return full.project(sorted(query.free_variables), name=query.name)


def boolean_answer(query: ConjunctiveQuery, database: Database) -> bool:
    """True iff the Boolean version of ``query`` is satisfied by the database."""
    return len(evaluate_bruteforce(query.boolean_version(), database)) > 0


def count_answers(query: ConjunctiveQuery, database: Database) -> int:
    """The number of distinct answers |Q(D)| (set semantics)."""
    return len(evaluate_bruteforce(query, database))
