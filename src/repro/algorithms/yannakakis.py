"""The Yannakakis algorithm for acyclic conjunctive queries (Section 3.4, [59]).

Given an acyclic query, the algorithm (1) builds a join tree with the GYO
reduction, (2) performs a full semijoin reduction (an upward and a downward
pass), after which every relation contains exactly the tuples that participate
in the join, and (3) joins bottom-up, projecting each intermediate result onto
the free variables seen so far plus the separator towards the parent.  For
free-connex queries the intermediate results stay within O(N + OUT), which is
the behaviour experiment E6 measures.

The same routine is reused to evaluate the acyclic query over the *bags* of a
tree decomposition — rule (12) for static plans and rule (29) for adaptive
(PANDA) plans — by passing the bag relations as ``relations``.

Both passes are built from :meth:`Relation.semijoin` and
:meth:`Relation.hash_join`, so on kernel-capable backends
(:mod:`repro.relational.kernels`) the semijoin reduction and the bottom-up
joins run as vectorized array kernels over dictionary-encoded columns —
same answers, no per-tuple Python loop.
"""

from __future__ import annotations

from typing import Sequence

from repro.query.cq import ConjunctiveQuery
from repro.query.hypergraph import JoinTree, gyo_reduction
from repro.relational.database import Database
from repro.relational.operators import WorkCounter
from repro.relational.relation import Relation
from repro.telemetry.trace import get_tracer


class CyclicQueryError(ValueError):
    """Raised when Yannakakis is asked to evaluate a cyclic query."""


def yannakakis_over_relations(relations: Sequence[Relation],
                              free_variables: frozenset[str],
                              counter: WorkCounter | None = None,
                              name: str = "Q") -> Relation:
    """Run Yannakakis over explicit relations whose schemas form an acyclic hypergraph."""
    if not relations:
        return Relation(name, tuple(sorted(free_variables)), [()] if not free_variables else [])
    tree = gyo_reduction([rel.column_set for rel in relations])
    if tree is None:
        raise CyclicQueryError("the relations' schemas do not form an acyclic hypergraph")
    tree = _reroot_towards_free_variables(tree, free_variables)
    reduced = _full_reducer(list(relations), tree, counter)
    return _bottom_up_join(reduced, tree, free_variables, counter, name)


def _reroot_towards_free_variables(tree: JoinTree,
                                   free_variables: frozenset[str]) -> JoinTree:
    """Re-root the join tree at the node covering the most free variables.

    For a free-connex query there is a node whose bag contains a maximal share
    of the free variables near the "connex" part of the tree; rooting there
    means existential variables are projected away in the subtrees *before*
    they can multiply with free variables carried upward, which is what keeps
    the bottom-up join phase linear in input + output.
    """
    if not free_variables or len(tree.nodes) <= 1:
        return tree
    best_root = max(range(len(tree.nodes)),
                    key=lambda index: (len(tree.nodes[index] & free_variables),
                                       -len(tree.nodes[index])))
    if best_root == tree.root:
        return tree
    adjacency: dict[int, set[int]] = {index: set() for index in range(len(tree.nodes))}
    for child, parent in tree.edges():
        adjacency[child].add(parent)
        adjacency[parent].add(child)
    parent: list[int | None] = [None] * len(tree.nodes)
    visited = {best_root}
    frontier = [best_root]
    while frontier:
        node = frontier.pop()
        for neighbour in adjacency[node]:
            if neighbour not in visited:
                visited.add(neighbour)
                parent[neighbour] = node
                frontier.append(neighbour)
    return JoinTree(nodes=tree.nodes, parent=tuple(parent))


def evaluate_yannakakis(query: ConjunctiveQuery, database: Database,
                        counter: WorkCounter | None = None) -> Relation:
    """Evaluate an acyclic CQ with the Yannakakis algorithm.

    The query's hypergraph must be alpha-acyclic; otherwise a
    :class:`CyclicQueryError` is raised (use a tree-decomposition based plan
    instead).
    """
    relations = database.bind_query(query)
    result = yannakakis_over_relations(relations, query.free_variables,
                                       counter=counter, name=query.name)
    if query.is_boolean:
        rows = [()] if len(result) > 0 else []
        return Relation(query.name, (), rows)
    return result


# --------------------------------------------------------------------------
# internals
# --------------------------------------------------------------------------

def _full_reducer(relations: list[Relation], tree: JoinTree,
                  counter: WorkCounter | None) -> list[Relation]:
    """Upward then downward semijoin passes along the join tree.

    Semijoins never mutate their inputs, so the working list simply aliases
    the input relations; entries are replaced as they shrink.  Filters that
    remove nothing return backend-sharing copies, which keeps the input
    relations' cached key sets and hash indexes warm across repeated runs.
    """
    current = list(relations)
    order = tree.bottom_up_order()
    # Upward pass: children filter parents.
    with get_tracer().span("yannakakis.semijoin_pass",
                           {"direction": "up", "nodes": len(order)}):
        for index in order:
            parent = tree.parent[index]
            if parent is None:
                continue
            if counter is not None:
                counter.check()
            current[parent] = current[parent].semijoin(current[index])
            if counter is not None:
                counter.record(current[parent],
                               note=f"semijoin up into node {parent}")
    # Downward pass: parents filter children.
    with get_tracer().span("yannakakis.semijoin_pass",
                           {"direction": "down", "nodes": len(order)}):
        for index in reversed(order):
            parent = tree.parent[index]
            if parent is None:
                continue
            if counter is not None:
                counter.check()
            current[index] = current[index].semijoin(current[parent])
            if counter is not None:
                counter.record(current[index],
                               note=f"semijoin down into node {index}")
    return current


def _bottom_up_join(relations: list[Relation], tree: JoinTree,
                    free_variables: frozenset[str],
                    counter: WorkCounter | None, name: str) -> Relation:
    """Join bottom-up, keeping only free variables and separators.

    Projections are pushed below every join: a node's own relation is first
    projected onto its free variables plus the separators towards its parent
    and children, so existential variables that occur in a single bag (e.g.
    the ``Z`` of the 4-cycle's root bag) are eliminated before they can
    multiply with the children's results.  For free-connex decompositions this
    keeps the join phase's intermediates proportional to the bag sizes plus
    the output rather than to the full (unprojected) join.
    """
    order = tree.bottom_up_order()
    partial: dict[int, Relation] = {}
    with get_tracer().span("yannakakis.join_pass", {"nodes": len(order)}):
        for index in order:
            parent = tree.parent[index]
            separator = tree.nodes[index] & tree.nodes[parent] \
                if parent is not None else frozenset()
            child_separators: set[str] = set()
            for child in tree.children(index):
                child_separators |= tree.nodes[index] & tree.nodes[child]
            own = relations[index]
            own_keep = (own.column_set & free_variables) | separator \
                | child_separators
            if counter is not None:
                counter.check()
            result = own.project(sorted(own_keep & own.column_set))
            if counter is not None:
                counter.record(result,
                               note=f"project own relation of node {index}")
            for child in tree.children(index):
                if counter is not None:
                    counter.check()
                result = result.hash_join(partial[child])
                if counter is not None:
                    counter.record(result,
                                   note=f"join child {child} into node {index}")
            if parent is None:
                keep = sorted(set(result.columns) & free_variables) \
                    if free_variables else []
                projected = result.project(keep, name=name) \
                    if free_variables else result
            else:
                keep_set = (set(result.columns) & free_variables) | separator
                projected = result.project(sorted(keep_set))
            if counter is not None:
                counter.record(projected, note=f"project node {index}")
                counter.observe_node("node", sorted(tree.nodes[index]),
                                     len(projected))
            partial[index] = projected
    root_result = partial[tree.root]
    if not free_variables:
        rows = [()] if len(root_result) > 0 else []
        return Relation(name, (), rows)
    # Free variables in disconnected components (defensive) or missing from
    # the root projection indicate a non-free-connex shape; the projection at
    # the root already carried every free variable upward because each node
    # keeps its subtree's free variables.
    missing = free_variables - root_result.column_set
    if missing:
        raise RuntimeError(
            f"free variables {sorted(missing)} were lost during the bottom-up join")
    return root_result.project(sorted(free_variables), name=name)
