"""Static (single tree-decomposition) query plans (Section 4.1).

A static plan materialises one intermediate relation per bag of a tree
decomposition — rule (13) — and then evaluates the acyclic query over the bags
with the Yannakakis algorithm — rule (12).  Each bag relation is computed with
the worst-case-optimal generic join of the atoms' projections onto the bag, so
its size is governed by the bag's polymatroid bound, which is exactly the cost
the fractional-hypertree-width LP (Eq. (21)) assigns to the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.algorithms.generic_join import generic_join
from repro.algorithms.yannakakis import yannakakis_over_relations
from repro.decompositions.treedecomp import TreeDecomposition
from repro.query.cq import Atom, ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import WorkCounter
from repro.relational.relation import Relation
from repro.telemetry.trace import get_tracer
from repro.utils.varsets import format_varset


@dataclass
class StaticPlanReport:
    """Execution trace of a static plan: bag sizes and total work."""

    decomposition: TreeDecomposition
    bag_sizes: dict[frozenset[str], int] = field(default_factory=dict)
    counter: WorkCounter = field(default_factory=WorkCounter)

    @property
    def max_bag_size(self) -> int:
        return max(self.bag_sizes.values(), default=0)

    def describe(self) -> str:
        lines = [f"static plan over {self.decomposition}"]
        for bag, size in sorted(self.bag_sizes.items(), key=lambda kv: sorted(kv[0])):
            lines.append(f"  bag {format_varset(bag)}: {size} tuples")
        lines.append(f"  max intermediate: {self.counter.max_intermediate} tuples")
        return "\n".join(lines)


def compute_bag_relation(query: ConjunctiveQuery, database: Database,
                         bag: frozenset[str],
                         counter: WorkCounter | None = None) -> Relation:
    """Materialise the bag relation ``Q_B`` of rule (13).

    The bag relation is the join, over the bag's variables, of the projections
    of every atom that shares variables with the bag.  (Joining the
    projections is the standard fractional-hypertree-width algorithm; it
    yields a superset of ``π_B`` of the full join, which the subsequent
    Yannakakis phase filters to the exact answer.)

    The projections are registered in the synthetic database as-is (their
    backends are the memoized projection backends of the bound atoms), so the
    prefix tries the generic join builds over them survive across bags and
    across repeated evaluations of the same plan.
    """
    synthetic_atoms: list[Atom] = []
    synthetic_db = Database()
    for index, atom in enumerate(query.atoms):
        overlap = atom.varset & bag
        if not overlap:
            continue
        relation = database.bind_atom(atom).project(sorted(overlap))
        name = f"proj_{index}"
        synthetic_db.add(relation, name=name)
        synthetic_atoms.append(Atom(name, relation.columns))
    if not synthetic_atoms:
        raise ValueError(f"bag {format_varset(bag)} shares no variables with the query")
    bag_query = ConjunctiveQuery(synthetic_atoms, free_variables=bag,
                                 name=f"Q{format_varset(bag)}")
    result = generic_join(bag_query, synthetic_db, counter=counter)
    if counter is not None:
        counter.record(result, note=f"bag {format_varset(bag)}")
    return result


def evaluate_static_plan(query: ConjunctiveQuery, database: Database,
                         decomposition: TreeDecomposition,
                         counter: WorkCounter | None = None,
                         validate: bool = True) -> tuple[Relation, StaticPlanReport]:
    """Evaluate a CQ with the static plan induced by ``decomposition``.

    Returns the answer relation together with a :class:`StaticPlanReport`
    recording every bag size (the quantities the fhtw cost model bounds).
    ``validate=False`` skips the decomposition validity check — the engine's
    plan cache uses it when re-running a decomposition that was validated
    when the plan was first built.
    """
    if validate and not decomposition.is_valid_for(query):
        raise ValueError(f"{decomposition} is not a valid decomposition of {query}")
    report = StaticPlanReport(decomposition=decomposition)
    work = counter if counter is not None else report.counter
    bag_relations = []
    for bag in decomposition.bags:
        work.check()
        with get_tracer().span("static.bag",
                               {"bag": format_varset(bag)}) as span:
            relation = compute_bag_relation(query, database, bag, counter=work)
            span.set("rows_out", len(relation))
        report.bag_sizes[bag] = len(relation)
        bag_relations.append(relation)
    answer = yannakakis_over_relations(bag_relations, query.free_variables,
                                       counter=work, name=query.name)
    if query.is_boolean:
        answer = Relation(query.name, (), [()] if len(answer) > 0 else [])
    if counter is not None and counter is not report.counter:
        report.counter.merge(counter)
    return answer, report
