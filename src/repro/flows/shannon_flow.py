"""Shannon-flow inequalities as exact dual certificates (Section 6.2, Lemma 6.1).

The DDR bound ``max_{h |= S, Γn} min_B h(B)`` has a dual of the form

    min Σ w_{Y|X} · log_N N_{Y|X}
    s.t. Σ_B λ_B h(B)  <=  Σ w_{Y|X} h(Y|X)   for every polymatroid h,
         ‖λ‖₁ = 1, λ, w >= 0.

The universally-quantified constraint means that the difference
``Σ w h(Y|X) − Σ λ h(B)`` is a non-negative combination of the elemental
Shannon inequalities — the Farkas multipliers ``σ`` of that combination are
exactly the *identity form* (Eq. (63)) that Section 7 turns into a proof
sequence and Section 8 turns into the PANDA algorithm.

The solver here works in two phases:

1. solve the dual LP numerically (HiGHS) over variables ``(λ, w, σ)``;
2. reconstruct ``λ`` and ``w`` as small-denominator rationals and re-derive an
   exact ``σ`` with the exact rational simplex, then verify the identity
   coefficient-by-coefficient.

The result is an exact certificate whose identity form feeds the
proof-sequence construction.

Both phases are deterministic in ``(targets, ground set, statistics)``, and
adaptive PANDA re-derives the same certificates on every evaluation of the
same query shape (one per bag selector, per run), so verified certificates
are memoized on exactly that key — the statistics participate through their
content fingerprint.  A hit skips the dual-LP row construction (which touches
every subset × every elemental inequality), the HiGHS solve *and* the exact
rational witness recovery; the ``flow_builds`` / ``flow_hits`` counters of
:func:`repro.lp.model.lp_cache_stats` make the reuse observable.  The dual
LP itself also benefits from the compiled sparse substrate and the memoized
elemental family.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Iterable, Mapping, Sequence

from repro.entropy.elemental import ElementalInequality, elemental_inequalities
from repro.flows.proof_steps import Term
from repro.lp.exact import ExactLPError, solve_min_with_inequalities
from repro.lp.model import BoundedCache, LinearProgram, lp_caching_enabled
from repro.stats.constraints import ConstraintSet, DegreeConstraint
from repro.utils.rationals import as_fraction, common_denominator
from repro.utils.varsets import format_varset, powerset


class ShannonFlowError(RuntimeError):
    """Raised when no exact Shannon-flow certificate can be constructed."""


@dataclass
class ShannonFlowInequality:
    """A rational Shannon-flow inequality with an exact Farkas witness.

    ``Σ_B targets[B]·h(B) <= Σ_c sources[c]·h(Y_c|X_c)`` holds for every
    polymatroid because the difference equals ``Σ_e witness[e]·e(h)`` with all
    ``witness`` multipliers non-negative.
    """

    targets: dict[frozenset[str], Fraction]
    sources: dict[DegreeConstraint, Fraction]
    witness: dict[ElementalInequality, Fraction]
    statistics: ConstraintSet

    # ------------------------------------------------------------ inspection
    @property
    def variables(self) -> frozenset[str]:
        result: set[str] = set()
        for target in self.targets:
            result.update(target)
        for constraint in self.sources:
            result.update(constraint.variables)
        return frozenset(result)

    def bound_exponent(self) -> Fraction:
        """``Σ w_{Y|X} log_N N_{Y|X}``: the exponent of the DDR size bound."""
        total = Fraction(0)
        for constraint, weight in self.sources.items():
            total += weight * as_fraction(self.statistics.exponent_of(constraint),
                                          max_denominator=10 ** 6)
        return total

    def size_bound(self) -> float:
        """``Π N_{Y|X}^{w}`` (Theorem 6.2)."""
        return self.statistics.size_from_exponent(float(self.bound_exponent()))

    def describe(self) -> str:
        left = " + ".join(f"{weight}·h{format_varset(target)}"
                          for target, weight in sorted(self.targets.items(),
                                                       key=lambda kv: sorted(kv[0])))
        right = " + ".join(f"{weight}·h({format_varset(c.target)}|{format_varset(c.given)})"
                           if c.given else f"{weight}·h{format_varset(c.target)}"
                           for c, weight in self.sources.items())
        return f"{left} <= {right}"

    # ----------------------------------------------------------- validation
    def identity_defect(self) -> dict[frozenset[str], Fraction]:
        """Per-subset defect of the identity; all zeros for a valid certificate."""
        defect: dict[frozenset[str], Fraction] = {}

        def bump(subset: frozenset[str], amount: Fraction) -> None:
            if not subset or amount == 0:
                return
            defect[subset] = defect.get(subset, Fraction(0)) + amount
            if defect[subset] == 0:
                del defect[subset]

        for constraint, weight in self.sources.items():
            union = constraint.target | constraint.given
            bump(union, weight)
            if constraint.given:
                bump(constraint.given, -weight)
        for inequality, weight in self.witness.items():
            for subset, coeff in inequality.coefficients:
                bump(subset, -weight * coeff)
        for target, weight in self.targets.items():
            bump(target, -weight)
        return defect

    def verify(self) -> bool:
        """Exact verification of the Farkas identity and sign conditions."""
        if any(weight < 0 for weight in self.targets.values()):
            return False
        if any(weight < 0 for weight in self.sources.values()):
            return False
        if any(weight < 0 for weight in self.witness.values()):
            return False
        if sum(self.targets.values(), Fraction(0)) != 1:
            return False
        return not self.identity_defect()

    # -------------------------------------------------------------- integral
    def to_integral(self) -> "IntegralShannonFlow":
        """Scale every coefficient by the least common denominator."""
        denominators = list(self.targets.values()) + list(self.sources.values()) \
            + list(self.witness.values())
        scale = common_denominator(denominators)
        targets = Counter()
        for target, weight in self.targets.items():
            count = int(weight * scale)
            if count:
                targets[target] += count
        sources: Counter = Counter()
        term_sources: dict[Term, list[tuple[DegreeConstraint, int]]] = {}
        for constraint, weight in self.sources.items():
            count = int(weight * scale)
            if count <= 0:
                continue
            term = Term(constraint.target, constraint.given)
            sources[term] += count
            term_sources.setdefault(term, []).append((constraint, count))
        witness: Counter = Counter()
        for inequality, weight in self.witness.items():
            count = int(weight * scale)
            if count:
                witness[inequality] += count
        return IntegralShannonFlow(targets=targets, sources=sources, witness=witness,
                                   denominator=scale, term_sources=term_sources,
                                   statistics=self.statistics)


@dataclass
class IntegralShannonFlow:
    """The integral form of a Shannon-flow inequality (Section 7).

    ``Σ_B targets[B]·h(B) <= Σ sources[t]·t(h)`` with integer multiplicities;
    ``denominator`` records the scaling from the rational certificate, so the
    size bound of the original inequality is recovered as
    ``N^{(Σ w·log_N N)/denominator}``.
    """

    targets: Counter
    sources: Counter
    witness: Counter
    denominator: int
    statistics: ConstraintSet
    term_sources: dict[Term, list[tuple[DegreeConstraint, int]]] = field(default_factory=dict)

    def identity_defect(self) -> dict[frozenset[str], int]:
        defect: dict[frozenset[str], int] = {}

        def bump(subset: frozenset[str], amount: int) -> None:
            if not subset or amount == 0:
                return
            defect[subset] = defect.get(subset, 0) + amount
            if defect[subset] == 0:
                del defect[subset]

        for term, count in self.sources.items():
            for subset, coeff in term.coefficients().items():
                bump(subset, coeff * count)
        for inequality, count in self.witness.items():
            for subset, coeff in inequality.coefficients:
                bump(subset, -coeff * count)
        for target, count in self.targets.items():
            bump(target, -count)
        return defect

    def verify(self) -> bool:
        if any(count < 0 for count in self.targets.values()):
            return False
        if any(count < 0 for count in self.sources.values()):
            return False
        if any(count < 0 for count in self.witness.values()):
            return False
        return not self.identity_defect()

    def total_target_multiplicity(self) -> int:
        return sum(self.targets.values())

    def bound_exponent(self) -> float:
        """The per-copy exponent: ``(Σ_c count_c · log_N N_c) / denominator``."""
        total = 0.0
        for term, pairs in self.term_sources.items():
            for constraint, count in pairs:
                total += count * self.statistics.exponent_of(constraint)
        return total / self.denominator

    def size_bound(self) -> float:
        return self.statistics.size_from_exponent(self.bound_exponent())

    def describe(self) -> str:
        left = " + ".join(f"{count}·h{format_varset(target)}"
                          for target, count in sorted(self.targets.items(),
                                                      key=lambda kv: sorted(kv[0])))
        right = " + ".join(f"{count}·{term}" for term, count in self.sources.items())
        return f"{left} <= {right}"


# ---------------------------------------------------------------------------
# solving for a flow
# ---------------------------------------------------------------------------

#: Verified certificates keyed by (sorted targets, ground set, statistics
#: fingerprint).  Hits return a fresh shell over the shared (immutable-in-
#: practice) coefficient dicts' copies, so callers can mutate their result.
_FLOW_CACHE = BoundedCache("flow", 64)


def _copy_flow(flow: ShannonFlowInequality,
               statistics: ConstraintSet) -> ShannonFlowInequality:
    return ShannonFlowInequality(targets=dict(flow.targets),
                                 sources=dict(flow.sources),
                                 witness=dict(flow.witness),
                                 statistics=statistics)


def find_shannon_flow(targets: Sequence[Iterable[str]],
                      statistics: ConstraintSet,
                      variables: Iterable[str] = ()) -> ShannonFlowInequality:
    """Find an optimal Shannon-flow inequality for a DDR's head targets.

    ``targets`` are the bag variable sets of one bag selector.  The returned
    certificate is exact (verified), and its bound exponent equals the DDR's
    polymatroid bound (Lemma 6.1 / strong duality).  Re-solving the same
    (targets, statistics) pair — as adaptive PANDA does on every run over the
    same query shape — returns a memoized verified certificate.

    Only degree constraints participate: the proof-sequence machinery of
    Section 7 (and hence the PANDA executor) is defined for degree
    constraints; ℓp-norm constraints are supported by the bound LPs but not by
    this certificate path.
    """
    target_sets = [frozenset(target) for target in targets]
    if not target_sets:
        raise ValueError("a Shannon flow needs at least one target")
    if statistics.lp_norm_constraints:
        raise ShannonFlowError(
            "Shannon-flow certificates are only implemented for degree constraints; "
            "drop the ℓp-norm constraints or use the bound LPs directly")
    constraints = list(statistics.degree_constraints)
    if not constraints:
        raise ShannonFlowError("the statistics contain no degree constraints")
    ground = frozenset(variables) | frozenset().union(*target_sets) | statistics.variables

    cache_key = None
    if lp_caching_enabled():
        cache_key = (tuple(sorted(tuple(sorted(target)) for target in target_sets)),
                     ground, statistics.fingerprint())
        cached = _FLOW_CACHE.lookup(cache_key)
        if cached is not None:
            return _copy_flow(cached, statistics)

    elementals = elemental_inequalities(ground)
    subsets = [subset for subset in powerset(ground) if subset]

    program = LinearProgram("shannon-flow-dual")
    lam_names = [f"lam{i}" for i in range(len(target_sets))]
    w_names = [f"w{i}" for i in range(len(constraints))]
    sigma_names = [f"s{i}" for i in range(len(elementals))]
    for name in lam_names + w_names + sigma_names:
        program.add_variable(name, lower=0.0)

    # One identity row per non-empty subset of the ground set.
    for subset in subsets:
        row: dict[str, float] = {}
        for i, constraint in enumerate(constraints):
            union = constraint.target | constraint.given
            coefficient = 0.0
            if subset == union:
                coefficient += 1.0
            if constraint.given and subset == constraint.given:
                coefficient -= 1.0
            if coefficient:
                row[w_names[i]] = row.get(w_names[i], 0.0) + coefficient
        for i, inequality in enumerate(elementals):
            coefficient = dict(inequality.coefficients).get(subset, 0)
            if coefficient:
                row[sigma_names[i]] = row.get(sigma_names[i], 0.0) - float(coefficient)
        for i, target in enumerate(target_sets):
            if subset == target:
                row[lam_names[i]] = row.get(lam_names[i], 0.0) - 1.0
        if row:
            program.add_eq(row, 0.0)
    program.add_eq({name: 1.0 for name in lam_names}, 1.0)
    objective = {w_names[i]: statistics.exponent_of(constraints[i])
                 for i in range(len(constraints))}
    program.set_objective(objective, maximize=False)
    solution = program.solve()

    lam = {target_sets[i]: as_fraction(solution.value(lam_names[i]))
           for i in range(len(target_sets))
           if solution.value(lam_names[i]) > 1e-9}
    weights = {constraints[i]: as_fraction(solution.value(w_names[i]))
               for i in range(len(constraints))
               if solution.value(w_names[i]) > 1e-9}
    lam = _renormalize(lam)
    sigma = _exact_witness(lam, weights, ground, elementals)
    flow = ShannonFlowInequality(targets=lam, sources=weights, witness=sigma,
                                 statistics=statistics)
    if not flow.verify():
        raise ShannonFlowError("failed to verify the reconstructed Shannon-flow certificate")
    if cache_key is not None:
        _FLOW_CACHE.store(cache_key, _copy_flow(flow, statistics))
    return flow


def _renormalize(lam: dict[frozenset[str], Fraction]) -> dict[frozenset[str], Fraction]:
    total = sum(lam.values(), Fraction(0))
    if total == 0:
        raise ShannonFlowError("the dual solution has no positive λ coefficients")
    if total == 1:
        return lam
    return {target: weight / total for target, weight in lam.items()}


def _exact_witness(lam: Mapping[frozenset[str], Fraction],
                   weights: Mapping[DegreeConstraint, Fraction],
                   ground: frozenset[str],
                   elementals: Sequence[ElementalInequality]) -> dict[ElementalInequality, Fraction]:
    """Recover exact Farkas multipliers σ for given exact (λ, w).

    Solves the exact feasibility problem
    ``Σ_e σ_e · coeff_e(S) = Σ w·a(S) − Σ λ·[S = B]`` for all subsets ``S``
    with ``σ >= 0``, minimising ``Σ σ`` (any feasible point would do).
    """
    required: dict[frozenset[str], Fraction] = {}

    def bump(subset: frozenset[str], amount: Fraction) -> None:
        if not subset or amount == 0:
            return
        required[subset] = required.get(subset, Fraction(0)) + amount
        if required[subset] == 0:
            del required[subset]

    for constraint, weight in weights.items():
        union = constraint.target | constraint.given
        bump(union, weight)
        if constraint.given:
            bump(constraint.given, -weight)
    for target, weight in lam.items():
        bump(target, -weight)

    subsets = [subset for subset in powerset(ground) if subset]
    matrix = []
    rhs = []
    for subset in subsets:
        row = [Fraction(dict(e.coefficients).get(subset, 0)) for e in elementals]
        matrix.append(row)
        rhs.append(required.get(subset, Fraction(0)))
    costs = [Fraction(1)] * len(elementals)
    try:
        solution = solve_min_with_inequalities(costs, [], [], matrix, rhs)
    except ExactLPError as exc:
        raise ShannonFlowError(
            "could not recover an exact Farkas witness for the Shannon flow "
            f"(λ = {dict(lam)}, w = { {str(k): v for k, v in weights.items()} })"
        ) from exc
    return {elementals[i]: solution.values[i]
            for i in range(len(elementals)) if solution.values[i] != 0}


def shannon_flow_for_cq(free_variables: Iterable[str],
                        statistics: ConstraintSet,
                        variables: Iterable[str] = ()) -> ShannonFlowInequality:
    """The Shannon-flow certificate of a plain CQ bound (a single-target DDR)."""
    return find_shannon_flow([frozenset(free_variables)], statistics,
                             variables=variables)
