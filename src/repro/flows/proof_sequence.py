"""Proof sequences for integral Shannon-flow inequalities (Section 7.1).

Given an integral Shannon-flow inequality together with its identity form
(target terms = source terms + residuals of basic Shannon inequalities), this
module constructs a sequence of proof steps — decomposition, composition,
monotonicity, submodularity — that transforms the source terms into the target
terms, exactly as in Table 1 of the paper.

The construction repeatedly picks an unconditional source term ``h(W)``:

* if ``W`` is a (remaining) target, the term *produces* that target;
* otherwise ``W`` must be cancelled by a negative occurrence on the right-hand
  side, which is either a conditional source ``h(Z|W)`` (→ composition step),
  a submodularity residual with a negative ``h(W)`` (→ decomposition +
  submodularity steps), or a monotonicity residual (→ monotonicity step).

A counting argument (evaluate the identity on the all-ones polymatroid)
guarantees an unconditional source exists while targets remain, and a
lexicographic potential argument shows the procedure terminates.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.entropy.elemental import ElementalInequality
from repro.flows.proof_steps import (
    CompositionStep,
    DecompositionStep,
    MonotonicityStep,
    ProofStep,
    SubmodularityStep,
    Term,
)
from repro.flows.shannon_flow import IntegralShannonFlow
from repro.utils.varsets import format_varset


class ProofSequenceError(RuntimeError):
    """Raised when a proof sequence cannot be constructed or fails to verify."""


@dataclass
class ProofSequence:
    """A verified proof sequence for an integral Shannon-flow inequality."""

    initial_sources: Counter
    targets: Counter
    steps: list[ProofStep] = field(default_factory=list)

    def replay(self) -> Counter:
        """Apply every step to the initial sources and return the final terms."""
        terms = Counter(self.initial_sources)
        for step in self.steps:
            step.apply(terms)
        return terms

    def verify(self) -> bool:
        """Check that the steps are applicable and produce every target term."""
        try:
            final = self.replay()
        except Exception:
            return False
        for target, count in self.targets.items():
            if final[Term(target)] < count:
                return False
        return True

    def describe(self) -> str:
        lines = ["proof sequence:"]
        lines.extend(f"  {index + 1}. {step}" for index, step in enumerate(self.steps))
        targets = " + ".join(f"{count}·h{format_varset(target)}"
                             for target, count in self.targets.items())
        lines.append(f"  produces: {targets}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.steps)


# ---------------------------------------------------------------------------
# residual destructuring helpers
# ---------------------------------------------------------------------------

def _submodularity_parts(inequality: ElementalInequality) -> tuple[frozenset, frozenset, frozenset]:
    """Recover (first, second, context) from a submodularity's coefficients.

    The inequality is ``h(A∪C) + h(B∪C) − h(A∪B∪C) − h(C) >= 0``; the two
    ``+1`` subsets are ``A∪C`` and ``B∪C`` (their intersection is ``C``).
    """
    positives = [subset for subset, coeff in inequality.coefficients if coeff > 0]
    if len(positives) == 1:
        # C = ∅ and the union coincides with one of the parts cannot happen for
        # disjoint non-empty A, B; a single positive would be malformed.
        raise ProofSequenceError(f"malformed submodularity: {inequality}")
    first_part, second_part = positives[0], positives[1]
    context = first_part & second_part
    return first_part - context, second_part - context, context


def _monotonicity_parts(inequality: ElementalInequality) -> tuple[frozenset, frozenset]:
    """Recover (larger, smaller) from a monotonicity's coefficients."""
    larger = next(subset for subset, coeff in inequality.coefficients if coeff > 0)
    smaller = next((subset for subset, coeff in inequality.coefficients if coeff < 0),
                   frozenset())
    return larger, smaller


def _negative_subsets(inequality: ElementalInequality) -> list[frozenset]:
    """Subsets with a negative coefficient in the *residual* form.

    The residual (the expression added to the RHS of the identity) is the
    negation of the inequality's left-hand side, so residual-negative subsets
    are the inequality's positive-coefficient subsets.
    """
    return [subset for subset, coeff in inequality.coefficients if coeff > 0]


# ---------------------------------------------------------------------------
# construction
# ---------------------------------------------------------------------------

def construct_proof_sequence(flow: IntegralShannonFlow,
                             max_steps: int = 100_000) -> ProofSequence:
    """Construct (and verify) a proof sequence for an integral Shannon flow."""
    if not flow.verify():
        raise ProofSequenceError("the integral Shannon flow's identity does not hold")
    sources: Counter = Counter(flow.sources)
    residuals: Counter = Counter(flow.witness)
    remaining_targets: Counter = Counter(flow.targets)
    steps: list[ProofStep] = []

    iterations = 0
    while sum(remaining_targets.values()) > 0:
        iterations += 1
        if iterations > max_steps:
            raise ProofSequenceError("proof sequence construction did not terminate")
        term = _pick_unconditional_source(sources, remaining_targets)
        if term is None:
            raise ProofSequenceError(
                "no unconditional source term available while targets remain; "
                "the identity form is inconsistent")
        subset = term.target
        if remaining_targets[subset] > 0:
            # The source *is* a target: produce it (no proof step required).
            remaining_targets[subset] -= 1
            if remaining_targets[subset] == 0:
                del remaining_targets[subset]
            sources[term] -= 1
            if sources[term] == 0:
                del sources[term]
            continue
        applied = (_try_composition(subset, sources, steps)
                   or _try_monotonicity(subset, sources, residuals, steps)
                   or _try_submodularity(subset, sources, residuals, steps))
        if not applied:
            raise ProofSequenceError(
                f"unconditional source h{format_varset(subset)} has no cancellation "
                "partner; the identity form is inconsistent")

    sequence = ProofSequence(initial_sources=Counter(flow.sources),
                             targets=Counter(flow.targets), steps=steps)
    if not sequence.verify():
        raise ProofSequenceError("constructed proof sequence failed verification")
    return sequence


def _pick_unconditional_source(sources: Counter, remaining_targets: Counter) -> Term | None:
    """Pick an unconditional source, preferring one that is still a target."""
    unconditional = [term for term, count in sources.items()
                     if count > 0 and term.is_unconditional]
    if not unconditional:
        return None
    for term in sorted(unconditional, key=lambda t: (len(t.target), sorted(t.target))):
        if remaining_targets.get(term.target, 0) > 0:
            return term
    return min(unconditional, key=lambda t: (len(t.target), sorted(t.target)))


def _try_composition(subset: frozenset, sources: Counter, steps: list[ProofStep]) -> bool:
    """Cancel ``h(W)`` against a conditional source ``h(Z|W)`` via composition."""
    partner = next((term for term, count in sources.items()
                    if count > 0 and term.given == subset), None)
    if partner is None:
        return False
    step = CompositionStep(given=subset, target=partner.target)
    _consume(sources, Term(subset))
    _consume(sources, partner)
    sources[Term(subset | partner.target)] += 1
    steps.append(step)
    return True


def _try_monotonicity(subset: frozenset, sources: Counter, residuals: Counter,
                      steps: list[ProofStep]) -> bool:
    """Cancel ``h(W)`` against a monotonicity residual ``−h(W) + h(smaller)``."""
    for inequality, count in residuals.items():
        if count <= 0 or inequality.kind != "monotonicity":
            continue
        larger, smaller = _monotonicity_parts(inequality)
        if larger != subset:
            continue
        step = MonotonicityStep(whole=subset, smaller=smaller)
        _consume(sources, Term(subset))
        _consume(residuals, inequality)
        if smaller:
            sources[Term(smaller)] += 1
        steps.append(step)
        return True
    return False


def _try_submodularity(subset: frozenset, sources: Counter, residuals: Counter,
                       steps: list[ProofStep]) -> bool:
    """Cancel ``h(W)`` against a submodularity residual containing ``−h(W)``."""
    for inequality, count in residuals.items():
        if count <= 0 or inequality.kind != "submodularity":
            continue
        if subset not in _negative_subsets(inequality):
            continue
        first, second, context = _submodularity_parts(inequality)
        if subset == first | context:
            kept, other = first, second
        else:
            kept, other = second, first
        # h(W) = h(kept ∪ context) → h(context) + h(kept | context)
        #                         → h(context) + h(kept | context ∪ other)
        _consume(sources, Term(subset))
        _consume(residuals, inequality)
        if context:
            steps.append(DecompositionStep(whole=subset, part=context))
            sources[Term(context)] += 1
        steps.append(SubmodularityStep(target=kept, given=context, extra=other))
        sources[Term(kept, context | other)] += 1
        return True
    return False


def _consume(counter: Counter, key) -> None:
    if counter[key] <= 0:
        raise ProofSequenceError(f"internal error: cannot consume missing {key}")
    counter[key] -= 1
    if counter[key] == 0:
        del counter[key]
