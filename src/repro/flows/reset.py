"""The Reset lemma (Section 7.2).

Given an integral Shannon-flow inequality and an unconditional source term
``h(W)`` on its right-hand side, the Reset lemma produces another valid
integral Shannon-flow inequality in which ``h(W)`` no longer appears as a
source and *at most one* target term has been dropped from the left-hand side.

In the full PANDA algorithm the lemma is invoked whenever a sub-probability
measure drops below the ``1/B`` threshold: the corresponding source term is
"reset" (dropped) and the algorithm continues with the smaller inequality.
The executor in this library uses eager truncation instead (which avoids the
resets), but the lemma is implemented and tested because it is one of the
paper's two structural lemmas about Shannon flows.

The procedure follows the paper's inductive argument: chase the term being
dropped through its cancellation partner.

* partner is a conditional source ``h(Z|W)``: merge them into ``h(WZ)`` and
  chase ``h(WZ)`` instead;
* partner is a submodularity residual ``−h(A∪C) − h(B∪C) + h(A∪B∪C) + h(C)``
  with ``W = A∪C``: replace the chased term by ``h(A∪B∪C)``, replace the
  submodularity by the monotonicity ``h(B∪C) >= h(C)``, and keep chasing;
* partner is a monotonicity residual ``−h(W) + h(smaller)``: drop both and
  chase ``h(smaller)`` (chasing ends immediately if ``smaller = ∅``);
* the chased term is a target: drop it from both sides — this is the single
  target the lemma may lose.
"""

from __future__ import annotations

from collections import Counter

from repro.entropy.elemental import ElementalInequality, monotonicity
from repro.flows.proof_steps import Term
from repro.flows.proof_sequence import (
    ProofSequenceError,
    _monotonicity_parts,
    _negative_subsets,
    _submodularity_parts,
)
from repro.flows.shannon_flow import IntegralShannonFlow
from repro.utils.varsets import format_varset


class ResetError(RuntimeError):
    """Raised when the Reset lemma cannot be applied."""


def reset(flow: IntegralShannonFlow, drop: Term,
          max_iterations: int = 10_000) -> IntegralShannonFlow:
    """Drop one copy of the unconditional source ``drop`` from the inequality.

    Returns a new, verified :class:`IntegralShannonFlow` whose sources no
    longer include that copy and whose targets lost at most one term.
    """
    if not drop.is_unconditional:
        raise ResetError("the Reset lemma drops unconditional source terms only")
    if flow.sources.get(drop, 0) <= 0:
        raise ResetError(f"{drop} is not a source term of the inequality")
    if not flow.verify():
        raise ResetError("the input inequality's identity does not hold")

    sources: Counter = Counter(flow.sources)
    residuals: Counter = Counter(flow.witness)
    targets: Counter = Counter(flow.targets)

    # Remove the copy being dropped; `chase` is the subset whose +1 excess we
    # must now eliminate from the right-hand side.
    _decrement(sources, drop)
    chase = drop.target

    for _ in range(max_iterations):
        if targets.get(chase, 0) > 0:
            _decrement(targets, chase)
            break
        partner_term = next((term for term, count in sources.items()
                             if count > 0 and term.given == chase), None)
        if partner_term is not None:
            _decrement(sources, partner_term)
            chase = chase | partner_term.target
            continue
        mono = _find_monotonicity(residuals, chase)
        if mono is not None:
            _decrement(residuals, mono)
            _, smaller = _monotonicity_parts(mono)
            if not smaller:
                chase = frozenset()
                break
            chase = smaller
            continue
        submod = _find_submodularity(residuals, chase)
        if submod is not None:
            first, second, context = _submodularity_parts(submod)
            if chase == first | context:
                other = second
            else:
                other = first
            _decrement(residuals, submod)
            if context != (other | context):
                residuals[monotonicity(other | context, context)] += 1
            chase = first | second | context
            continue
        raise ResetError(
            f"h{format_varset(chase)} has no cancellation partner; "
            "the identity form is inconsistent")
    else:
        raise ResetError("the Reset lemma chase did not terminate")

    term_sources = {term: pairs for term, pairs in flow.term_sources.items()
                    if sources.get(term, 0) > 0}
    result = IntegralShannonFlow(targets=targets, sources=sources, witness=residuals,
                                 denominator=flow.denominator,
                                 statistics=flow.statistics,
                                 term_sources=term_sources)
    if not _verify_reset_result(result):
        raise ResetError("the Reset lemma produced an invalid inequality")
    return result


def _verify_reset_result(flow: IntegralShannonFlow) -> bool:
    """The reset result need not have ‖λ‖=1, only a valid identity with λ, w, σ >= 0."""
    if any(count < 0 for counter in (flow.targets, flow.sources, flow.witness)
           for count in counter.values()):
        return False
    return not flow.identity_defect()


def _decrement(counter: Counter, key) -> None:
    if counter.get(key, 0) <= 0:
        raise ProofSequenceError(f"internal error: cannot consume missing {key}")
    counter[key] -= 1
    if counter[key] == 0:
        del counter[key]


def _find_monotonicity(residuals: Counter, chase: frozenset) -> ElementalInequality | None:
    for inequality, count in residuals.items():
        if count > 0 and inequality.kind == "monotonicity":
            larger, _ = _monotonicity_parts(inequality)
            if larger == chase:
                return inequality
    return None


def _find_submodularity(residuals: Counter, chase: frozenset) -> ElementalInequality | None:
    for inequality, count in residuals.items():
        if count > 0 and inequality.kind == "submodularity":
            if chase in _negative_subsets(inequality):
                return inequality
    return None
