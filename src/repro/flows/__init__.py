"""Shannon-flow inequalities, proof sequences and the Reset lemma (Sections 6.2, 7)."""

from repro.flows.proof_steps import (
    CompositionStep,
    DecompositionStep,
    MonotonicityStep,
    ProofStep,
    ProofStepError,
    SubmodularityStep,
    Term,
    unconditional,
)
from repro.flows.shannon_flow import (
    IntegralShannonFlow,
    ShannonFlowError,
    ShannonFlowInequality,
    find_shannon_flow,
    shannon_flow_for_cq,
)
from repro.flows.proof_sequence import (
    ProofSequence,
    ProofSequenceError,
    construct_proof_sequence,
)
from repro.flows.reset import ResetError, reset

__all__ = [
    "Term",
    "unconditional",
    "ProofStep",
    "ProofStepError",
    "DecompositionStep",
    "CompositionStep",
    "MonotonicityStep",
    "SubmodularityStep",
    "ShannonFlowInequality",
    "IntegralShannonFlow",
    "ShannonFlowError",
    "find_shannon_flow",
    "shannon_flow_for_cq",
    "ProofSequence",
    "ProofSequenceError",
    "construct_proof_sequence",
    "reset",
    "ResetError",
]
