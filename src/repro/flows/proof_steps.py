"""Entropy terms and proof steps (Section 7.1, Eq. (64)–(67)).

A *term* is a conditional entropy expression ``h(Y|X)``; it is *unconditional*
when ``X = ∅``.  A *proof step* rewrites one or two terms into one or two new
terms in a way that can never increase the total value under any polymatroid:

* decomposition  ``h(XY) → h(X) + h(Y|X)``      (value preserved),
* composition    ``h(X) + h(Y|X) → h(XY)``      (value preserved),
* monotonicity   ``h(XY) → h(X)``               (value can only drop),
* submodularity  ``h(Y|X) → h(Y|XZ)``           (value can only drop).

Proof sequences (Section 7) are lists of such steps transforming the source
terms of a Shannon-flow inequality into its target terms; PANDA (Section 8)
re-interprets every step as an operation on sub-probability measure tables.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.utils.varsets import format_varset


@dataclass(frozen=True)
class Term:
    """The conditional entropy term ``h(target | given)``."""

    target: frozenset[str]
    given: frozenset[str] = frozenset()

    def __post_init__(self) -> None:
        if not self.target:
            raise ValueError("an entropy term needs a non-empty target set")
        if self.target & self.given:
            raise ValueError("target and given sets of a term must be disjoint")

    @property
    def union(self) -> frozenset[str]:
        return self.target | self.given

    @property
    def is_unconditional(self) -> bool:
        return not self.given

    def coefficients(self) -> dict[frozenset[str], int]:
        """The contribution of the term to an identity: ``+h(XY) − h(X)``."""
        result = {self.union: 1}
        if self.given:
            result[self.given] = result.get(self.given, 0) - 1
        return result

    def evaluate(self, set_function) -> float:
        """``h(target | given)`` on a concrete set function."""
        return set_function[self.union] - set_function[self.given] \
            if self.given else set_function[self.union]

    def __str__(self) -> str:
        if self.is_unconditional:
            return f"h{format_varset(self.target)}"
        return f"h({format_varset(self.target)}|{format_varset(self.given)})"


def unconditional(variables) -> Term:
    """Shorthand for the unconditional term ``h(variables)``."""
    return Term(frozenset(variables))


class ProofStepError(ValueError):
    """Raised when a proof step cannot be applied to the current terms."""


class ProofStep:
    """Base class: every step consumes and produces multisets of terms."""

    def consumed(self) -> list[Term]:  # pragma: no cover - overridden
        raise NotImplementedError

    def produced(self) -> list[Term]:  # pragma: no cover - overridden
        raise NotImplementedError

    def apply(self, terms: Counter) -> None:
        """Apply the step in place to a Counter of terms."""
        for term in self.consumed():
            if terms[term] <= 0:
                raise ProofStepError(
                    f"cannot apply {self}: missing term {term}")
            terms[term] -= 1
            if terms[term] == 0:
                del terms[term]
        for term in self.produced():
            terms[term] += 1

    def describe(self) -> str:
        left = " + ".join(str(term) for term in self.consumed())
        right = " + ".join(str(term) for term in self.produced()) or "0"
        return f"{left} → {right}"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class DecompositionStep(ProofStep):
    """``h(XY) → h(X) + h(Y|X)`` where ``whole = XY`` and ``part = X ⊂ XY``."""

    whole: frozenset[str]
    part: frozenset[str]

    def __post_init__(self) -> None:
        if not self.part < self.whole:
            raise ValueError("the part of a decomposition must be a proper subset")

    def consumed(self) -> list[Term]:
        return [Term(self.whole)]

    def produced(self) -> list[Term]:
        produced = [Term(self.whole - self.part, self.part)]
        if self.part:
            produced.insert(0, Term(self.part))
        return produced


@dataclass(frozen=True)
class CompositionStep(ProofStep):
    """``h(X) + h(Y|X) → h(XY)`` with ``given = X`` and ``target = Y``."""

    given: frozenset[str]
    target: frozenset[str]

    def __post_init__(self) -> None:
        if not self.given:
            raise ValueError("composition needs a non-empty unconditional part")
        if self.given & self.target:
            raise ValueError("composition parts must be disjoint")

    def consumed(self) -> list[Term]:
        return [Term(self.given), Term(self.target, self.given)]

    def produced(self) -> list[Term]:
        return [Term(self.given | self.target)]


@dataclass(frozen=True)
class MonotonicityStep(ProofStep):
    """``h(XY) → h(X)`` with ``whole = XY`` and ``smaller = X ⊆ XY``.

    With ``smaller = ∅`` the term is simply dropped (``h(∅) = 0``).
    """

    whole: frozenset[str]
    smaller: frozenset[str]

    def __post_init__(self) -> None:
        if not self.smaller <= self.whole:
            raise ValueError("monotonicity must shrink the set")
        if self.smaller == self.whole:
            raise ValueError("monotonicity must drop at least one variable")

    def consumed(self) -> list[Term]:
        return [Term(self.whole)]

    def produced(self) -> list[Term]:
        return [Term(self.smaller)] if self.smaller else []


@dataclass(frozen=True)
class SubmodularityStep(ProofStep):
    """``h(Y|X) → h(Y|XZ)`` with ``target = Y``, ``given = X``, ``extra = Z``."""

    target: frozenset[str]
    given: frozenset[str]
    extra: frozenset[str]

    def __post_init__(self) -> None:
        if not self.extra:
            raise ValueError("a submodularity step must add at least one variable")
        if self.extra & (self.target | self.given):
            raise ValueError("the added variables must be new to the term")

    def consumed(self) -> list[Term]:
        return [Term(self.target, self.given)]

    def produced(self) -> list[Term]:
        return [Term(self.target, self.given | self.extra)]


def step_is_value_preserving(step: ProofStep) -> bool:
    """True for decomposition/composition (which keep Σh exactly equal)."""
    return isinstance(step, (DecompositionStep, CompositionStep))
