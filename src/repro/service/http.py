"""A stdlib-only HTTP/1.1 front over :class:`~repro.service.core.QueryService`.

No web framework: requests are parsed off an :func:`asyncio.start_server`
stream, dispatched through :meth:`QueryService.handle` (the same structured
seam the tests exercise in-process), and answered as JSON with
``Connection: close``.  The route table is deliberately tiny:

=========  ==============  ==========================================
method     path            body / query string
=========  ==============  ==========================================
``GET``    ``/healthz``    —
``GET``    ``/stats``      —
``GET``    ``/metrics``    — (Prometheus text exposition, ``text/plain``)
``GET``    ``/slow``       — (the slow-query log, with trace ids)
``GET``    ``/tenants``    —
``POST``   ``/tenants``    ``{name, backend?, relations, engine?}``
``POST``   ``/query``      ``{tenant, query, timeout?, shards?, page_size?}``
``POST``   ``/explain``    ``{tenant, query, analyze?, shards?}``
``GET``    ``/page``       ``?tenant=..&stream_id=..&offset=..&page_size=..``
=========  ==============  ==========================================

Service error codes map onto HTTP statuses (429 for admission rejection,
504 for a blown deadline, …) so a plain HTTP client sees conventional
backpressure semantics without parsing the error document.  Every response
is JSON except ``/metrics``, which serves the raw Prometheus text format
scrapers expect.
"""

from __future__ import annotations

import asyncio
import json
from urllib.parse import parse_qsl, urlsplit

from repro.service.core import QueryService

#: service error code → HTTP status.
STATUS_BY_CODE = {
    "bad-request": 400,
    "invalid-query": 400,
    "unknown-tenant": 404,
    "unknown-stream": 404,
    "duplicate-tenant": 409,
    "admission-rejected": 429,
    "execution-failed": 500,
    "internal": 500,
    "service-unavailable": 503,
    "query-aborted": 503,
    "deadline-exceeded": 504,
}

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 409: "Conflict",
            413: "Payload Too Large", 429: "Too Many Requests",
            500: "Internal Server Error", 503: "Service Unavailable",
            504: "Gateway Timeout"}

MAX_BODY_BYTES = 8 * 1024 * 1024


class HttpFrontend:
    """Serve a :class:`QueryService` over a loopback (or given) TCP port."""

    def __init__(self, service: QueryService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> "HttpFrontend":
        self._server = await asyncio.start_server(self._handle_client,
                                                  self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def stop(self, drain: bool = True, grace: float | None = None) -> None:
        """Stop accepting connections, then drain the service."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.shutdown(drain=drain, grace=grace)

    # ------------------------------------------------------------ internals
    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            status, payload, content_type = await self._serve_one(reader)
        except Exception as exc:  # defense: a broken request never kills the loop
            status, payload, content_type = 400, json.dumps(
                {"ok": False, "error": {
                    "code": "bad-request",
                    "message": f"malformed request: {exc}"}}).encode(), \
                "application/json"
        reason = _REASONS.get(status, "OK")
        head = (f"HTTP/1.1 {status} {reason}\r\n"
                f"Content-Type: {content_type}\r\n"
                f"Content-Length: {len(payload)}\r\n"
                "Connection: close\r\n\r\n")
        try:
            writer.write(head.encode() + payload)
            await writer.drain()
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _serve_one(
            self, reader: asyncio.StreamReader) -> tuple[int, bytes, str]:
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            return _json_reply(400, _error("bad-request", "empty request"))
        parts = request_line.split()
        if len(parts) != 3:
            return _json_reply(400, _error(
                "bad-request", f"malformed request line: {request_line!r}"))
        method, target, _version = parts
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1").rstrip("\r\n")
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            return _json_reply(413, _error("bad-request",
                                           "request body too large"))
        body = await reader.readexactly(length) if length else b""

        request = self._route(method.upper(), target, body)
        if request is None:
            return _json_reply(405, _error(
                "bad-request", f"unsupported route {method} {target}"))
        if isinstance(request, tuple):  # pre-dispatch failure (bad JSON, …)
            return _json_reply(*request)
        response = await self.service.handle(request)
        if response.get("ok"):
            result = response.get("result")
            # Raw-text ops (the Prometheus scrape) bypass the JSON envelope:
            # scrapers expect the bare exposition format, not a JSON wrapper.
            if (isinstance(result, dict) and "content_type" in result
                    and "text" in result):
                return 200, result["text"].encode(), result["content_type"]
            return _json_reply(200, response)
        code = response.get("error", {}).get("code", "internal")
        return _json_reply(STATUS_BY_CODE.get(code, 500), response)

    def _route(self, method: str, target: str, body: bytes):
        """Translate (method, path, body) into a ``handle()`` request doc."""
        url = urlsplit(target)
        path = url.path.rstrip("/") or "/"
        query = dict(parse_qsl(url.query))
        if method == "GET" and path == "/healthz":
            return {"op": "healthz"}
        if method == "GET" and path == "/stats":
            return {"op": "stats"}
        if method == "GET" and path == "/metrics":
            return {"op": "metrics"}
        if method == "GET" and path == "/slow":
            return {"op": "slow"}
        if method == "GET" and path == "/tenants":
            return {"op": "tenants"}
        if method == "GET" and path == "/page":
            doc: dict = {"op": "page", **query}
            if "page_size" in doc:
                doc["page_size"] = int(doc["page_size"])
            return doc
        if method == "POST":
            try:
                payload = json.loads(body.decode() or "{}")
            except (ValueError, UnicodeDecodeError) as exc:
                return 400, _error("bad-request", f"invalid JSON body: {exc}")
            if not isinstance(payload, dict):
                return 400, _error("bad-request", "the body must be a JSON object")
            if path == "/tenants":
                return {"op": "create_tenant", **payload}
            if path == "/query":
                return {"op": "query", **payload}
            if path == "/explain":
                return {"op": "explain", **payload}
        return None


def _json_reply(status: int, document: dict) -> tuple[int, bytes, str]:
    return status, json.dumps(document).encode(), "application/json"


def _error(code: str, message: str) -> dict:
    return {"ok": False, "error": {"code": code, "message": message}}


async def serve(service: QueryService, host: str = "127.0.0.1",
                port: int = 0) -> HttpFrontend:
    """Start a frontend and return it (``frontend.port`` is the bound port)."""
    return await HttpFrontend(service, host, port).start()
