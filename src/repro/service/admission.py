"""Admission control: bounded concurrency, bounded queueing, fast rejection.

Two nested limits govern every query:

* a **global** limit (``max_concurrent``) caps how many queries execute at
  once across all tenants — the engine work happens on a thread pool, so this
  is also the bound on concurrently-running worker threads;
* a **per-tenant** limit (``max_per_tenant``) stops one chatty tenant from
  occupying every global slot.

Waiting is bounded too: at most ``queue_depth`` queries may be queued behind
the global limit and ``tenant_queue_depth`` behind any one tenant's limit.
A query arriving past either bound is rejected *immediately* with a typed
:class:`~repro.service.errors.AdmissionRejectedError` — clients get fast
backpressure instead of unbounded latency.

All counter updates happen on the event loop (no ``await`` between read and
write), so they need no lock; the invariant the concurrency tests assert is
``submitted == admitted + rejected_global + rejected_tenant`` and
``admitted == completed + in_flight + waiting``.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager

from repro.service.errors import AdmissionRejectedError


class AdmissionController:
    """Semaphore-backed two-level admission with bounded queues."""

    def __init__(self, max_concurrent: int = 8, max_per_tenant: int = 4,
                 queue_depth: int = 16, tenant_queue_depth: int = 8) -> None:
        if max_concurrent < 1 or max_per_tenant < 1:
            raise ValueError("admission limits must allow at least one query")
        self.max_concurrent = max_concurrent
        self.max_per_tenant = max_per_tenant
        self.queue_depth = queue_depth
        self.tenant_queue_depth = tenant_queue_depth
        self._global = asyncio.Semaphore(max_concurrent)
        self._per_tenant: dict[str, asyncio.Semaphore] = {}
        self._waiting_global = 0
        self._waiting_tenant: dict[str, int] = {}
        self.stats_counters = {
            "submitted": 0, "admitted": 0, "completed": 0,
            "rejected_global": 0, "rejected_tenant": 0,
            "in_flight": 0, "peak_in_flight": 0,
        }

    def _tenant_sem(self, tenant: str) -> asyncio.Semaphore:
        sem = self._per_tenant.get(tenant)
        if sem is None:
            sem = self._per_tenant[tenant] = asyncio.Semaphore(self.max_per_tenant)
        return sem

    @asynccontextmanager
    async def slot(self, tenant: str):
        """Hold one execution slot for ``tenant``; raises instead of queueing
        past the configured depths.

        The per-tenant semaphore is acquired *before* the global one, so a
        tenant already at its own limit queues (or rejects) without pinning a
        global slot that another tenant could use.
        """
        # Every mutation below runs on the event loop with no `await` between
        # read and write (the module invariant the concurrency tests assert),
        # so these are single-threaded and need no lock.
        counters = self.stats_counters
        counters["submitted"] += 1  # repro-analysis: allow[REP108] -- event-loop single-threaded; no await between read and write
        waiting_here = self._waiting_tenant.get(tenant, 0)
        if waiting_here >= self.tenant_queue_depth:
            counters["rejected_tenant"] += 1  # repro-analysis: allow[REP108] -- event-loop single-threaded; no await between read and write
            raise AdmissionRejectedError(
                f"tenant {tenant!r} already has {waiting_here} queries queued "
                f"(limit {self.tenant_queue_depth})", scope="tenant", tenant=tenant)
        if self._waiting_global >= self.queue_depth:
            counters["rejected_global"] += 1  # repro-analysis: allow[REP108] -- event-loop single-threaded; no await between read and write
            raise AdmissionRejectedError(
                f"{self._waiting_global} queries already queued globally "
                f"(limit {self.queue_depth})", scope="global", tenant=tenant)

        self._waiting_tenant[tenant] = waiting_here + 1
        self._waiting_global += 1
        acquired_tenant = acquired_global = False
        try:
            await self._tenant_sem(tenant).acquire()
            acquired_tenant = True
            await self._global.acquire()
            acquired_global = True
        finally:
            self._waiting_tenant[tenant] -= 1
            self._waiting_global -= 1
            if not acquired_global:
                # Cancelled (or failed) while queued: give back whatever we
                # did acquire so the slot accounting stays exact.
                if acquired_tenant:
                    self._tenant_sem(tenant).release()
        counters["admitted"] += 1  # repro-analysis: allow[REP108] -- event-loop single-threaded; no await between read and write
        counters["in_flight"] += 1  # repro-analysis: allow[REP108] -- event-loop single-threaded; no await between read and write
        # repro-analysis: allow[REP108] -- event-loop single-threaded; no await between read and write
        counters["peak_in_flight"] = max(counters["peak_in_flight"],
                                         counters["in_flight"])
        try:
            yield
        finally:
            counters["in_flight"] -= 1  # repro-analysis: allow[REP108] -- event-loop single-threaded; no await between read and write
            counters["completed"] += 1  # repro-analysis: allow[REP108] -- event-loop single-threaded; no await between read and write
            self._global.release()
            self._tenant_sem(tenant).release()

    def waiting(self, tenant: str | None = None) -> int:
        """Currently queued queries — globally, or for one tenant."""
        if tenant is None:
            return self._waiting_global
        return self._waiting_tenant.get(tenant, 0)

    def stats(self) -> dict:
        """Counters plus the live queue depths (an internally consistent
        snapshot: taken on the event loop, where all updates happen)."""
        return {
            **self.stats_counters,
            "waiting": self._waiting_global,
            "limits": {
                "max_concurrent": self.max_concurrent,
                "max_per_tenant": self.max_per_tenant,
                "queue_depth": self.queue_depth,
                "tenant_queue_depth": self.tenant_queue_depth,
            },
        }
