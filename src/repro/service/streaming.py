"""Streamed result sets: paginate an answer without materialising row tuples.

Columnar answers keep their rows encoded (per-column ``int64`` codes plus
decode tables); ``iter(relation)`` decodes rows lazily.  A
:class:`ResultStream` drives that iterator exactly as far as the highest page
requested, so a client that reads two pages of a million-row answer pays for
two pages of tuple materialisation — the rest stays encoded in the backend.

Pages are addressed by row offset (``cursor``), and consumed rows are
retained in order, so re-fetching an earlier page is cheap and the row order
a client observes is stable for the stream's lifetime (iteration order of a
relation is deterministic per backend, but *not* across backends — a stream
pins one iteration).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.relational.relation import Relation


@dataclass
class ResultPage:
    """One page of a streamed answer, plus the cursor to ask for next."""

    stream_id: str
    columns: tuple[str, ...]
    rows: list[tuple]
    #: Offset of the first row of this page.
    offset: int
    #: Offset to request for the following page (== offset + len(rows)).
    cursor: int
    #: True when this page reaches the end of the answer.
    done: bool
    #: Total row count — exact (relations know their cardinality).
    total: int

    def to_dict(self) -> dict:
        return {"stream_id": self.stream_id, "columns": list(self.columns),
                "rows": [list(row) for row in self.rows],
                "offset": self.offset, "cursor": self.cursor,
                "done": self.done, "total": self.total}


class ResultStream:
    """A lazy, repeatable pagination over one answer relation."""

    def __init__(self, stream_id: str, tenant: str, answer: Relation,
                 page_size: int) -> None:
        if page_size < 1:
            raise ValueError("a page must hold at least one row")
        self.stream_id = stream_id
        self.tenant = tenant
        self.columns = answer.columns
        self.page_size = page_size
        self.total = len(answer)
        self._iterator = iter(answer)
        self._consumed: list[tuple] = []
        self._lock = threading.Lock()

    def _ensure(self, count: int) -> None:
        """Advance the underlying iterator until ``count`` rows are buffered
        (or the answer is exhausted).  Caller holds the lock."""
        while len(self._consumed) < count:
            try:
                self._consumed.append(next(self._iterator))
            except StopIteration:
                break

    @property
    def consumed(self) -> int:
        """How many rows have been materialised so far (laziness witness)."""
        return len(self._consumed)

    def fetch(self, offset: int = 0, page_size: int | None = None) -> ResultPage:
        """The page of up to ``page_size`` rows starting at ``offset``."""
        if offset < 0:
            raise ValueError("a page offset cannot be negative")
        size = self.page_size if page_size is None else page_size
        with self._lock:
            self._ensure(offset + size)
            rows = self._consumed[offset:offset + size]
            cursor = offset + len(rows)
            done = cursor >= self.total
        return ResultPage(stream_id=self.stream_id, columns=self.columns,
                          rows=rows, offset=offset, cursor=cursor,
                          done=done, total=self.total)

    def pages(self):
        """Iterate every page in order (test/demo convenience)."""
        offset = 0
        while True:
            page = self.fetch(offset)
            yield page
            if page.done:
                return
            offset = page.cursor
