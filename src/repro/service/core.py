"""The asyncio query service: multi-tenant serving over cached-plan engines.

:class:`QueryService` is the in-process front: it owns a
:class:`~repro.service.registry.TenantRegistry` (one engine, plan cache and
stats block per tenant), an
:class:`~repro.service.admission.AdmissionController` (global + per-tenant
concurrency with bounded queues and fast rejection), and a thread pool the
synchronous engine calls actually run on.  The HTTP front
(:mod:`repro.service.http`) is a thin JSON shim over :meth:`QueryService.handle`;
everything interesting — deadlines, cancellation, streaming, stats — is
testable here without opening a socket.

Deadlines are cooperative: each query gets a
:class:`~repro.utils.cancellation.CancellationToken` threaded through the
engine into the evaluation inner loops (and across process boundaries as a
wall-clock deadline), so a query over a pathological intermediate join stops
*mid-plan*, within a bounded number of work steps of its deadline — it does
not run to completion and then notice it was late.

Shutdown drains: new queries are refused with ``service-unavailable``,
in-flight queries finish (or, past an optional grace period, are cancelled
through the same tokens), then the worker pool is torn down.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.lp.model import lp_cache_stats
from repro.query.cq import ConjunctiveQuery
from repro.query.parser import QueryParseError, parse_query
from repro.relational.database import Database
from repro.relational.kernels import kernel_stats
from repro.relational.relation import Relation
from repro.service.admission import AdmissionController
from repro.service.errors import (
    AdmissionRejectedError,
    BadRequestError,
    DeadlineExceededError,
    InvalidQueryError,
    QueryAbortedError,
    QueryExecutionError,
    ServiceError,
    ServiceUnavailableError,
    UnknownStreamError,
)
from repro.service.registry import Tenant, TenantRegistry
from repro.service.streaming import ResultPage, ResultStream
from repro.telemetry.metrics import (
    Sample,
    canonical_events,
    get_registry,
    install_default_sources,
)
from repro.telemetry.slowlog import SlowQueryLog
from repro.telemetry.trace import get_tracer
from repro.utils.cancellation import CancellationToken, QueryCancelledError


@dataclass
class ServiceConfig:
    """Knobs of the serving loop (all enforced, all reported in ``/stats``)."""

    max_concurrent: int = 8
    max_per_tenant: int = 4
    queue_depth: int = 16
    tenant_queue_depth: int = 8
    #: Applied when a query names no timeout; ``None`` means run unbounded.
    default_timeout: float | None = None
    default_page_size: int = 64
    #: Open result streams retained per service; the oldest stream is evicted
    #: (its remaining pages become unreachable) when the bound is exceeded.
    max_open_streams: int = 64
    executor_threads: int = 8
    #: Queries slower than this land in the slow-query log (``GET /slow``);
    #: ``None`` disables the log entirely.
    slow_query_seconds: float | None = 1.0
    slow_log_capacity: int = 128

    def as_dict(self) -> dict:
        return {
            "max_concurrent": self.max_concurrent,
            "max_per_tenant": self.max_per_tenant,
            "queue_depth": self.queue_depth,
            "tenant_queue_depth": self.tenant_queue_depth,
            "default_timeout": self.default_timeout,
            "default_page_size": self.default_page_size,
            "max_open_streams": self.max_open_streams,
            "executor_threads": self.executor_threads,
            "slow_query_seconds": self.slow_query_seconds,
            "slow_log_capacity": self.slow_log_capacity,
        }


@dataclass
class QueryResult:
    """A completed query: identity, first page, and the full lazy answer."""

    tenant: str
    stream_id: str
    columns: tuple[str, ...]
    row_count: int
    elapsed: float
    page: ResultPage
    #: The answer relation itself — in-process callers can keep joining /
    #: comparing without round-tripping rows through pages.
    answer: Relation = field(repr=False)
    #: The tracer's id for this request (empty when tracing is disabled or
    #: the trace was sampled out) — the key into ``export_trace`` / ``/slow``.
    trace_id: str = ""

    def to_dict(self) -> dict:
        return {"tenant": self.tenant, "stream_id": self.stream_id,
                "columns": list(self.columns), "row_count": self.row_count,
                "elapsed": self.elapsed, "trace_id": self.trace_id,
                "page": self.page.to_dict()}


class QueryService:
    """The in-process service object; see the module docstring."""

    def __init__(self, config: ServiceConfig | None = None) -> None:
        self.config = config or ServiceConfig()
        self.registry = TenantRegistry()
        self.admission = AdmissionController(
            max_concurrent=self.config.max_concurrent,
            max_per_tenant=self.config.max_per_tenant,
            queue_depth=self.config.queue_depth,
            tenant_queue_depth=self.config.tenant_queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.executor_threads,
            thread_name_prefix="repro-service")
        self._streams: OrderedDict[str, ResultStream] = OrderedDict()
        self._stream_ids = itertools.count(1)
        self._active_tokens: set[CancellationToken] = set()
        self._active = 0
        self._idle = asyncio.Event()
        self._idle.set()
        self._closing = False
        self.started_at = time.time()
        self.slow_log = SlowQueryLog(
            threshold_seconds=self.config.slow_query_seconds,
            capacity=self.config.slow_log_capacity)
        install_default_sources()
        get_registry().register_source(
            "service", self._metrics_samples, owner=self)

    # -------------------------------------------------------------- tenants
    def create_tenant(self, name: str, database: Database, *,
                      shards: int = 1, executor: str = "thread",
                      plan_cache_size: int = 128, max_variables: int = 9,
                      cluster_config=None,
                      measure_degrees: bool = False) -> Tenant:
        if self._closing:
            raise ServiceUnavailableError("service is shutting down")
        return self.registry.create(
            name, database, shards=shards, executor=executor,
            plan_cache_size=plan_cache_size, max_variables=max_variables,
            cluster_config=cluster_config,
            measure_degrees=measure_degrees)

    def drop_tenant(self, name: str) -> None:
        self.registry.drop(name)
        for stream_id in [sid for sid, stream in self._streams.items()
                          if stream.tenant == name]:
            del self._streams[stream_id]

    # -------------------------------------------------------------- queries
    async def query(self, tenant_name: str, query: ConjunctiveQuery | str, *,
                    timeout: float | None = None, shards: int | None = None,
                    page_size: int | None = None) -> QueryResult:
        """Admit, execute and stream one query for ``tenant_name``.

        Raises a typed :class:`~repro.service.errors.ServiceError` subclass on
        every failure path: unknown tenant, unparsable query, admission
        rejection, deadline, engine failure, shutdown.
        """
        if self._closing:
            raise ServiceUnavailableError("service is shutting down")
        tenant = self.registry.get(tenant_name)
        parsed = self._parse(query)
        effective_timeout = (self.config.default_timeout
                             if timeout is None else timeout)
        token = (CancellationToken.with_timeout(effective_timeout)
                 if effective_timeout is not None else CancellationToken())
        with get_tracer().span("service.request",
                               {"tenant": tenant_name,
                                "query": parsed.name}) as span:
            ctx = span.context() if span else None
            trace_id = ctx.trace_id if ctx is not None else ""
            started = time.perf_counter()
            try:
                async with self.admission.slot(tenant_name):
                    started = time.perf_counter()
                    result = await self._run_on_pool(tenant, parsed, shards,
                                                     token, ctx)
                    elapsed = time.perf_counter() - started
            except AdmissionRejectedError:
                tenant.bump(rejected=1)
                span.set("outcome", "rejected")
                raise
            except ServiceError as exc:
                span.set("outcome", exc.code)
                self.slow_log.record(
                    tenant=tenant_name, query=parsed.name,
                    elapsed=time.perf_counter() - started,
                    trace_id=trace_id, outcome=exc.code)
                raise
            tenant.bump(completed=1)
            span.set("outcome", "completed")
            span.set("rows_out", len(result.answer))
            self.slow_log.record(
                tenant=tenant_name, query=parsed.name, elapsed=elapsed,
                trace_id=trace_id, row_count=len(result.answer),
                outcome="completed")
        return self._register_stream(tenant_name, parsed, result.answer,
                                     page_size, elapsed, trace_id=trace_id)

    async def _run_on_pool(self, tenant: Tenant, parsed: ConjunctiveQuery,
                           shards: int | None, token: CancellationToken,
                           ctx=None):
        """Run the blocking engine call on the worker pool, mapping engine
        exceptions to the service error taxonomy.

        ``ctx`` is the request span's :class:`~repro.telemetry.trace.SpanContext`:
        contextvars do not follow ``run_in_executor`` into the pool thread, so
        the engine call re-attaches it explicitly — engine/execution spans
        parent under the service request instead of starting orphan traces.
        """
        loop = asyncio.get_running_loop()
        tracer = get_tracer()

        def call():
            with tracer.attach(ctx):
                return tenant.engine.execute(parsed, shards=shards,
                                             cancellation=token)

        self._track(token, +1)
        try:
            return await loop.run_in_executor(self._executor, call)
        except QueryCancelledError as exc:
            tenant.bump(cancelled=1)
            if token.deadline_exceeded:
                raise DeadlineExceededError(str(exc)) from exc
            raise QueryAbortedError(str(exc)) from exc
        except Exception as exc:
            tenant.bump(failed=1)
            raise QueryExecutionError(
                f"query execution failed: {exc}", cause=exc) from exc
        finally:
            self._track(token, -1)

    def _parse(self, query: ConjunctiveQuery | str) -> ConjunctiveQuery:
        if isinstance(query, ConjunctiveQuery):
            return query
        try:
            return parse_query(query)
        except QueryParseError as exc:
            raise InvalidQueryError(str(exc)) from exc

    def _track(self, token: CancellationToken, delta: int) -> None:
        self._active += delta
        if delta > 0:
            self._active_tokens.add(token)
            self._idle.clear()
        else:
            self._active_tokens.discard(token)
            if self._active == 0:
                self._idle.set()

    def _register_stream(self, tenant_name: str, parsed: ConjunctiveQuery,
                         answer: Relation, page_size: int | None,
                         elapsed: float, trace_id: str = "") -> QueryResult:
        size = (self.config.default_page_size
                if page_size is None else page_size)
        stream_id = f"{tenant_name}-{next(self._stream_ids)}"
        stream = ResultStream(stream_id, tenant_name, answer, size)
        self._streams[stream_id] = stream
        while len(self._streams) > self.config.max_open_streams:
            self._streams.popitem(last=False)
        return QueryResult(tenant=tenant_name, stream_id=stream_id,
                           columns=stream.columns, row_count=stream.total,
                           elapsed=elapsed, page=stream.fetch(0),
                           answer=answer, trace_id=trace_id)

    async def explain(self, tenant_name: str,
                      query: ConjunctiveQuery | str, *,
                      analyze: bool = False,
                      shards: int | None = None) -> dict:
        """The engine's plan explanation for ``tenant_name``'s query.

        With ``analyze=True`` the query actually executes (through the same
        admission control as :meth:`query`) and the document gains observed
        cardinalities, per-layer cache deltas and the full trace.
        """
        if self._closing:
            raise ServiceUnavailableError("service is shutting down")
        tenant = self.registry.get(tenant_name)
        parsed = self._parse(query)
        loop = asyncio.get_running_loop()
        try:
            async with self.admission.slot(tenant_name):
                return await loop.run_in_executor(
                    self._executor,
                    lambda: tenant.engine.explain(parsed, shards=shards,
                                                  analyze=analyze))
        except AdmissionRejectedError:
            tenant.bump(rejected=1)
            raise
        except ServiceError:
            raise
        except Exception as exc:
            tenant.bump(failed=1)
            raise QueryExecutionError(
                f"explain failed: {exc}", cause=exc) from exc

    def fetch_page(self, tenant_name: str, stream_id: str, *,
                   offset: int = 0, page_size: int | None = None) -> ResultPage:
        """A later page of an earlier answer (streams are tenant-scoped)."""
        stream = self._streams.get(stream_id)
        if stream is None or stream.tenant != tenant_name:
            raise UnknownStreamError(
                f"no open stream {stream_id!r} for tenant {tenant_name!r}")
        return stream.fetch(offset, page_size)

    # ----------------------------------------------------------------- stats
    def stats(self) -> dict:
        """The ``/stats`` document: service, admission, tenants, totals.

        ``totals`` re-aggregates the per-tenant
        :class:`~repro.engine.core.EngineStats` snapshots; the process-global
        LP and kernel counters ride along so one document answers "how much
        reuse did every cache layer see".
        """
        tenants = self.registry.snapshot()
        totals: dict[str, float] = {}
        for doc in tenants.values():
            for key, value in doc["engine"].items():
                if isinstance(value, (int, float)):
                    totals[key] = totals.get(key, 0) + value
            for key, value in doc["outcomes"].items():
                totals[key] = totals.get(key, 0) + value
        return {
            "service": {
                "config": self.config.as_dict(),
                "uptime_seconds": time.time() - self.started_at,
                "closing": self._closing,
                "tenants": len(self.registry),
                "open_streams": len(self._streams),
                "active_queries": self._active,
            },
            "admission": self.admission.stats(),
            "tenants": tenants,
            "totals": totals,
            "lp_cache": lp_cache_stats(),
            "kernels": kernel_stats(),
            "telemetry": {
                "tracer": get_tracer().stats(),
                "slow_log": self.slow_log.stats(),
            },
        }

    def metrics_text(self) -> str:
        """The Prometheus text exposition (``GET /metrics`` body)."""
        return get_registry().render_prometheus()

    def _metrics_samples(self) -> list[Sample]:
        """The registry pull source for service-level counters.

        Samples the *same* structures ``stats()`` reports — the admission
        controller's counter dict and each tenant's outcome counters — so
        ``/metrics`` and ``/stats`` reconcile by construction.
        """
        samples: list[Sample] = []
        admission = {key: value
                     for key, value in self.admission.stats_counters.items()
                     if isinstance(value, (int, float))}
        for name, value in canonical_events("admission", admission).items():
            kind = ("gauge" if name.endswith(("in_flight", "peak_in_flight"))
                    else "counter")
            samples.append(Sample(name, {}, value, kind))
        samples.append(Sample("service.streams.open", {},
                              len(self._streams), "gauge"))
        samples.append(Sample("service.queries.active", {},
                              self._active, "gauge"))
        for tenant in self.registry.tenants():
            samples.extend(tenant.metrics_samples())
        return samples

    # -------------------------------------------------------------- shutdown
    async def shutdown(self, drain: bool = True,
                       grace: float | None = None) -> None:
        """Stop serving: refuse new queries, settle in-flight ones, tear down.

        ``drain=True`` waits for in-flight queries; with a ``grace`` bound,
        queries still running when it elapses are cooperatively cancelled
        (their clients see ``query-aborted``).  ``drain=False`` cancels
        immediately.  Idempotent.
        """
        self._closing = True
        if not drain:
            self._cancel_active("service shutdown without drain")
        elif grace is not None:
            try:
                await asyncio.wait_for(self._wait_idle(), grace)
            except asyncio.TimeoutError:
                self._cancel_active(f"shutdown grace of {grace}s expired")
        await self._wait_idle()
        self._executor.shutdown(wait=True)
        # Release every tenant's worker processes (cluster coordinators and
        # persistent process pools) — daemon workers would die with the
        # process anyway, but an explicit close keeps shutdown deterministic.
        for name in self.registry.names():
            self.registry.get(name).engine.close()

    def _cancel_active(self, reason: str) -> None:
        for token in list(self._active_tokens):
            token.cancel(reason)

    async def _wait_idle(self) -> None:
        await self._idle.wait()

    # ------------------------------------------------------------- dispatch
    async def handle(self, request: dict) -> dict:
        """Structured dispatch: one request document in, one response out.

        This is the seam the HTTP front and the fault-injection tests share:
        every outcome — including engine crashes — comes back as
        ``{"ok": bool, ...}``; no exception escapes.
        """
        try:
            return {"ok": True, "result": await self._dispatch(request)}
        except ServiceError as exc:
            return {"ok": False, "error": exc.to_dict()}
        except Exception as exc:  # pragma: no cover - defensive catch-all
            return {"ok": False,
                    "error": {"code": "internal", "message": str(exc)}}

    async def _dispatch(self, request: dict) -> dict:
        if not isinstance(request, dict) or "op" not in request:
            raise BadRequestError("a request document needs an 'op' field")
        op = request["op"]
        if op == "healthz":
            return {"status": "shutting-down" if self._closing else "ok"}
        if op == "stats":
            return self.stats()
        if op == "tenants":
            return {"tenants": self.registry.names()}
        if op == "create_tenant":
            self._require(request, "name", "relations")
            database = database_from_payload(request)
            engine_opts = request.get("engine", {})
            allowed = {"shards", "executor", "plan_cache_size",
                       "max_variables", "measure_degrees"}
            unknown = set(engine_opts) - allowed
            if unknown:
                raise BadRequestError(
                    f"unknown engine options: {sorted(unknown)}")
            tenant = self.create_tenant(request["name"], database,
                                        **engine_opts)
            return {"tenant": tenant.name,
                    "relations": database.summary()}
        if op == "drop_tenant":
            self._require(request, "name")
            self.drop_tenant(request["name"])
            return {"tenant": request["name"], "dropped": True}
        if op == "query":
            self._require(request, "tenant", "query")
            result = await self.query(
                request["tenant"], request["query"],
                timeout=request.get("timeout"),
                shards=request.get("shards"),
                page_size=request.get("page_size"))
            return result.to_dict()
        if op == "page":
            self._require(request, "tenant", "stream_id")
            page = self.fetch_page(request["tenant"], request["stream_id"],
                                   offset=int(request.get("offset", 0)),
                                   page_size=request.get("page_size"))
            return page.to_dict()
        if op == "metrics":
            return {"content_type": "text/plain; version=0.0.4",
                    "text": self.metrics_text()}
        if op == "slow":
            return {"slow_queries": self.slow_log.entries(),
                    "log": self.slow_log.stats()}
        if op == "explain":
            self._require(request, "tenant", "query")
            return await self.explain(
                request["tenant"], request["query"],
                analyze=bool(request.get("analyze", False)),
                shards=request.get("shards"))
        raise BadRequestError(f"unknown op {op!r}")

    @staticmethod
    def _require(request: dict, *fields: str) -> None:
        missing = [name for name in fields if name not in request]
        if missing:
            raise BadRequestError(f"missing request fields: {missing}")


def database_from_payload(request: dict) -> Database:
    """Build a :class:`Database` from a JSON tenant-creation document.

    ``relations`` maps name → ``{"columns": [...], "rows": [[...], ...]}``;
    JSON arrays become the hashable row tuples relations require.
    """
    relations = request.get("relations")
    if not isinstance(relations, dict):
        raise BadRequestError("'relations' must map names to column/row docs")
    backend = request.get("backend")
    database = Database(backend=backend)
    for name, doc in relations.items():
        try:
            columns = tuple(doc["columns"])
            rows = [tuple(row) for row in doc["rows"]]
        except (TypeError, KeyError) as exc:
            raise BadRequestError(
                f"relation {name!r} needs 'columns' and 'rows'") from exc
        database.add(Relation(name, columns, rows, backend=backend), name=name)
    return database
