"""The service error taxonomy: every failure a client can observe, typed.

Each error carries a stable machine-readable ``code`` (what the HTTP front
maps to a status and what the fault-injection tests assert on) and a human
``message``.  ``to_dict()`` is the wire form; nothing else about an internal
exception leaks to clients — a backend blowing up mid-join surfaces as one
``execution-failed`` document, not a traceback.
"""

from __future__ import annotations


class ServiceError(Exception):
    """Base class: a structured, client-visible failure."""

    code = "internal"

    def __init__(self, message: str, **details: object) -> None:
        super().__init__(message)
        self.message = message
        self.details = details

    def to_dict(self) -> dict:
        doc: dict = {"code": self.code, "message": self.message}
        if self.details:
            doc["details"] = {key: value for key, value in self.details.items()
                              if value is not None}
        return doc


class UnknownTenantError(ServiceError):
    code = "unknown-tenant"


class DuplicateTenantError(ServiceError):
    code = "duplicate-tenant"


class UnknownStreamError(ServiceError):
    code = "unknown-stream"


class InvalidQueryError(ServiceError):
    code = "invalid-query"


class BadRequestError(ServiceError):
    code = "bad-request"


class AdmissionRejectedError(ServiceError):
    """Fast rejection: the global or per-tenant queue is already full.

    ``scope`` is ``"global"`` or ``"tenant"`` — the admission tests assert the
    controller rejects at the right boundary, not merely that it rejects.
    """

    code = "admission-rejected"

    def __init__(self, message: str, scope: str, tenant: str | None = None) -> None:
        super().__init__(message, scope=scope, tenant=tenant)
        self.scope = scope


class DeadlineExceededError(ServiceError):
    code = "deadline-exceeded"


class QueryAbortedError(ServiceError):
    """The query was cooperatively cancelled for a non-deadline reason
    (typically shutdown grace expiry)."""

    code = "query-aborted"


class ServiceUnavailableError(ServiceError):
    code = "service-unavailable"


class QueryExecutionError(ServiceError):
    """The engine raised while executing: the tenant's data or plan hit an
    unexpected condition (e.g. a failing storage backend or a dead worker).

    The original exception type rides along in ``details["cause"]`` so tests
    can distinguish a flaky index build from a broken process pool without
    the service ever re-raising the raw exception at a client.
    """

    code = "execution-failed"

    def __init__(self, message: str, cause: BaseException | None = None) -> None:
        super().__init__(message,
                         cause=type(cause).__name__ if cause is not None else None)
        self.cause = cause
