"""Multi-tenant asyncio query service over plan-cached engines (PR 7).

In-process use::

    service = QueryService(ServiceConfig(max_concurrent=4))
    service.create_tenant("acme", database)
    result = asyncio.run(service.query("acme", "Q(x, z) :- R(x, y), S(y, z)"))

Over HTTP::

    frontend = await serve(service, port=8080)

See :mod:`repro.service.core` for the serving semantics (admission,
deadlines, streaming, drain) and :mod:`repro.service.http` for the routes.
"""

from repro.service.admission import AdmissionController
from repro.service.core import (
    QueryResult,
    QueryService,
    ServiceConfig,
    database_from_payload,
)
from repro.service.errors import (
    AdmissionRejectedError,
    BadRequestError,
    DeadlineExceededError,
    DuplicateTenantError,
    InvalidQueryError,
    QueryAbortedError,
    QueryExecutionError,
    ServiceError,
    ServiceUnavailableError,
    UnknownStreamError,
    UnknownTenantError,
)
from repro.service.http import HttpFrontend, serve
from repro.service.registry import Tenant, TenantRegistry
from repro.service.streaming import ResultPage, ResultStream

__all__ = [
    "AdmissionController",
    "AdmissionRejectedError",
    "BadRequestError",
    "DeadlineExceededError",
    "DuplicateTenantError",
    "HttpFrontend",
    "InvalidQueryError",
    "QueryAbortedError",
    "QueryExecutionError",
    "QueryResult",
    "QueryService",
    "ResultPage",
    "ResultStream",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailableError",
    "Tenant",
    "TenantRegistry",
    "UnknownStreamError",
    "UnknownTenantError",
    "database_from_payload",
    "serve",
]
