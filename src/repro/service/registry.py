"""Per-tenant engine registry: isolated databases, plan caches and stats.

Tenancy in the service is engine-granular: every tenant owns a full
:class:`~repro.engine.Engine` (its database, plan cache, measured-statistics
memo and :class:`~repro.engine.core.EngineStats`), so one tenant's cached
plans can never serve — or leak query shapes to — another tenant.  The
concurrency tests assert exactly this: after a mixed workload, each tenant's
``plan_builds`` equals the number of distinct query shapes *that tenant*
submitted.

The registry itself is a small locked dict; engines are built here so every
creation path (in-process API, HTTP front, tests) applies the same defaults.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.engine import Engine
from repro.relational.database import Database
from repro.service.errors import DuplicateTenantError, UnknownTenantError
from repro.telemetry.metrics import canonical_events


@dataclass
class Tenant:
    """One tenant: a name, its engine, and service-level counters."""

    name: str
    engine: Engine
    #: Service-level outcome counters (engine-level detail lives in
    #: ``engine.stats``): queries that returned, failed, or were cancelled.
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    rejected: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    @property
    def database(self) -> Database:
        return self.engine.database

    def bump(self, **deltas: int) -> None:
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)

    def snapshot(self) -> dict:
        """The tenant's slice of the ``/stats`` document."""
        with self._lock:
            outcomes = {"completed": self.completed, "failed": self.failed,
                        "cancelled": self.cancelled, "rejected": self.rejected}
        return {
            "outcomes": outcomes,
            "engine": self.engine.stats.as_dict(),
            "caches": self.engine.cache_stats(),
            "database": self.engine.database.summary(),
        }

    def metrics_samples(self) -> list[tuple]:
        """This tenant's counters as registry samples, labelled by tenant.

        Reads the same locked outcome counters and engine stats dict that
        :meth:`snapshot` reports, so ``/metrics`` and ``/stats`` agree.
        """
        with self._lock:
            outcomes = {"completed": self.completed, "failed": self.failed,
                        "cancelled": self.cancelled, "rejected": self.rejected}
        labels = {"tenant": self.name}
        samples = [(f"service.tenant.{name}", labels, value)
                   for name, value in outcomes.items()]
        plan_events = canonical_events(
            "plan_cache", self.engine.plan_cache.cache_stats())
        for name, value in plan_events.items():
            kind = "gauge" if name.endswith(".entries") else "counter"
            samples.append((name, labels, value, kind))
        return samples


class TenantRegistry:
    """Thread-safe name → :class:`Tenant` mapping."""

    def __init__(self) -> None:
        self._tenants: dict[str, Tenant] = {}
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._tenants)

    def __contains__(self, name: str) -> bool:
        return name in self._tenants

    def create(self, name: str, database: Database, *,
               shards: int = 1, executor: str = "thread",
               plan_cache_size: int = 128, max_variables: int = 9,
               cluster_config=None,
               measure_degrees: bool = False) -> Tenant:
        """Register ``name`` with a fresh engine over ``database``."""
        engine = Engine(database, shards=shards, executor=executor,
                        plan_cache_size=plan_cache_size,
                        max_variables=max_variables,
                        cluster_config=cluster_config,
                        measure_degrees=measure_degrees)
        tenant = Tenant(name=name, engine=engine)
        with self._lock:
            if name in self._tenants:
                raise DuplicateTenantError(f"tenant {name!r} already exists")
            self._tenants[name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None:
            raise UnknownTenantError(f"unknown tenant {name!r}")
        return tenant

    def drop(self, name: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.pop(name, None)
        if tenant is None:
            raise UnknownTenantError(f"unknown tenant {name!r}")
        # Dropping a tenant releases its worker processes (cluster pool and
        # persistent process pool) — engines otherwise hold them for reuse.
        tenant.engine.close()
        return tenant

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._tenants)

    def tenants(self) -> list[Tenant]:
        """A snapshot list of the live tenant objects."""
        with self._lock:
            return list(self._tenants.values())

    def snapshot(self) -> dict[str, dict]:
        """Per-tenant stats documents, keyed by tenant name."""
        with self._lock:
            tenants = list(self._tenants.values())
        return {tenant.name: tenant.snapshot() for tenant in tenants}
