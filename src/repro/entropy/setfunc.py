"""Set functions over subsets of a variable set (Section 3.3).

A :class:`SetFunction` stores a value ``h(S)`` for every subset ``S`` of a
ground set of variables.  Entropy vectors of probability distributions and the
polymatroids optimised over by the bound LPs are both set functions; this
module provides the shared plumbing: evaluation, conditional values
``h(Y|X) = h(XY) − h(X)``, and checks of the basic Shannon inequalities
(monotonicity and submodularity).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.utils.varsets import format_varset, powerset, varset


class SetFunction:
    """A function ``h : 2^V -> R`` with ``h(∅) = 0``.

    Values may be given for a subset of the lattice; missing values default to
    ``None`` and cause an error when queried, except for the empty set which
    is always 0.
    """

    def __init__(self, variables: Iterable[str],
                 values: Mapping[frozenset[str], float] | None = None) -> None:
        self.variables = frozenset(variables)
        self._values: dict[frozenset[str], float] = {frozenset(): 0.0}
        if values:
            for subset, value in values.items():
                self[frozenset(subset)] = value

    # --------------------------------------------------------------- storage
    def __setitem__(self, subset: Iterable[str] | str, value: float) -> None:
        key = varset(subset) if isinstance(subset, str) else frozenset(subset)
        if not key <= self.variables:
            raise KeyError(
                f"{format_varset(frozenset(key))} is not a subset of the ground set "
                f"{format_varset(self.variables)}"
            )
        if not key:
            if abs(value) > 1e-12:
                raise ValueError("h(∅) must be 0")
            return
        self._values[key] = float(value)

    def __getitem__(self, subset: Iterable[str] | str) -> float:
        key = varset(subset) if isinstance(subset, str) else frozenset(subset)
        if not key:
            return 0.0
        try:
            return self._values[key]
        except KeyError as exc:
            raise KeyError(
                f"no value stored for {format_varset(frozenset(key))}") from exc

    def __contains__(self, subset: Iterable[str] | str) -> bool:
        key = varset(subset) if isinstance(subset, str) else frozenset(subset)
        return not key or key in self._values

    def items(self):
        return self._values.items()

    def is_complete(self) -> bool:
        """True when a value is stored for every subset of the ground set."""
        return all(subset in self._values or not subset
                   for subset in powerset(self.variables))

    # ------------------------------------------------------------ evaluation
    def conditional(self, target: Iterable[str] | str,
                    given: Iterable[str] | str = ()) -> float:
        """``h(target | given) = h(target ∪ given) − h(given)``."""
        target_set = varset(target) if isinstance(target, str) else frozenset(target)
        given_set = varset(given) if isinstance(given, str) else frozenset(given)
        return self[target_set | given_set] - self[given_set]

    def mutual_information(self, left: Iterable[str] | str,
                           right: Iterable[str] | str,
                           given: Iterable[str] | str = ()) -> float:
        """Conditional mutual information ``I(left ; right | given)``."""
        left_set = varset(left) if isinstance(left, str) else frozenset(left)
        right_set = varset(right) if isinstance(right, str) else frozenset(right)
        given_set = varset(given) if isinstance(given, str) else frozenset(given)
        return (self[left_set | given_set] + self[right_set | given_set]
                - self[left_set | right_set | given_set] - self[given_set])

    # ------------------------------------------------------------ properties
    def is_monotone(self, tolerance: float = 1e-9) -> bool:
        """Check monotonicity ``h(X) <= h(X ∪ Y)`` on all stored pairs."""
        subsets = sorted(self._values, key=len)
        for small in subsets:
            for large in subsets:
                if small < large and self._values[small] > self._values[large] + tolerance:
                    return False
        return True

    def is_submodular(self, tolerance: float = 1e-9) -> bool:
        """Check submodularity ``h(X) + h(Y) >= h(X∪Y) + h(X∩Y)``.

        Requires the function to be complete over its ground set.
        """
        if not self.is_complete():
            raise ValueError("submodularity check requires a complete set function")
        universe = sorted(self.variables)
        for subset in powerset(universe):
            remaining = sorted(self.variables - subset)
            for i, first in enumerate(remaining):
                for second in remaining[i + 1:]:
                    left = self[subset | {first}] + self[subset | {second}]
                    right = self[subset | {first, second}] + self[subset]
                    if left + tolerance < right:
                        return False
        return True

    def is_polymatroid(self, tolerance: float = 1e-9) -> bool:
        """Check all basic Shannon inequalities (Eq. (4)-(6))."""
        if not self.is_complete():
            raise ValueError("polymatroid check requires a complete set function")
        if any(value < -tolerance for value in self._values.values()):
            return False
        return self.is_monotone(tolerance) and self.is_submodular(tolerance)

    # ----------------------------------------------------------------- misc
    def scaled(self, factor: float) -> "SetFunction":
        """A new set function with every value multiplied by ``factor``."""
        return SetFunction(self.variables,
                           {subset: value * factor for subset, value in self.items()})

    def __str__(self) -> str:
        parts = [f"h{format_varset(subset)}={value:.4g}"
                 for subset, value in sorted(self.items(), key=lambda kv: (len(kv[0]), sorted(kv[0])))]
        return "SetFunction(" + ", ".join(parts) + ")"


def uniform_step_function(variables: Iterable[str], value: float = 1.0) -> SetFunction:
    """The polymatroid ``h(S) = value`` for every non-empty ``S``.

    This is the counting device used by the paper in Section 7.1 to argue that
    an identity always has at least as many unconditional source terms as
    target terms.
    """
    variables = frozenset(variables)
    values = {subset: (value if subset else 0.0) for subset in powerset(variables)}
    return SetFunction(variables, values)


def modular_function(weights: Mapping[str, float]) -> SetFunction:
    """The modular polymatroid ``h(S) = Σ_{v ∈ S} weights[v]``."""
    variables = frozenset(weights)
    values = {}
    for subset in powerset(variables):
        values[subset] = sum(weights[v] for v in subset)
    return SetFunction(variables, values)
