"""Empirical entropy vectors of concrete data (Section 4.2, Figure 2).

The paper's central argument starts from a *uniform distribution over the
output tuples* of a query; the joint entropy of that distribution, restricted
to each subset of variables, forms an entropic set function.  This module
computes such entropy vectors for arbitrary discrete distributions over the
rows of a relation, in bits or in the paper's ``log_N`` scale.
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.entropy.setfunc import SetFunction
from repro.relational.relation import Relation
from repro.utils.varsets import powerset


def entropy_of_distribution(probabilities: Mapping[tuple, float]) -> float:
    """Shannon entropy (in bits) of a discrete distribution given as a mapping."""
    entropy = 0.0
    for probability in probabilities.values():
        if probability > 0:
            entropy -= probability * math.log2(probability)
    return entropy


def marginal_distribution(probabilities: Mapping[tuple, float],
                          columns: tuple[str, ...],
                          keep: frozenset[str]) -> dict[tuple, float]:
    """Marginalise a distribution over ``columns`` onto the columns in ``keep``."""
    indices = [i for i, column in enumerate(columns) if column in keep]
    marginal: dict[tuple, float] = {}
    for row, probability in probabilities.items():
        key = tuple(row[i] for i in indices)
        marginal[key] = marginal.get(key, 0.0) + probability
    return marginal


def entropy_vector(relation: Relation,
                   probabilities: Mapping[tuple, float] | None = None,
                   log_base: float = 2.0) -> SetFunction:
    """The full entropy vector of a distribution supported on a relation.

    Parameters
    ----------
    relation:
        The support; its columns are the random variables.
    probabilities:
        Optional probability per row; defaults to the uniform distribution
        over the rows (the construction used throughout the paper).
    log_base:
        Base of the logarithm.  Use the input size ``N`` to obtain the
        normalised set function ``h̄ = h / log N`` of Section 4.2.
    """
    if len(relation) == 0:
        raise ValueError("cannot build an entropy vector from an empty relation")
    if probabilities is None:
        probability = 1.0 / len(relation)
        probabilities = {row: probability for row in relation}
    else:
        total = sum(probabilities.values())
        if abs(total - 1.0) > 1e-9:
            raise ValueError(f"probabilities must sum to 1, got {total}")
    scale = math.log2(log_base)
    values: dict[frozenset[str], float] = {}
    for subset in powerset(relation.columns):
        if not subset:
            continue
        marginal = marginal_distribution(probabilities, relation.columns, subset)
        values[subset] = entropy_of_distribution(marginal) / scale
    return SetFunction(frozenset(relation.columns), values)


def normalized_entropy_vector(relation: Relation, reference_size: float,
                              probabilities: Mapping[tuple, float] | None = None) -> SetFunction:
    """The set function ``h̄ = h / log N`` used to compare against statistics.

    With the uniform distribution over the rows of ``relation`` this satisfies
    ``h̄(all columns) = log_N |relation|``, exactly as in Section 4.2.
    """
    if reference_size <= 1:
        raise ValueError("the reference size N must be larger than 1")
    return entropy_vector(relation, probabilities=probabilities, log_base=reference_size)


def uniform_output_entropy(relation: Relation) -> SetFunction:
    """Entropy vector (in bits) of the uniform distribution over ``relation``."""
    return entropy_vector(relation, probabilities=None, log_base=2.0)


def marginal_probabilities(relation: Relation, keep: frozenset[str],
                           probabilities: Mapping[tuple, float] | None = None) -> dict[tuple, float]:
    """Marginal probabilities of the (default: uniform) distribution on a relation.

    Used to regenerate the red annotations of Figure 2: the marginal
    probability of each input tuple under the uniform output distribution.
    """
    if probabilities is None:
        probability = 1.0 / len(relation)
        probabilities = {row: probability for row in relation}
    return marginal_distribution(probabilities, relation.columns, keep)
