"""Entropy, polymatroids and Shannon inequalities (Section 3.3)."""

from repro.entropy.setfunc import SetFunction, modular_function, uniform_step_function
from repro.entropy.elemental import (
    ElementalInequality,
    count_elemental_inequalities,
    elemental_inequalities,
    elemental_monotonicities,
    elemental_submodularities,
    monotonicity,
    submodularity,
)
from repro.entropy.empirical import (
    entropy_of_distribution,
    entropy_vector,
    marginal_probabilities,
    normalized_entropy_vector,
    uniform_output_entropy,
)

__all__ = [
    "SetFunction",
    "uniform_step_function",
    "modular_function",
    "ElementalInequality",
    "monotonicity",
    "submodularity",
    "elemental_monotonicities",
    "elemental_submodularities",
    "elemental_inequalities",
    "count_elemental_inequalities",
    "entropy_of_distribution",
    "entropy_vector",
    "normalized_entropy_vector",
    "uniform_output_entropy",
    "marginal_probabilities",
]
