"""Elemental Shannon inequalities (the generators of the polymatroid cone).

Every Shannon inequality over ``n`` variables is a non-negative combination of
the *elemental* inequalities:

* monotonicity:    ``h(V) − h(V \\ {i}) >= 0`` for every variable ``i``;
* submodularity:   ``h(S ∪ {i}) + h(S ∪ {j}) − h(S ∪ {i,j}) − h(S) >= 0``
  for every pair ``i != j`` and every ``S ⊆ V \\ {i, j}``.

The bound LPs use them as the constraint rows describing the polymatroid cone
Γ_n, and the Shannon-flow dual LP uses them as the columns of the Farkas
certificate whose identity form drives the proof-sequence construction of
Section 7.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Iterator

from repro.lp.model import BoundedCache
from repro.utils.varsets import format_varset, powerset


@dataclass(frozen=True)
class ElementalInequality:
    """One elemental Shannon inequality, stored as ``Σ coeff·h(S) >= 0``.

    ``coefficients`` maps subsets to their coefficient; subsets not present
    have coefficient zero.  The empty set never appears (``h(∅) = 0``).
    """

    kind: str  # "monotonicity" or "submodularity"
    coefficients: tuple[tuple[frozenset[str], int], ...]

    def coefficient_map(self) -> dict[frozenset[str], int]:
        return dict(self.coefficients)

    def evaluate(self, set_function) -> float:
        """The value of the inequality's left-hand side on a set function."""
        return sum(coeff * set_function[subset] for subset, coeff in self.coefficients)

    def residual_terms(self) -> dict[frozenset[str], int]:
        """The *residual* form used in identity manipulations.

        The residual of an inequality ``expr >= 0`` is ``−expr`` (which is
        ``<= 0``); identities in Section 7 are written as
        ``targets = sources + residuals``.
        """
        return {subset: -coeff for subset, coeff in self.coefficients}

    def __str__(self) -> str:
        parts = []
        for subset, coeff in self.coefficients:
            sign = "+" if coeff > 0 else "-"
            magnitude = abs(coeff)
            prefix = "" if magnitude == 1 else f"{magnitude}·"
            parts.append(f"{sign} {prefix}h{format_varset(subset)}")
        rendered = " ".join(parts).lstrip("+ ").strip()
        return f"{rendered} >= 0  [{self.kind}]"


def monotonicity(larger: Iterable[str], smaller: Iterable[str]) -> ElementalInequality:
    """The (generalised) monotonicity ``h(larger) − h(smaller) >= 0``.

    ``smaller`` must be a subset of ``larger``.  With ``smaller = ∅`` this is
    non-negativity ``h(larger) >= 0``.
    """
    larger_set = frozenset(larger)
    smaller_set = frozenset(smaller)
    if not smaller_set <= larger_set:
        raise ValueError("monotonicity requires smaller ⊆ larger")
    coefficients: list[tuple[frozenset[str], int]] = [(larger_set, 1)]
    if smaller_set:
        coefficients.append((smaller_set, -1))
    return ElementalInequality("monotonicity", tuple(coefficients))


def submodularity(first: Iterable[str], second: Iterable[str],
                  context: Iterable[str] = ()) -> ElementalInequality:
    """``h(context ∪ first) + h(context ∪ second) − h(context ∪ first ∪ second) − h(context) >= 0``.

    With singleton ``first``/``second`` and arbitrary context this is an
    elemental submodularity; the general form is accepted because the Reset
    lemma occasionally manufactures non-elemental instances.
    """
    first_set = frozenset(first)
    second_set = frozenset(second)
    context_set = frozenset(context)
    if (first_set & second_set) or (first_set & context_set) or (second_set & context_set):
        raise ValueError("submodularity arguments must be pairwise disjoint")
    coeffs: dict[frozenset[str], int] = {}

    def bump(subset: frozenset[str], amount: int) -> None:
        if not subset:
            return
        coeffs[subset] = coeffs.get(subset, 0) + amount

    bump(context_set | first_set, 1)
    bump(context_set | second_set, 1)
    bump(context_set | first_set | second_set, -1)
    bump(context_set, -1)
    coefficients = tuple((subset, coeff) for subset, coeff in coeffs.items() if coeff)
    return ElementalInequality("submodularity", coefficients)


def elemental_monotonicities(variables: Iterable[str]) -> Iterator[ElementalInequality]:
    """``h(V) >= h(V \\ {i})`` for every variable ``i``."""
    ground = frozenset(variables)
    for variable in sorted(ground):
        yield monotonicity(ground, ground - {variable})


def elemental_submodularities(variables: Iterable[str]) -> Iterator[ElementalInequality]:
    """All elemental submodularities ``h(Si)+h(Sj) >= h(Sij)+h(S)``."""
    ground = frozenset(variables)
    for first, second in combinations(sorted(ground), 2):
        rest = ground - {first, second}
        for context in powerset(rest):
            yield submodularity({first}, {second}, context)


#: The elemental family is O(n²·2ⁿ) to generate and every polymatroid-bound
#: LP over the same ground set needs the identical list, so generation is
#: memoized per variable set.  :class:`ElementalInequality` is frozen, which
#: makes sharing the instances safe; callers get a fresh list shell.
_ELEMENTAL_CACHE = BoundedCache("elemental", 32)


def elemental_inequalities(variables: Iterable[str]) -> list[ElementalInequality]:
    """The full list of elemental Shannon inequalities over ``variables``.

    Memoized per variable set (observable through the ``elemental_builds`` /
    ``elemental_hits`` counters of :func:`repro.lp.model.lp_cache_stats`).
    """
    ground = frozenset(variables)
    cached = _ELEMENTAL_CACHE.lookup(ground)
    if cached is not None:
        return list(cached)
    result = list(elemental_monotonicities(ground))
    result.extend(elemental_submodularities(ground))
    _ELEMENTAL_CACHE.store(ground, tuple(result))
    return result


def count_elemental_inequalities(n: int) -> int:
    """The number of elemental inequalities over ``n`` variables.

    ``n`` monotonicities plus ``C(n,2) · 2^{n-2}`` submodularities — useful to
    sanity check LP sizes before building them.
    """
    if n == 0:
        return 0
    if n == 1:
        return 1
    return n + (n * (n - 1) // 2) * 2 ** (n - 2)
