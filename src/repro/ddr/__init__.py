"""Disjunctive datalog rules and bag selectors (Section 5)."""

from repro.ddr.rule import DisjunctiveDatalogRule, bag_selectors, ddrs_for_query

__all__ = [
    "DisjunctiveDatalogRule",
    "bag_selectors",
    "ddrs_for_query",
]
