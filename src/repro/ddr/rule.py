"""Disjunctive datalog rules and bag selectors (Sections 5.1–5.2).

An adaptive query plan for a CQ ``Q`` writes one disjunctive rule whose head
is ``∨_T ∧_{B ∈ bags(T)} Q_B(B)`` over the free-connex tree decompositions
``T ∈ TD(Q)``.  Distributing ``∨`` over ``∧`` turns this into a conjunction of
*disjunctive datalog rules* (DDRs), one per *bag selector*: a choice of one
bag from every decomposition.  This module provides the DDR value objects, the
bag-selector enumeration and a (brute-force) model checker used by the tests
to confirm that PANDA's outputs really are models.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import product
from typing import Iterable, Mapping, Sequence

from repro.algorithms.bruteforce import full_join_of_query
from repro.decompositions.treedecomp import TreeDecomposition
from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.utils.varsets import format_varset


@dataclass(frozen=True)
class DisjunctiveDatalogRule:
    """A DDR ``∨_{B ∈ targets} Q_B(B) :- body(Q)`` (Eq. (34)).

    ``targets`` is the tuple of head variable sets (one per disjunct); the
    body is the body of the conjunctive query ``query``.
    """

    query: ConjunctiveQuery
    targets: tuple[frozenset[str], ...]

    def __post_init__(self) -> None:
        if not self.targets:
            raise ValueError("a DDR needs at least one head target")
        for target in self.targets:
            if not target <= self.query.variables:
                raise ValueError(
                    f"target {format_varset(target)} uses variables outside the body")

    @property
    def variables(self) -> frozenset[str]:
        return self.query.variables

    def head_description(self) -> str:
        return " ∨ ".join(f"Q{format_varset(target)}" for target in self.targets)

    def __str__(self) -> str:
        body = " ∧ ".join(str(atom) for atom in self.query.atoms)
        return f"{self.head_description()} :- {body}"

    # -------------------------------------------------------- model checking
    def is_model(self, database: Database,
                 head_relations: Mapping[frozenset[str], Relation]) -> bool:
        """Brute-force check that the given head relations form a model.

        For every tuple satisfying the body there must exist at least one
        target ``B`` whose relation contains the tuple's projection onto ``B``.
        Only used by tests and small examples (it materialises the body join).
        """
        body = full_join_of_query(self.query, database)
        for row in body:
            assignment = dict(zip(body.columns, row))
            if not self._tuple_covered(assignment, head_relations):
                return False
        return True

    def uncovered_tuples(self, database: Database,
                         head_relations: Mapping[frozenset[str], Relation]) -> list[dict]:
        """The body tuples not covered by any head relation (empty for a model)."""
        body = full_join_of_query(self.query, database)
        missing = []
        for row in body:
            assignment = dict(zip(body.columns, row))
            if not self._tuple_covered(assignment, head_relations):
                missing.append(assignment)
        return missing

    def _tuple_covered(self, assignment: Mapping[str, object],
                       head_relations: Mapping[frozenset[str], Relation]) -> bool:
        for target in self.targets:
            relation = head_relations.get(target)
            if relation is None:
                continue
            projected = tuple(assignment[column] for column in relation.columns)
            if projected in relation:
                return True
        return False

    def minimal_model_size(self, database: Database) -> int:
        """``min over models of max_B |Q_B|`` computed by direct construction.

        The greedy construction from Section 5.2's proof — insert each body
        tuple into the targets only when no target already covers it — yields
        a model whose max size is within a factor ``|targets|`` of optimal and
        is what the worst-case bound (Theorem 5.1) is compared against in the
        experiments.
        """
        body = full_join_of_query(self.query, database)
        heads: dict[frozenset[str], set[tuple]] = {target: set() for target in self.targets}
        columns = {target: sorted(target) for target in self.targets}
        for row in body:
            assignment = dict(zip(body.columns, row))
            projections = {
                target: tuple(assignment[c] for c in columns[target])
                for target in self.targets
            }
            if any(projections[target] in heads[target] for target in self.targets):
                continue
            for target in self.targets:
                heads[target].add(projections[target])
        if not heads:
            return 0
        return max(len(rows) for rows in heads.values())


def bag_selectors(decompositions: Sequence[TreeDecomposition]) -> list[tuple[frozenset[str], ...]]:
    """All bag selectors ``BS(Q)``: one bag from each decomposition (Eq. (32)).

    Selectors that contain two comparable bags keep only the smaller one
    (choosing the larger bag can never help the inner max-min LP), and
    duplicate selectors are collapsed.
    """
    if not decompositions:
        return []
    selectors: list[tuple[frozenset[str], ...]] = []
    seen: set[frozenset[frozenset[str]]] = set()
    for choice in product(*(td.bags for td in decompositions)):
        reduced = _drop_superset_bags(choice)
        key = frozenset(reduced)
        if key in seen:
            continue
        seen.add(key)
        selectors.append(reduced)
    return selectors


def _drop_superset_bags(choice: Iterable[frozenset[str]]) -> tuple[frozenset[str], ...]:
    bags = list(dict.fromkeys(choice))
    kept = [bag for bag in bags if not any(other < bag for other in bags)]
    return tuple(sorted(kept, key=lambda bag: (len(bag), sorted(bag))))


def ddrs_for_query(query: ConjunctiveQuery,
                   decompositions: Sequence[TreeDecomposition]) -> list[DisjunctiveDatalogRule]:
    """The DDRs of the adaptive plan of ``query`` over the given decompositions."""
    return [DisjunctiveDatalogRule(query, selector)
            for selector in bag_selectors(decompositions)]
