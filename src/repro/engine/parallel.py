"""Partition-parallel plan execution: hash-shard one atom, run the plan per shard.

The classical data-partitioning argument (and the reason a single relation
can be scanned by many workers at once): if a relation ``R`` appears in
exactly one atom of ``Q``, then for any partition ``R = R_1 ∪ ... ∪ R_k``
into disjoint shards,

    Q(D) = Q(D[R := R_1]) ∪ ... ∪ Q(D[R := R_k])

because every tuple of the full join uses exactly one tuple of ``R`` — and
projections and Boolean quantification commute with the union.  (A relation
appearing in *several* atoms — a self-join — breaks the identity: an answer
may pair tuples from different shards, so self-joined relations are never
chosen for partitioning.)

The shard assignment uses :func:`~repro.relational.storage.stable_row_hash`,
so it is identical in every worker process, and the per-shard work is tracked
by per-worker :class:`~repro.relational.operators.WorkCounter` objects merged
at join time (the counters are also individually thread-safe, so sharing one
would merely serialize updates, not lose them).

Three parallel executors are provided: ``"thread"`` shares the parent's
relations (copy-on-write facades, so cached indexes of the *unpartitioned*
relations stay warm across shards), ``"process"`` ships picklable row
payloads to forked workers and rebuilds the plan from its structural
description there, and ``"cluster"`` sends the same payloads through the
fault-tolerant coordinator of :mod:`repro.engine.cluster` (retries,
straggler re-dispatch, worker respawn, serial degradation).
"""

from __future__ import annotations

import threading
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Sequence

from repro.analysis.plan_verifier import (
    assert_valid,
    verify_dispatch,
    verify_shard_payload,
)
from repro.query.cq import Atom, ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import WorkCounter
from repro.relational.relation import Relation
from repro.telemetry.trace import SpanContext, get_tracer
from repro.utils.cancellation import CancellationToken

EXECUTORS = ("thread", "process", "cluster", "serial")


class PersistentProcessPool:
    """A process pool that survives worker death *between* queries.

    ``ProcessPoolExecutor`` is permanently broken once any worker dies: every
    later submit raises ``BrokenProcessPool``, so an engine holding one
    failed query would fail all of them.  This wrapper owns the executor,
    detects brokenness on the dispatch path, discards the carcass, and
    lazily rebuilds a fresh pool on the next dispatch — the query that hit
    the dead worker still surfaces a structured error (the rows genuinely
    were not computed), but the *next* query finds a healthy pool with no
    manual reset.  Rebuilds after brokenness are reported to ``stats`` as
    ``workers_respawned``.
    """

    def __init__(self, stats=None) -> None:
        self._stats = stats
        self._executor: ProcessPoolExecutor | None = None
        self._workers = 0
        self._broken = False
        self._lock = threading.Lock()

    def map(self, fn, payloads: Sequence, workers: int) -> list:
        executor = self._ensure(workers)
        try:
            return list(executor.map(fn, payloads))
        except BrokenProcessPool:
            self._discard()
            raise

    def _ensure(self, workers: int) -> ProcessPoolExecutor:
        with self._lock:
            if self._executor is not None and workers > self._workers:
                # Too small for this query: replace (an executor cannot grow).
                self._executor.shutdown(wait=True, cancel_futures=True)
                self._executor = None
            if self._executor is None:
                healing = self._broken
                self._executor = ProcessPoolExecutor(
                    max_workers=workers, mp_context=_process_context())
                self._workers = workers
                self._broken = False
                if healing and self._stats is not None:
                    self._stats.bump(workers_respawned=workers)
            return self._executor

    def _discard(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None
            self._workers = 0
            self._broken = True

    def shutdown(self) -> None:
        with self._lock:
            if self._executor is not None:
                self._executor.shutdown(wait=True, cancel_futures=True)
            self._executor = None
            self._workers = 0


def choose_partition_atom(query: ConjunctiveQuery,
                          database: Database) -> Atom | None:
    """The heaviest atom whose relation is safe to partition.

    Safe means the relation symbol occurs in exactly one atom (see the module
    docstring for why self-joins are excluded); heaviest means the largest
    stored relation, which maximises the work actually spread across workers.
    Returns ``None`` when no atom qualifies — the engine then falls back to
    the serial path.
    """
    candidates = [atom for atom in query.atoms
                  if len(query.atoms_for_relation(atom.relation)) == 1
                  and atom.relation in database]
    if not candidates:
        return None
    return max(candidates, key=lambda atom: len(database[atom.relation]))


def shard_databases(database: Database, atom: Atom, count: int) -> list[Database]:
    """``count`` databases that differ only in the shard of ``atom``'s relation.

    Every other relation is shared by backend (copy-on-write facades), so
    index caches built by one shard's worker serve the others — sharding
    multiplies only the partitioned relation, not the whole database.
    """
    shards = database[atom.relation].hash_shards(count)
    shard_dbs = []
    for shard in shards:
        shard_db = Database(backend=database.backend_kind)
        for name in database.relation_names():
            if name == atom.relation:
                shard_db.add(shard, name=name)
            else:
                shard_db.add(database[name].copy(), name=name)
        shard_dbs.append(shard_db)
    return shard_dbs


def merge_shard_results(query: ConjunctiveQuery, shard_results: Sequence,
                        backend_kind: str | None):
    """Union the shard answers and merge the per-worker counters.

    The shard answers share one deterministic schema (each shard ran the same
    plan), so the union is a plain row-set union — which is exactly the
    serial answer by the partitioning identity.
    """
    from repro.optimizer.planner import ExecutionResult

    columns = shard_results[0].answer.columns
    rows: set[tuple] = set()
    for result in shard_results:
        rows.update(result.answer.rows)
    answer = Relation(query.name, columns, rows, backend=backend_kind)
    counter = WorkCounter()
    tracer = get_tracer()
    for result in shard_results:
        counter.merge(result.counter)
        # Splice span records shipped home by process/cluster workers back
        # into the coordinator's trace (empty for in-process shards).
        shipped = getattr(result, "spans", None)
        if shipped:
            tracer.adopt(shipped)
    return ExecutionResult(answer=answer, counter=counter,
                           details=[result.details for result in shard_results])


# ---------------------------------------------------------------------------
# workers
# ---------------------------------------------------------------------------

def _database_payload(database: Database) -> dict:
    """A picklable description of a database, no backend objects.

    Kernel-capable relations ship as ``("encoded", ...)`` — per-column decode
    lists plus compact ``int64`` code arrays — instead of Python row tuples;
    everything else falls back to ``("rows", ...)``.  Workers rebuild
    identical relations either way because dictionary codes are a
    deterministic function of the column's value set.
    """
    payload = {}
    for name in database.relation_names():
        relation = database[name]
        encoded = relation.encoded_payload()
        if encoded is not None:
            payload[name] = ("encoded", relation.columns, encoded,
                             relation.backend_kind)
        else:
            payload[name] = ("rows", relation.columns, list(relation.rows),
                             relation.backend_kind)
    return payload


def _shard_payload(plan, shard_db: Database,
                   cancellation: CancellationToken | None = None,
                   trace_prefix: str = "") -> dict:
    """Everything a worker process needs to re-run ``plan`` on ``shard_db``.

    Cancellation crosses the process boundary as a wall-clock ``deadline``
    (every worker on the box reads the same clock), so a deadline-exceeded
    sharded run trips cooperatively inside each worker rather than waiting
    for the pool to finish.

    ``trace_prefix`` namespaces the span ids the worker will allocate
    (``shard-3.s1``, …); the ambient span context ships with the payload so
    the worker's spans reattach under the coordinator's trace.
    """
    return {
        "kind": plan.kind,
        "query": plan.query,
        "statistics": plan.statistics,
        "best_bags": (tuple(plan.decomposition.bags)
                      if plan.decomposition is not None else None),
        "decomposition_bags": tuple(tuple(td.bags)
                                    for td in plan.decompositions),
        "relations": _database_payload(shard_db),
        "deadline": cancellation.deadline if cancellation is not None else None,
        "trace": get_tracer().export_context(prefix=trace_prefix),
    }


def _execute_shard(payload: dict):
    """Process-pool worker: rebuild the database and plan, run, return the result.

    Runs in a separate interpreter, so everything crossing the boundary is
    plain picklable data; the returned ``ExecutionResult`` keeps the worker's
    counter (thread-safe counters re-grow their lock on unpickling) and drops
    the execution details, which may hold arbitrarily large reports.
    """
    from repro.decompositions.treedecomp import TreeDecomposition
    from repro.optimizer.planner import realize_plan
    from repro.relational.storage import ColumnarBackend

    relations = {}
    for name, (tag, columns, data, backend) in payload["relations"].items():
        if tag == "encoded":
            decodes, code_arrays, length = data
            relations[name] = Relation._from_backend(
                name, columns,
                ColumnarBackend.from_encoded(decodes, code_arrays, length))
        else:
            relations[name] = Relation(name, columns, data, backend=backend)
    database = Database(relations)
    decomposition = (TreeDecomposition(payload["best_bags"])
                     if payload["best_bags"] is not None else None)
    decompositions = tuple(TreeDecomposition(bags)
                           for bags in payload["decomposition_bags"])
    plan = realize_plan(payload["kind"], payload["query"], payload["statistics"],
                        reason="shard worker", decomposition=decomposition,
                        decompositions=decompositions, validate=False)
    counter = None
    if payload.get("deadline") is not None:
        token = CancellationToken(deadline=payload["deadline"])
        counter = WorkCounter(cancellation=token)
    ctx = SpanContext.from_dict(payload.get("trace"))
    tracer = get_tracer()
    if ctx is None:
        result = plan.execute(database, counter=counter)
        result.details = None
        return result
    # A forked worker inherits the parent's tracer state; the shipped
    # prefix namespaces every id allocated here, so reassembled spans can
    # never collide with the coordinator's (or a retry twin's).
    with tracer.span("exec.shard", {"prefix": ctx.prefix},
                     parent=ctx) as span:
        result = plan.execute(database, counter=counter)
        span.set("rows_out", len(result.answer))
    result.details = None
    # Ship this process's finished spans home with the result; the
    # coordinator splices them back via ``Tracer.adopt``.
    result.spans = tracer.drain_remote(ctx.trace_id, ctx.prefix)
    return result


def run_partitioned(plan, database: Database, shards: int,
                    executor: str = "thread",
                    cancellation: CancellationToken | None = None,
                    pool: PersistentProcessPool | None = None,
                    cluster=None):
    """Execute ``plan`` over ``shards`` hash-partitions of its heaviest atom.

    Returns the merged :class:`~repro.optimizer.planner.ExecutionResult`
    (identical to the serial answer), or ``None`` when the query has no
    partitionable atom, in which case the caller should run serially.

    ``cancellation`` optionally threads a cooperative token through every
    shard: thread (and serial) workers share the token object directly via
    per-shard :class:`WorkCounter`\\ s, process workers rebuild an equivalent
    token from the shipped wall-clock deadline.  The first shard to trip
    raises :class:`~repro.utils.cancellation.QueryCancelledError`, which
    propagates out of the pool; the remaining shards observe the same token
    (or deadline) and stop cooperatively as well.

    ``pool`` optionally reuses a :class:`PersistentProcessPool` for the
    ``"process"`` executor (an engine passes its own so worker forks amortize
    across queries and brokenness heals); ``cluster`` likewise reuses a
    :class:`~repro.engine.cluster.ClusterCoordinator` for the ``"cluster"``
    executor — when omitted, a one-shot coordinator is built and torn down.
    """
    if shards < 2:
        raise ValueError("partition-parallel execution needs at least 2 shards")
    if executor not in EXECUTORS:
        raise ValueError(f"unknown executor {executor!r}; pick one of {EXECUTORS}")
    atom = choose_partition_atom(plan.query, database)
    if atom is None:
        return None
    # Statically verify the plan once before its first dispatch (memoized on
    # the plan object): shard workers rebuild it from bare bags with
    # ``validate=False`` and would execute a corrupted structure silently.
    verify_dispatch(plan)
    if cancellation is not None:
        cancellation.check()

    def shard_counter() -> WorkCounter | None:
        if cancellation is None:
            return None
        return WorkCounter(cancellation=cancellation)

    shard_dbs = shard_databases(database, atom, shards)
    if executor == "serial":
        # The sharded dataflow on one core: useful for debugging and for
        # exact parity tests that must not depend on scheduling.
        shard_results = [plan.execute(shard_db, counter=shard_counter())
                         for shard_db in shard_dbs]
    elif executor == "process":
        payloads = [_shard_payload(plan, shard_db, cancellation,
                                   trace_prefix=f"shard-{index}")
                    for index, shard_db in enumerate(shard_dbs)]
        # Payloads cross the process boundary: reject unpicklable callables
        # here, by name, instead of dying inside the pool as an opaque
        # BrokenProcessPool (one payload suffices — they share structure).
        assert_valid("process shard payload", verify_shard_payload(payloads[0]))
        if pool is not None:
            shard_results = pool.map(_execute_shard, payloads, shards)
        else:
            with ProcessPoolExecutor(max_workers=shards,
                                     mp_context=_process_context()) as ephemeral:
                shard_results = list(ephemeral.map(_execute_shard, payloads))
    elif executor == "cluster":
        from repro.engine.cluster import ClusterCoordinator, run_shards

        owned = cluster is None
        coordinator = ClusterCoordinator() if owned else cluster
        try:
            shard_results = run_shards(plan, shard_dbs, coordinator,
                                       cancellation)
        finally:
            if owned:
                coordinator.shutdown()
    else:
        # Contextvars do not cross ThreadPoolExecutor workers on their own:
        # capture the ambient span context here and re-attach it inside each
        # worker thread, so shard spans nest under the coordinator's trace.
        parent_ctx = get_tracer().current_context()

        def run_shard(shard_db: Database):
            if parent_ctx is None:
                return plan.execute(shard_db, counter=shard_counter())
            tracer = get_tracer()
            with tracer.attach(parent_ctx):
                with tracer.span("exec.shard",
                                 {"executor": "thread"}) as span:
                    result = plan.execute(shard_db, counter=shard_counter())
                    span.set("rows_out", len(result.answer))
            return result

        with ThreadPoolExecutor(max_workers=shards) as pool:
            shard_results = list(pool.map(run_shard, shard_dbs))
    return merge_shard_results(plan.query, shard_results, database.backend_kind)


def _process_context():
    """Fork when the platform offers it (cheap, inherits the code); else default."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()
