"""The query-engine service layer: one facade that amortizes everything.

The paper's planner is a meta-algorithm that picks Yannakakis / static-TD /
adaptive-PANDA per query; PRs 1–3 gave the storage and LP layers caches.  The
:class:`Engine` composes them into a serving loop:

* a **plan cache** (:mod:`repro.engine.plan_cache`) keyed by the canonical —
  variable-renaming-invariant — query fingerprint × the statistics
  fingerprint, with LRU eviction and build/hit counters, so repeated (or
  alpha-renamed) queries skip width computation, LP solving and TD
  enumeration entirely;
* **measured-statistics memoization** validated by the database's revision
  counter and backend identities, so ``prepare(query)`` with no explicit
  statistics re-measures only after the data actually changed;
* **prepared queries** (:meth:`Engine.prepare`) whose ``execute`` /
  ``execute_many`` re-validate against the database revision and re-resolve
  transparently on staleness;
* **partition-parallel execution** (:mod:`repro.engine.parallel`): the
  heaviest non-self-joined atom is hash-partitioned across N workers, the
  cached plan runs per shard, and the shard answers union into exactly the
  serial result;
* :class:`EngineStats`: plans built/reused, shards run, wall time, and the
  aggregated storage + LP cache deltas observed while serving.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.plan_verifier import assert_valid, verify_recipe
from repro.engine.fingerprint import (
    plan_fingerprint,
    query_fingerprint,
    statistics_fingerprint,
)
from repro.engine.parallel import PersistentProcessPool, run_partitioned
from repro.engine.plan_cache import LruDict, PlanCache, PlanRecipe
from repro.decompositions.treedecomp import TreeDecomposition
from repro.lp.model import lp_cache_delta, lp_cache_stats
from repro.optimizer.cost import estimate_costs
from repro.optimizer.planner import (
    ExecutionResult,
    QueryPlan,
    plan as choose_plan,
    realize_plan,
)
from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.kernels import kernel_stats, kernel_stats_delta
from repro.relational.operators import WorkCounter
from repro.stats.collect import collect_statistics
from repro.stats.constraints import ConstraintSet
from repro.telemetry.metrics import bump_counters
from repro.telemetry.profiler import CardinalityProfile, plan_nodes
from repro.telemetry.trace import get_tracer
from repro.utils.cancellation import CancellationToken, QueryCancelledError


@dataclass
class EngineStats:
    """Serving metrics: planning reuse, execution shape, cache activity.

    Updates are atomic: every counter movement goes through :meth:`bump` /
    :meth:`absorb_events`, which apply their whole delta under one internal
    lock.  Two sessions finishing simultaneously — the multi-tenant service
    completes queries of one engine on several worker threads — therefore
    never lose increments to interleaved read-modify-write, and
    :meth:`as_dict` returns an internally consistent snapshot.  (The LP and
    kernel *event deltas* are measured against process-global counters, so
    under concurrent sessions an execution's bucket may include a neighbour's
    movements — the totals remain exact, the per-session attribution is
    approximate.)
    """

    plans_built: int = 0
    plans_reused: int = 0
    #: Recipes statically verified (running intersection, coverage,
    #: free-variable safety) before entering the plan cache; every built
    #: plan passes through the verifier, so this tracks ``plans_built``
    #: unless verification ever rejects a decision.
    plans_verified: int = 0
    statistics_measured: int = 0
    statistics_reused: int = 0
    executions: int = 0
    serial_executions: int = 0
    parallel_executions: int = 0
    #: Executions that raised ``QueryCancelledError`` (deadline or explicit
    #: cancel) before producing an answer; not counted in ``executions``.
    cancelled_executions: int = 0
    shards_run: int = 0
    invalidations: int = 0
    #: Shard tasks re-dispatched after a failure (worker error, worker death
    #: or a dropped ack) by the fault-tolerant cluster executor.
    tasks_retried: int = 0
    #: Straggler shards speculatively re-issued to an idle worker (first
    #: result wins; duplicates are discarded by shard id).
    stragglers_redispatched: int = 0
    #: Worker processes replaced after death or circuit-breaker quarantine
    #: (cluster executor), plus pool rebuilds after ``BrokenProcessPool``
    #: (process executor).
    workers_respawned: int = 0
    #: Queries that fell back to in-process serial execution of remaining
    #: shards after retry/pool exhaustion — degraded, never failed.
    degraded_executions: int = 0
    wall_time_seconds: float = 0.0
    #: Aggregated storage-backend index build/hit deltas observed during
    #: executions (the engine database's ``cache_stats`` movements).
    storage_cache_events: dict[str, int] = field(default_factory=dict)
    #: Aggregated LP-substrate cache deltas (region/flow/solution reuse)
    #: observed during planning and execution.
    lp_cache_events: dict[str, int] = field(default_factory=dict)
    #: Aggregated vectorized-kernel usage/fallback deltas (kernel joins and
    #: marginals taken, reference-path fallbacks) observed during executions.
    kernel_cache_events: dict[str, int] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def bump(self, **deltas: int | float) -> None:
        """Apply counter increments as one atomic batch."""
        with self._lock:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)
        # Mirror the movement into the process-wide metrics registry (after
        # releasing the lock — the registry takes its own).  The event
        # buckets absorbed via ``absorb_events`` are *not* forwarded: the
        # storage/LP/kernel layers already publish those process-wide
        # through their registered pull sources.
        bump_counters({f"engine.stats.{name}": delta
                       for name, delta in deltas.items()})

    def absorb_events(self, target: str, delta: dict[str, int]) -> None:
        with self._lock:
            bucket = getattr(self, target)
            for event, count in delta.items():
                if count:
                    bucket[event] = bucket.get(event, 0) + count

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "plans_built": self.plans_built,
                "plans_reused": self.plans_reused,
                "plans_verified": self.plans_verified,
                "statistics_measured": self.statistics_measured,
                "statistics_reused": self.statistics_reused,
                "executions": self.executions,
                "serial_executions": self.serial_executions,
                "parallel_executions": self.parallel_executions,
                "cancelled_executions": self.cancelled_executions,
                "shards_run": self.shards_run,
                "invalidations": self.invalidations,
                "tasks_retried": self.tasks_retried,
                "stragglers_redispatched": self.stragglers_redispatched,
                "workers_respawned": self.workers_respawned,
                "degraded_executions": self.degraded_executions,
                "wall_time_seconds": self.wall_time_seconds,
                "storage_cache_events": dict(self.storage_cache_events),
                "lp_cache_events": dict(self.lp_cache_events),
                "kernel_cache_events": dict(self.kernel_cache_events),
            }

    def describe(self) -> str:
        lines = [f"engine: {self.executions} executions "
                 f"({self.parallel_executions} parallel, {self.shards_run} shards, "
                 f"{self.cancelled_executions} cancelled) "
                 f"in {self.wall_time_seconds:.4f}s",
                 f"  plans: {self.plans_built} built, {self.plans_reused} reused, "
                 f"{self.plans_verified} verified; "
                 f"statistics: {self.statistics_measured} measured, "
                 f"{self.statistics_reused} reused; "
                 f"{self.invalidations} invalidations"]
        if (self.tasks_retried or self.stragglers_redispatched
                or self.workers_respawned or self.degraded_executions):
            lines.append(
                f"  faults: {self.tasks_retried} tasks retried, "
                f"{self.stragglers_redispatched} stragglers re-dispatched, "
                f"{self.workers_respawned} workers respawned, "
                f"{self.degraded_executions} degraded executions")
        for label, bucket in (("storage caches", self.storage_cache_events),
                              ("lp caches", self.lp_cache_events),
                              ("kernels", self.kernel_cache_events)):
            if bucket:
                events = ", ".join(f"{key}={value}"
                                   for key, value in sorted(bucket.items()))
                lines.append(f"  {label}: {events}")
        return "\n".join(lines)


@dataclass
class PreparedQuery:
    """A plan bound to an engine, re-validated against the database revision.

    ``execute()`` runs the cached plan (sharded when the prepared shard count
    or the call-site override asks for it); ``execute_many(batch)`` runs the
    same plan once per database in ``batch`` — the serving pattern for a
    stream of snapshots or tenant databases that share one schema — or, with
    no batch, once per engine database per repetition.
    """

    engine: "Engine"
    query: ConjunctiveQuery
    statistics: ConstraintSet
    plan: QueryPlan
    shards: int
    _explicit_statistics: bool
    _revision: int
    _snapshot: tuple

    def execute(self, shards: int | None = None,
                cancellation: CancellationToken | None = None) -> ExecutionResult:
        self._refresh()
        return self.engine._execute_plan(
            self.plan, self.shards if shards is None else shards,
            cancellation=cancellation)

    def execute_many(self, batch: Iterable[Database] | None = None,
                     repeat: int = 1,
                     shards: int | None = None) -> list[ExecutionResult]:
        """Run the prepared plan over a batch of databases (or ``repeat`` times).

        All runs reuse this one plan — no re-planning per database — which is
        sound because the plan only depends on the query and the statistics;
        pass databases that satisfy the prepared statistics for the cost
        guarantees to carry over.
        """
        shard_count = self.shards if shards is None else shards
        if batch is None:
            return [self.execute(shards=shard_count) for _ in range(repeat)]
        self._refresh()
        return [self.engine._execute_plan(self.plan, shard_count,
                                          database=database)
                for database in batch]

    def _refresh(self) -> None:
        """Re-resolve statistics and plan if the engine database moved on."""
        engine = self.engine
        if (engine.database.revision == self._revision
                and engine.database.backend_snapshot() == self._snapshot):
            return
        engine.stats.bump(invalidations=1)
        if not self._explicit_statistics:
            self.statistics = engine.measured_statistics(self.query)
        self.plan = engine._resolve_plan(self.query, self.statistics)
        self._revision = engine.database.revision
        self._snapshot = engine.database.backend_snapshot()


class Engine:
    """The serving facade: a database plus every cross-request cache.

    Parameters
    ----------
    database:
        The database the engine owns and serves queries against.
    plan_cache_size:
        LRU capacity of the plan cache (entries, not bytes).
    max_variables, adaptive_threshold:
        Planner configuration, part of the plan-cache key.
    shards:
        Default shard count for executions; ``1`` means serial.  Shard counts
        can be overridden per ``prepare``/``execute`` call.
    executor:
        ``"thread"`` (default; shares warm indexes of unpartitioned
        relations), ``"process"`` (forked workers, picklable row payloads),
        ``"cluster"`` (the fault-tolerant coordinator of
        :mod:`repro.engine.cluster`: retries, straggler re-dispatch, worker
        respawn, serial degradation) or ``"serial"`` (the sharded dataflow
        on one core, for debugging).
    cluster_config:
        Optional :class:`~repro.engine.cluster.ClusterConfig` for the
        ``"cluster"`` executor; ``None`` uses the defaults.
    measure_degrees:
        Whether auto-measured statistics include per-split max degrees
        (tighter plans, costlier measurement) or only cardinalities.
    """

    def __init__(self, database: Database, *,
                 plan_cache_size: int = 128,
                 max_variables: int = 9,
                 adaptive_threshold: float = 1e-6,
                 shards: int = 1,
                 executor: str = "thread",
                 cluster_config=None,
                 measure_degrees: bool = False) -> None:
        self.database = database
        self.max_variables = max_variables
        self.adaptive_threshold = adaptive_threshold
        self.shards = shards
        self.executor = executor
        self.measure_degrees = measure_degrees
        self.plan_cache = PlanCache(plan_cache_size)
        self.stats = EngineStats()
        # LRU-bounded like the plan cache: an unbounded memo would pin one
        # backend snapshot per query shape ever seen — including superseded
        # backends and their cached indexes — for the engine's lifetime.
        self._stats_memo: LruDict = LruDict(plan_cache_size)
        # Worker infrastructure is built lazily: a persistent process pool
        # (heals after BrokenProcessPool) and a cluster coordinator, both
        # reporting fault counters into this engine's stats.
        self._cluster_config = cluster_config
        self._cluster = None
        self._process_pool: PersistentProcessPool | None = None

    # ------------------------------------------------------------ statistics
    def measured_statistics(self, query: ConjunctiveQuery) -> ConstraintSet:
        """Statistics measured on the engine's database, memoized per query.

        Entries are validated by the database revision *and* the stored
        relations' backend identities, so both :meth:`Database.add` and
        copy-on-write row mutation invalidate them.
        """
        memo = self._stats_memo.get(query)
        snapshot = self.database.backend_snapshot()
        if memo is not None:
            revision, seen_snapshot, statistics = memo
            if revision == self.database.revision and seen_snapshot == snapshot:
                self.stats.bump(statistics_reused=1)
                return statistics
        with get_tracer().span("engine.statistics",
                               {"query": query.name,
                                "degrees": self.measure_degrees}):
            statistics = collect_statistics(
                self.database, query, include_degrees=self.measure_degrees)
        self._stats_memo.put(query, (self.database.revision, snapshot, statistics))
        self.stats.bump(statistics_measured=1)
        return statistics

    # -------------------------------------------------------------- planning
    def prepare(self, query: ConjunctiveQuery,
                statistics: ConstraintSet | None = None,
                shards: int | None = None) -> PreparedQuery:
        """Resolve (or fetch) the plan for ``query`` and bind it for serving."""
        explicit = statistics is not None
        if statistics is None:
            statistics = self.measured_statistics(query)
        chosen = self._resolve_plan(query, statistics)
        return PreparedQuery(engine=self, query=query, statistics=statistics,
                             plan=chosen,
                             shards=self.shards if shards is None else shards,
                             _explicit_statistics=explicit,
                             _revision=self.database.revision,
                             _snapshot=self.database.backend_snapshot())

    def execute(self, query: ConjunctiveQuery,
                statistics: ConstraintSet | None = None,
                shards: int | None = None,
                cancellation: CancellationToken | None = None) -> ExecutionResult:
        """Plan-cache-aware one-shot execution against the engine database.

        ``cancellation`` threads a cooperative token (deadline or explicit
        cancel) into the plan's inner loops; a tripped token raises
        :class:`~repro.utils.cancellation.QueryCancelledError` and the
        execution is accounted under ``stats.cancelled_executions``.
        """
        return self.prepare(query, statistics=statistics,
                            shards=shards).execute(cancellation=cancellation)

    def execute_many(self, queries: Sequence[ConjunctiveQuery],
                     shards: int | None = None) -> list[ExecutionResult]:
        """Serve a workload of queries; repeated shapes hit the plan cache."""
        return [self.execute(query, shards=shards) for query in queries]

    def explain(self, query: ConjunctiveQuery,
                statistics: ConstraintSet | None = None,
                shards: int | None = None,
                analyze: bool = False) -> dict:
        """The chosen plan as a structured document; ``analyze=True`` also
        executes it and reports what actually happened.

        The analyze section carries the run's wall time, output row count,
        work-counter totals, the cache events the run moved, the trace
        (every span with offsets and durations), and the plan's
        ``estimated_vs_observed`` cardinality report — the polymatroid
        prediction next to the observed size for every plan node.
        """
        prepared = self.prepare(query, statistics=statistics, shards=shards)
        plan = prepared.plan
        doc = {
            "query": str(query),
            "kind": plan.kind.value,
            "reason": plan.reason,
            "fingerprint": plan.fingerprint,
            "shards": prepared.shards,
            "explain": plan.explain(),
        }
        if not analyze:
            return doc
        tracer = get_tracer()
        storage_before = self.database.cache_stats()
        lp_before = lp_cache_stats()
        kernel_before = kernel_stats()
        started = time.perf_counter()
        with tracer.span("engine.explain_analyze",
                         {"query": query.name}) as span:
            result = prepared.execute()
            ctx = span.context()
        trace_id = ctx.trace_id if ctx is not None else ""
        counter = result.counter
        doc["analyze"] = {
            "trace_id": trace_id,
            "row_count": len(result.answer),
            "wall_seconds": time.perf_counter() - started,
            "work": {
                "intermediate_tuples": counter.intermediate_tuples,
                "max_intermediate": counter.max_intermediate,
                "materializations": counter.materializations,
            },
            "cache_events": {
                "storage": _dict_delta(self.database.cache_stats(),
                                       storage_before),
                "lp": lp_cache_delta(lp_before),
                "kernels": kernel_stats_delta(kernel_before),
            },
            "trace": tracer.export_trace(trace_id) if trace_id else None,
            "estimated_vs_observed": (plan.profile.estimated_vs_observed()
                                      if plan.profile is not None else []),
        }
        return doc

    def cache_stats(self) -> dict[str, int]:
        """Plan-cache counters merged with the database's index counters."""
        totals = self.plan_cache.cache_stats()
        for event, count in self.database.cache_stats().items():
            totals[event] = totals.get(event, 0) + count
        return totals

    def invalidate(self) -> None:
        """Drop every cached plan and memoized statistic."""
        self.plan_cache.clear()
        self._stats_memo.clear()
        self.stats.bump(invalidations=1)

    def cluster_coordinator(self):
        """This engine's (lazily built) cluster coordinator.

        Exposed so operators and the chaos harness can install a fault plan,
        read lifetime fault counters or shut the pool down explicitly.
        """
        if self._cluster is None:
            from repro.engine.cluster import ClusterCoordinator

            self._cluster = ClusterCoordinator(self._cluster_config,
                                               stats=self.stats)
        return self._cluster

    def process_pool(self) -> PersistentProcessPool:
        """This engine's (lazily built) persistent process pool."""
        if self._process_pool is None:
            self._process_pool = PersistentProcessPool(stats=self.stats)
        return self._process_pool

    def close(self) -> None:
        """Release worker processes (idempotent; the engine stays usable —
        the pools rebuild lazily on the next parallel execution)."""
        if self._cluster is not None:
            self._cluster.shutdown()
        if self._process_pool is not None:
            self._process_pool.shutdown()

    # -------------------------------------------------------------- internals
    def _plan_key(self, query_digest: str, statistics_digest: str) -> tuple:
        return (query_digest, statistics_digest,
                self.max_variables, self.adaptive_threshold)

    def _resolve_plan(self, query: ConjunctiveQuery,
                      statistics: ConstraintSet) -> QueryPlan:
        tracer = get_tracer()
        query_digest, renaming = query_fingerprint(query)
        statistics_digest = statistics_fingerprint(statistics, renaming)
        key = self._plan_key(query_digest, statistics_digest)
        with tracer.span("engine.plan_cache",
                         {"query": query.name}) as cache_span:
            recipe = self.plan_cache.get(key)
            rebuilt = (self._plan_from_recipe(recipe, query, statistics,
                                              renaming)
                       if recipe is not None else None)
            cache_span.set("hit", rebuilt is not None)
        if rebuilt is not None:
            rebuilt.profile = recipe.profile
            rebuilt.renaming = renaming
            if recipe.profile is not None:
                # A renamed twin may execute through this entry: make sure
                # every node the rebuilt plan prices exists in the shared
                # profile (idempotent for already-seeded nodes).
                recipe.profile.seed(plan_nodes(rebuilt), statistics, renaming)
            self.stats.bump(plans_reused=1)
            return rebuilt
        before_lp = lp_cache_stats()
        with tracer.span("engine.lp_solve", {"query": query.name}) as lp_span:
            estimate = estimate_costs(query, statistics,
                                      max_variables=self.max_variables)
            chosen = choose_plan(query, statistics,
                                 max_variables=self.max_variables,
                                 adaptive_threshold=self.adaptive_threshold,
                                 estimate=estimate)
            lp_span.set("kind", chosen.kind.value)
        chosen.fingerprint = plan_fingerprint(query_digest, statistics_digest)
        self.stats.absorb_events("lp_cache_events", lp_cache_delta(before_lp))
        profile = CardinalityProfile(chosen.fingerprint, chosen.kind.value)
        profile.seed(plan_nodes(chosen), statistics, renaming)
        chosen.profile = profile
        chosen.renaming = renaming
        fresh_recipe = self._recipe_from_plan(chosen, renaming)
        # Statically verify the decision before it becomes a cache entry:
        # a malformed recipe cached here would be rebuilt with
        # ``validate=False`` on every later hit and shipped to shard
        # workers as bare bags, returning wrong answers silently.
        with tracer.span("engine.verify",
                         {"fingerprint": fresh_recipe.fingerprint}):
            assert_valid(f"plan recipe {fresh_recipe.fingerprint}",
                         verify_recipe(fresh_recipe, query=query,
                                       renaming=renaming))
        self.plan_cache.put(key, fresh_recipe)
        self.stats.bump(plans_built=1, plans_verified=1)
        return chosen

    def _recipe_from_plan(self, chosen: QueryPlan,
                          renaming: dict[str, str]) -> PlanRecipe:
        """Translate a freshly costed plan into canonical variable space."""

        def canonical_bags(bags: Iterable[frozenset[str]]) -> tuple:
            return tuple(frozenset(renaming[v] for v in bag) for bag in bags)

        estimate = chosen.estimate
        return PlanRecipe(
            kind=chosen.kind,
            reason=chosen.reason,
            fhtw_width=estimate.fhtw_exponent if estimate else float("nan"),
            subw_width=estimate.subw_exponent if estimate else float("nan"),
            is_acyclic=bool(estimate and estimate.is_acyclic),
            is_free_connex=bool(estimate and estimate.is_free_connex),
            best_bags=(canonical_bags(chosen.decomposition.bags)
                       if chosen.decomposition is not None else ()),
            decomposition_bags=tuple(canonical_bags(td.bags)
                                     for td in chosen.decompositions),
            fingerprint=chosen.fingerprint,
            profile=chosen.profile,
        )

    def _plan_from_recipe(self, recipe: PlanRecipe, query: ConjunctiveQuery,
                          statistics: ConstraintSet,
                          renaming: dict[str, str]) -> QueryPlan | None:
        """Rebind a canonical recipe to ``query``'s own variable names."""
        inverse = {canonical: original
                   for original, canonical in renaming.items()}
        try:
            decomposition = (TreeDecomposition(
                [{inverse[v] for v in bag} for bag in recipe.best_bags])
                if recipe.best_bags else None)
            decompositions = tuple(
                TreeDecomposition([{inverse[v] for v in bag} for bag in bags])
                for bags in recipe.decomposition_bags)
        except KeyError:
            # A fingerprint collision between structurally different queries:
            # astronomically unlikely, but fall back to a fresh plan.
            return None
        return realize_plan(recipe.kind, query, statistics,
                            reason=recipe.reason,
                            decomposition=decomposition,
                            decompositions=decompositions,
                            max_variables=self.max_variables,
                            validate=False,
                            fingerprint=recipe.fingerprint)

    def _execute_plan(self, chosen: QueryPlan, shards: int,
                      database: Database | None = None,
                      cancellation: CancellationToken | None = None) -> ExecutionResult:
        database = self.database if database is None else database
        storage_before = database.cache_stats()
        lp_before = lp_cache_stats()
        kernel_before = kernel_stats()
        started = time.perf_counter()
        with get_tracer().span("engine.execute",
                               {"query": chosen.query.name,
                                "kind": chosen.kind.value,
                                "shards": shards,
                                "executor": self.executor}) as span:
            try:
                if cancellation is not None:
                    cancellation.check()
                result = None
                if shards > 1:
                    pool = (self.process_pool()
                            if self.executor == "process" else None)
                    cluster = (self.cluster_coordinator()
                               if self.executor == "cluster" else None)
                    result = run_partitioned(chosen, database, shards,
                                             executor=self.executor,
                                             cancellation=cancellation,
                                             pool=pool, cluster=cluster)
                if result is not None:
                    parallel = True
                else:
                    counter = (WorkCounter(cancellation=cancellation)
                               if cancellation is not None else None)
                    result = chosen.execute(database, counter=counter)
                    parallel = False
            except QueryCancelledError:
                # A cancelled run still spent wall time and moved the caches;
                # account for it (separately from successful executions) so
                # the service's deadline tests can assert bounded overshoot
                # from the stats alone.
                self.stats.bump(
                    cancelled_executions=1,
                    wall_time_seconds=time.perf_counter() - started)
                self._absorb_execution_events(database, storage_before,
                                              lp_before, kernel_before)
                raise
            span.set("parallel", parallel)
            span.set("rows_out", len(result.answer))
        if parallel:
            self.stats.bump(executions=1, parallel_executions=1,
                            shards_run=shards,
                            wall_time_seconds=time.perf_counter() - started)
        else:
            self.stats.bump(executions=1, serial_executions=1,
                            wall_time_seconds=time.perf_counter() - started)
        self._absorb_execution_events(database, storage_before,
                                      lp_before, kernel_before)
        self._record_profile(chosen, result)
        return result

    def _record_profile(self, chosen: QueryPlan,
                        result: ExecutionResult) -> None:
        """Fold one successful execution's node observations into the plan's
        cardinality profile (a no-op for plans built outside this engine)."""
        profile = getattr(chosen, "profile", None)
        if profile is None:
            return
        observations = list(result.counter.observations)
        observations.append(("output",
                             tuple(sorted(result.answer.columns)),
                             len(result.answer)))
        profile.record(observations, chosen.renaming or {})

    def _absorb_execution_events(self, database: Database,
                                 storage_before: dict[str, int],
                                 lp_before: dict[str, int],
                                 kernel_before: dict[str, int]) -> None:
        self.stats.absorb_events("storage_cache_events",
                                 _dict_delta(database.cache_stats(),
                                             storage_before))
        self.stats.absorb_events("lp_cache_events", lp_cache_delta(lp_before))
        self.stats.absorb_events("kernel_cache_events",
                                 kernel_stats_delta(kernel_before))


def _dict_delta(after: dict[str, int], before: dict[str, int]) -> dict[str, int]:
    return {event: after.get(event, 0) - before.get(event, 0)
            for event in set(after) | set(before)}
