"""Fault-tolerant coordinator/worker execution for partitioned plans.

:mod:`repro.engine.parallel` proves the partitioning identity — a plan run
over disjoint hash shards of one atom unions into exactly the serial answer —
and ships shards to a ``ProcessPoolExecutor``.  That pool is an all-or-
nothing machine: one worker dying turns the whole query into
``BrokenProcessPool``.  This module is the honest-about-failure version of
the same dataflow, built on the observation that makes the paper's plans
cheap to ship: a task is *fully determined* by its plan recipe plus an
encoded shard payload, so re-running it anywhere, any number of times, is
semantically free.  The coordinator therefore treats every fault as a
scheduling event, not an error:

* **bounded retries** — each shard draws attempts from a
  :class:`~repro.utils.retry.RetryBudget` and backs off on the policy's
  deterministic seeded-jitter schedule, so failures never thundering-herd
  and never retry unboundedly;
* **worker health** — liveness is piggybacked on task acks; a worker
  accumulating consecutive failures trips a circuit breaker and is
  quarantined (terminated and respawned), and a worker that dies outright
  (``os._exit``, OOM kill) is detected by liveness polling, its in-flight
  shard requeued, and a replacement forked — the pool self-heals, so the
  *next* query never inherits a dead pool;
* **straggler re-dispatch** — a shard exceeding ``straggler_factor ×`` the
  median completed-shard latency is speculatively re-issued to an idle
  worker; results are keyed by shard id and the first one wins, so the
  duplicate is discarded and the merged answer stays bit-identical to
  serial;
* **graceful degradation** — a shard that exhausts its retry budget (or a
  pool that cannot be rebuilt at all) falls back to in-process serial
  execution of the remaining shards instead of failing the query, counted
  in ``EngineStats.degraded_executions``.

Fault injection for the chaos battery rides *inside* task payloads as plain
picklable directives (:mod:`repro.testing.faults`), decided by an optional
coordinator-side :class:`~repro.testing.faults.FaultPlan` — the worker loop
only interprets a directive when one is present, so production dispatch
never imports the testing machinery.

One coordinator serves one engine; :meth:`ClusterCoordinator.run` serializes
concurrent clustered queries under a lock (the worker pool is the scarce
resource — interleaving two queries' tasks would only thrash it).
"""

from __future__ import annotations

import queue
import statistics
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

from repro.analysis.plan_verifier import assert_valid, verify_cluster_task
from repro.engine.parallel import _execute_shard, _process_context, _shard_payload
from repro.relational.operators import WorkCounter
from repro.telemetry.trace import get_tracer
from repro.utils.cancellation import CancellationToken, QueryCancelledError
from repro.utils.retry import RetryBudget, RetryPolicy

#: Counters a run reports into :class:`~repro.engine.core.EngineStats`.
ENGINE_COUNTERS = ("tasks_retried", "stragglers_redispatched",
                   "workers_respawned", "degraded_executions")

#: Everything a run tracks (the extras stay on ``ClusterCoordinator.counters``).
RUN_COUNTERS = ENGINE_COUNTERS + ("tasks_dispatched", "task_failures",
                                  "acks_dropped", "workers_quarantined",
                                  "spawn_failures")


@dataclass(frozen=True)
class ClusterConfig:
    """Knobs of the coordinator loop; the defaults suit same-box workers."""

    #: Upper bound on live worker processes (the pool is sized to
    #: ``min(max_workers, shard count)`` per run and healed lazily).
    max_workers: int = 4
    #: Per-shard retry/backoff policy (attempts include the first dispatch).
    retry: RetryPolicy = field(default_factory=lambda: RetryPolicy(
        max_attempts=3, base_delay=0.01, multiplier=2.0, max_delay=0.25))
    #: A shard is a straggler when its elapsed time exceeds
    #: ``straggler_factor × median(completed shard latencies)``...
    straggler_factor: float = 4.0
    #: ...but never before this floor, so microsecond shards don't speculate.
    straggler_min_seconds: float = 0.05
    #: Completed shards required before the median is trusted.
    speculation_min_completed: int = 2
    #: Consecutive failures that trip a worker's circuit breaker.
    max_consecutive_failures: int = 2
    #: Result-queue poll tick; also the cadence of liveness checks.
    poll_interval: float = 0.02
    #: Hard stall guard: no dispatch/ack progress for this long abandons the
    #: pool and degrades the remaining shards to serial execution.
    stall_timeout: float = 30.0


def _worker_loop(task_queue, result_queue) -> None:
    """Persistent worker: execute task dicts until a ``None`` sentinel.

    Every outcome is *recorded* to the coordinator through the result queue
    (the REP107 contract): ``("ok", ...)`` carries the shard's
    ``ExecutionResult``, ``("cancelled", ...)`` a tripped cooperative
    deadline, ``("err", ...)`` the failure rendered as a string — never a
    raw exception object, which may not pickle.  A ``fault`` directive in
    the task (chaos harness only) is interpreted before execution and may
    sleep, raise, or kill this process outright.
    """
    while True:
        task = task_queue.get()
        if task is None:
            return
        task_id, shard = task["task_id"], task["shard"]
        try:
            directive = task.get("fault")
            if directive is not None:
                from repro.testing.faults import perform_fault

                perform_fault(directive)
            result = _execute_shard(task["payload"])
            result_queue.put(("ok", task_id, shard, result))
        except QueryCancelledError as exc:
            result_queue.put(("cancelled", task_id, shard, str(exc)))
        except Exception as exc:
            result_queue.put(("err", task_id, shard,
                              f"{type(exc).__name__}: {exc}"))


class _Worker:
    """One persistent worker process and its coordinator-side health record."""

    __slots__ = ("process", "queue", "current", "consecutive_failures",
                 "tasks_done", "last_ack")

    def __init__(self, process, task_queue) -> None:
        self.process = process
        self.queue = task_queue
        #: The task dict currently executing there, or ``None`` when idle.
        self.current: dict | None = None
        self.consecutive_failures = 0
        self.tasks_done = 0
        #: Monotonic time of the last ack — the liveness ping, piggybacked
        #: on task results instead of a separate heartbeat channel.
        self.last_ack = time.monotonic()

    @property
    def alive(self) -> bool:
        return self.process.is_alive()


class ClusterCoordinator:
    """Owns a pool of persistent workers and dispatches shard tasks with
    retries, straggler speculation, quarantine/respawn and serial fallback.

    ``stats`` is duck-typed: anything with ``bump(**deltas)`` (normally the
    owning engine's :class:`~repro.engine.core.EngineStats`) receives the
    :data:`ENGINE_COUNTERS` movements of every run.  ``fault_plan`` is the
    chaos hook — a :class:`~repro.testing.faults.FaultPlan` consulted at
    each dispatch and ack; ``None`` (the default) injects nothing.
    """

    def __init__(self, config: ClusterConfig | None = None,
                 stats=None) -> None:
        self.config = config or ClusterConfig()
        self.fault_plan = None
        self._stats = stats
        self._ctx = _process_context()
        self._results = self._ctx.Queue()
        self._workers: list[_Worker] = []
        self._assignments: dict[str, _Worker] = {}
        self._serial = 0
        self._spawned_ever = 0
        self._lock = threading.Lock()
        #: Open "cluster.task" dispatch spans by task id.  Span objects are
        #: coordinator-side only — they must never enter a task dict, which
        #: gets pickled to a worker.
        self._dispatch_spans: dict[str, object] = {}
        #: Lifetime totals across runs (updated under the run lock).
        self.counters: dict[str, int] = {name: 0 for name in RUN_COUNTERS}

    # ------------------------------------------------------------------ api
    def run(self, plan, payloads: Sequence[dict], shard_dbs: Sequence,
            cancellation: CancellationToken | None = None) -> list:
        """Execute one task per shard payload; returns results in shard order.

        Serializes concurrent callers (one clustered query at a time per
        coordinator) and reports this run's counter movements to ``stats``
        even when the run is cancelled mid-flight.
        """
        with self._lock:
            run = {name: 0 for name in RUN_COUNTERS}
            try:
                return self._run_locked(plan, payloads, shard_dbs,
                                        cancellation, run)
            finally:
                # Whatever ends the run — completion, cancellation, a stall
                # abandoning the pool — every dispatch span closes exactly
                # once; unacked tasks close with an explicit status.
                for task_id in list(self._dispatch_spans):
                    self._finish_dispatch(task_id, "unsettled")
                for name, value in run.items():
                    self.counters[name] = self.counters[name] + value
                if self._stats is not None:
                    deltas = {name: run[name] for name in ENGINE_COUNTERS
                              if run[name]}
                    if deltas:
                        self._stats.bump(**deltas)

    def shutdown(self) -> None:
        """Stop every worker.  The coordinator stays usable: the next run
        lazily respawns the pool (that is the healing path, exercised on
        purpose)."""
        with self._lock:
            for worker in list(self._workers):
                self._retire(worker)

    def describe(self) -> str:
        live = sum(1 for worker in self._workers if worker.alive)
        events = ", ".join(f"{name}={value}"
                           for name, value in sorted(self.counters.items())
                           if value)
        return (f"cluster: {live}/{len(self._workers)} workers live, "
                f"{self._spawned_ever} spawned ever"
                + (f"; {events}" if events else ""))

    # ------------------------------------------------------------- the loop
    def _run_locked(self, plan, payloads, shard_dbs, cancellation, run):
        config = self.config
        count = len(payloads)
        budget = RetryBudget(config.retry)
        self._drain_stale(run)
        self._heal(min(count, config.max_workers), run)

        results: dict[int, object] = {}
        failed: dict[int, str] = {}
        ready: deque[int] = deque(range(count))
        delayed: list[tuple[float, int]] = []
        tasks: dict[str, dict] = {}
        inflight: dict[int, set[str]] = {shard: set() for shard in range(count)}
        durations: list[float] = []
        speculated: set[int] = set()
        verified_first = False
        last_progress = time.monotonic()

        def settled() -> int:
            return len(set(results) | set(failed))

        while settled() < count:
            if cancellation is not None:
                cancellation.check()
            now = time.monotonic()
            if now - last_progress > config.stall_timeout:
                break  # abandon the pool; the fallback below degrades
            if delayed:
                due = [shard for ready_at, shard in delayed if ready_at <= now]
                if due:
                    delayed = [(ready_at, shard) for ready_at, shard in delayed
                               if ready_at > now]
                    ready.extend(due)
            idle = self._idle_workers()
            while idle and ready:
                shard = ready.popleft()
                if shard in results or shard in failed:
                    continue
                attempt = budget.grant(shard)
                if attempt is None:
                    failed[shard] = "retry budget exhausted"
                    continue
                task = self._build_task(plan, payloads[shard], shard, attempt,
                                        speculative=False)
                if not verified_first:
                    # Statically verify the first task of the run (they share
                    # structure): unpicklable payloads and malformed fault
                    # directives die here, by name, not inside a worker.
                    assert_valid("cluster task", verify_cluster_task(task))
                    verified_first = True
                self._send(idle.pop(), task, tasks, inflight, now)
                run["tasks_dispatched"] += 1
                last_progress = now
            if idle and len(durations) >= config.speculation_min_completed:
                if self._speculate(plan, payloads, idle, tasks, inflight,
                                   results, speculated, durations, now, run):
                    last_progress = now

            message = self._receive(config.poll_interval)
            if message is None:
                if self._reap_dead(tasks, inflight, results, budget,
                                   delayed, ready, failed, run):
                    last_progress = time.monotonic()
                if not any(worker.alive for worker in self._workers) \
                        and not self._heal(min(count, config.max_workers), run):
                    break  # no pool and none can be built: degrade
                continue

            last_progress = time.monotonic()
            kind, task_id, shard, detail = message
            task = tasks.pop(task_id, None)
            self._note_idle(task_id, ok=(kind == "ok"), run=run)
            self._finish_dispatch(
                task_id, "ok" if kind == "ok" else f"error: {kind}")
            if task is None:
                continue  # stale duplicate of an already-settled task
            inflight[shard].discard(task_id)
            if kind == "cancelled":
                raise QueryCancelledError(detail)
            if kind == "ok":
                if shard in results:
                    continue  # idempotent merge: the duplicate is discarded
                if self.fault_plan is not None and self.fault_plan.drop_ack(
                        shard, task.get("speculative", False)):
                    run["acks_dropped"] += 1
                    self._schedule_retry(shard, budget, delayed, ready,
                                         failed, run)
                    continue
                results[shard] = detail
                failed.pop(shard, None)
                durations.append(time.monotonic() - task["started"])
            else:  # "err"
                run["task_failures"] += 1
                if shard in results or inflight[shard]:
                    continue  # a twin already won or is still racing
                self._schedule_retry(shard, budget, delayed, ready,
                                     failed, run)

        missing = [shard for shard in range(count) if shard not in results]
        if missing:
            # Graceful degradation: the query still answers, serially, and
            # the movement is observable in ``degraded_executions``.
            run["degraded_executions"] += 1
            for shard in missing:
                counter = (WorkCounter(cancellation=cancellation)
                           if cancellation is not None else None)
                results[shard] = plan.execute(shard_dbs[shard], counter=counter)
        return [results[shard] for shard in range(count)]

    # --------------------------------------------------------- dispatch bits
    def _build_task(self, plan, payload, shard, attempt, speculative):
        self._serial += 1
        task_id = f"task-{self._serial}"
        trace = payload.get("trace")
        if trace is not None:
            # Re-namespace the worker's span ids by this *task* (not shard):
            # a retried or speculated shard runs as a distinct task, so its
            # spans reassemble as distinct siblings instead of colliding.
            payload = {**payload, "trace": {**trace, "prefix": task_id}}
        task = {
            "task_id": task_id,
            "shard": shard,
            "attempt": attempt,
            "speculative": speculative,
            "fingerprint": getattr(plan, "fingerprint", None),
            "deadline": payload.get("deadline"),
            "payload": payload,
        }
        if self.fault_plan is not None:
            directive = self.fault_plan.task_fault(shard, attempt, speculative)
            if directive is not None:
                task["fault"] = directive
        return task

    def _send(self, worker, task, tasks, inflight, now):
        task["started"] = now
        tasks[task["task_id"]] = task
        inflight[task["shard"]].add(task["task_id"])
        self._assignments[task["task_id"]] = worker
        worker.current = task
        span = get_tracer().span("cluster.task",
                                 {"task_id": task["task_id"],
                                  "shard": task["shard"],
                                  "attempt": task["attempt"],
                                  "speculative": task["speculative"]})
        if span:
            self._dispatch_spans[task["task_id"]] = span
        worker.queue.put(task)

    def _finish_dispatch(self, task_id: str, status: str) -> None:
        """Close the dispatch span of a settled task (idempotent)."""
        span = self._dispatch_spans.pop(task_id, None)
        if span is not None:
            span.finish(status=status)

    def _schedule_retry(self, shard, budget, delayed, ready, failed, run):
        if budget.exhausted(shard):
            failed[shard] = "retry budget exhausted"
            return
        run["tasks_retried"] += 1
        delay = budget.delay_for(f"shard-{shard}", budget.attempts(shard) + 1)
        if delay > 0:
            delayed.append((time.monotonic() + delay, shard))
        else:
            ready.append(shard)

    def _speculate(self, plan, payloads, idle, tasks, inflight, results,
                   speculated, durations, now, run) -> bool:
        threshold = max(self.config.straggler_min_seconds,
                        self.config.straggler_factor
                        * statistics.median(durations))
        launched = False
        for task in list(tasks.values()):
            if not idle:
                break
            shard = task["shard"]
            if task["speculative"] or shard in speculated or shard in results:
                continue
            if now - task["started"] < threshold:
                continue
            twin = self._build_task(plan, payloads[shard], shard,
                                    task["attempt"], speculative=True)
            self._send(idle.pop(), twin, tasks, inflight, now)
            speculated.add(shard)
            run["stragglers_redispatched"] += 1
            run["tasks_dispatched"] += 1
            launched = True
        return launched

    # ---------------------------------------------------------- worker pool
    def _idle_workers(self) -> list[_Worker]:
        return [worker for worker in self._workers
                if worker.current is None and worker.alive]

    def _heal(self, wanted: int, run) -> bool:
        """Prune dead workers and grow the pool back to ``wanted`` live ones.

        Returns True when at least one worker is live afterwards.  Replacing
        a worker that died earlier counts as a respawn — this is the path
        that makes a query *after* a crashed one see a healthy pool.
        """
        dead = [worker for worker in self._workers if not worker.alive]
        for worker in dead:
            self._retire(worker)
        replacements = min(len(dead), max(0, wanted - len(self._workers)))
        grown = 0
        while len(self._workers) < wanted:
            worker = self._spawn(run)
            if worker is None:
                break
            self._workers.append(worker)
            grown += 1
        if replacements:
            run["workers_respawned"] += min(replacements, grown)
        return any(worker.alive for worker in self._workers)

    def _spawn(self, run) -> _Worker | None:
        try:
            task_queue = self._ctx.Queue()
            process = self._ctx.Process(
                target=_worker_loop, args=(task_queue, self._results),
                daemon=True,
                name=f"repro-cluster-{self._spawned_ever}")
            process.start()
        except OSError:
            run["spawn_failures"] += 1
            return None
        self._spawned_ever += 1
        return _Worker(process, task_queue)

    def _retire(self, worker: _Worker) -> None:
        """Remove a worker: sentinel if listening, then escalate."""
        if worker in self._workers:
            self._workers.remove(worker)
        process = worker.process
        if process.is_alive():
            try:
                worker.queue.put_nowait(None)
            except (queue.Full, ValueError, OSError):
                pass  # a wedged queue ends in terminate() below anyway
            process.join(timeout=0.2)
        if process.is_alive():
            process.terminate()
            process.join(timeout=0.5)
        if process.is_alive():  # pragma: no cover - terminate() suffices on POSIX
            process.kill()
            process.join(timeout=0.5)
        worker.queue.close()
        worker.queue.cancel_join_thread()

    def _quarantine(self, worker: _Worker, run) -> None:
        run["workers_quarantined"] += 1
        self._retire(worker)
        replacement = self._spawn(run)
        if replacement is not None:
            self._workers.append(replacement)
            run["workers_respawned"] += 1

    def _reap_dead(self, tasks, inflight, results, budget, delayed, ready,
                   failed, run) -> bool:
        """Detect crashed workers, requeue their in-flight shards, respawn."""
        progressed = False
        for worker in list(self._workers):
            if worker.alive:
                continue
            task = worker.current
            self._retire(worker)
            replacement = self._spawn(run)
            if replacement is not None:
                self._workers.append(replacement)
                run["workers_respawned"] += 1
            progressed = True
            if task is None:
                continue
            task_id, shard = task["task_id"], task["shard"]
            tasks.pop(task_id, None)
            self._assignments.pop(task_id, None)
            inflight[shard].discard(task_id)
            self._finish_dispatch(task_id, "error: worker-died")
            if shard in results or inflight[shard]:
                continue  # a twin already won or is still racing
            self._schedule_retry(shard, budget, delayed, ready, failed, run)
        return progressed

    # ------------------------------------------------------------- messaging
    def _receive(self, timeout: float):
        try:
            return self._results.get(timeout=timeout)
        except queue.Empty:
            return None

    def _note_idle(self, task_id: str, ok: bool, run) -> None:
        worker = self._assignments.pop(task_id, None)
        if worker is None:
            return
        if worker.current is not None and \
                worker.current.get("task_id") == task_id:
            worker.current = None
        worker.last_ack = time.monotonic()
        if ok:
            worker.tasks_done += 1
            worker.consecutive_failures = 0
        else:
            worker.consecutive_failures += 1
            if worker.consecutive_failures >= \
                    self.config.max_consecutive_failures and \
                    worker in self._workers:
                # The breaker trips on the coordinator side: quarantine the
                # suspect process and replace it, whatever it claims.
                self._quarantine(worker, run)

    def _drain_stale(self, run) -> None:
        """Absorb leftovers of a cancelled/abandoned run before starting."""
        while True:
            try:
                kind, task_id, _shard, _detail = self._results.get_nowait()
            except queue.Empty:
                return
            self._note_idle(task_id, ok=(kind == "ok"), run=run)


def run_shards(plan, shard_dbs: Sequence, coordinator: ClusterCoordinator,
               cancellation: CancellationToken | None = None) -> list:
    """Build per-shard task payloads and run them on the coordinator.

    The payloads are exactly the process-executor payloads (recipe structure
    + encoded shard relations + wall-clock deadline), so a cluster worker
    rebuilds the same plan and database a pool worker would — the executors
    are interchangeable answer-wise, which the chaos battery asserts.
    """
    payloads = [_shard_payload(plan, shard_db, cancellation)
                for shard_db in shard_dbs]
    return coordinator.run(plan, payloads, shard_dbs, cancellation=cancellation)
