"""The LRU plan cache: canonical plan decisions, reusable across renamings.

The cache stores :class:`PlanRecipe` objects — a plan *decision* expressed in
the canonical variable space of :mod:`repro.engine.fingerprint` — keyed by
``(query fingerprint, statistics fingerprint, planner configuration)``.  A
recipe carries everything needed to rebuild an executable
:class:`~repro.optimizer.planner.QueryPlan` without touching the width
machinery: the plan kind, the winning decomposition's bags, the adaptive
plan's decomposition list and the cost figures, all with canonically named
variables so one entry serves every alpha-renaming of the query.

Build/hit/eviction counters mirror the storage backends' ``cache_stats`` and
the LP substrate's ``lp_cache_stats`` conventions, so the engine can report
reuse across all three cache layers uniformly.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, field

from repro.optimizer.planner import PlanKind


@dataclass(frozen=True)
class PlanRecipe:
    """One cached plan decision, in canonical variable space."""

    kind: PlanKind
    reason: str
    fhtw_width: float
    subw_width: float
    is_acyclic: bool
    is_free_connex: bool
    #: Bags of the winning static decomposition (``STATIC_TD`` only).
    best_bags: tuple[frozenset[str], ...]
    #: Bags of every enumerated free-connex decomposition (adaptive plans).
    decomposition_bags: tuple[tuple[frozenset[str], ...], ...]
    #: ``query digest x statistics digest`` — the entry's identity.
    fingerprint: str
    #: The entry's cardinality profile
    #: (:class:`repro.telemetry.profiler.CardinalityProfile`): estimated vs
    #: observed sizes per plan node, in canonical variable space.  Mutable
    #: telemetry riding inside a frozen decision — it accumulates across
    #: every execution (and every alpha-renaming) served from this entry,
    #: and is excluded from the recipe's value semantics.
    profile: object | None = field(default=None, repr=False, compare=False)


class LruDict:
    """A bounded mapping with least-recently-used eviction.

    The one LRU policy in the engine: the plan cache and the engine's
    measured-statistics memo both delegate here, so eviction semantics
    cannot drift between them.

    Operations are individually atomic (an internal lock): the multi-tenant
    service executes queries of one engine from several worker threads at
    once, and ``OrderedDict``'s move-to-end bookkeeping is not safe under
    concurrent mutation.  Lookups of a missing key and concurrent ``put`` of
    the same key remain benign races (the last writer wins, which for
    idempotent recipe/statistics entries is the same value).
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("an LRU cache needs capacity for at least one entry")
        self.capacity = capacity
        self._entries: OrderedDict = OrderedDict()
        self._lock = threading.Lock()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key) -> bool:
        return key in self._entries

    def get(self, key):
        """The entry for ``key`` (marked most recently used), or ``None``."""
        with self._lock:
            value = self._entries.get(key)
            if value is not None:
                self._entries.move_to_end(key)
            return value

    def put(self, key, value) -> int:
        """Store ``key -> value``; returns how many entries were evicted."""
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            evictions = 0
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                evictions += 1
            return evictions

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()


class PlanCache:
    """A bounded LRU mapping plan-cache keys to :class:`PlanRecipe` entries."""

    def __init__(self, capacity: int = 128) -> None:
        self._entries = LruDict(capacity)
        self._stats_lock = threading.Lock()
        self.stats: dict[str, int] = {
            "plan_builds": 0, "plan_hits": 0, "plan_evictions": 0,
        }

    @property
    def capacity(self) -> int:
        return self._entries.capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: tuple) -> bool:
        return key in self._entries

    def get(self, key: tuple) -> PlanRecipe | None:
        """The cached recipe for ``key`` (marks it most recently used)."""
        recipe = self._entries.get(key)
        if recipe is not None:
            with self._stats_lock:
                self.stats["plan_hits"] += 1
        return recipe

    def put(self, key: tuple, recipe: PlanRecipe) -> None:
        """Store a freshly built recipe, evicting the least recently used."""
        evictions = self._entries.put(key, recipe)
        with self._stats_lock:
            self.stats["plan_builds"] += 1
            self.stats["plan_evictions"] += evictions

    def clear(self) -> None:
        """Drop every entry (counters are preserved — they tell the story)."""
        self._entries.clear()

    def cache_stats(self) -> dict[str, int]:
        """Build/hit/eviction counters plus the current entry count."""
        with self._stats_lock:
            return {**self.stats, "plan_entries": len(self._entries)}
