"""Canonical fingerprints for plan-cache keys.

A cached plan may be reused for any query that is *structurally* the same —
same relation symbols, same join shape, same free-variable positions — no
matter what the author called the variables.  The fingerprint therefore
hashes the query's canonical form (:meth:`ConjunctiveQuery.canonicalize`),
and the statistics fingerprint maps every constraint's variables through the
same canonical renaming before hashing, so a query and its statistics are
fingerprinted in one shared name space.

``E(X,Y) ⋈ F(Y,Z)`` under ``|E| ≤ 100`` and ``E(A,B) ⋈ F(B,C)`` under the
``A,B``-renamed statistics collapse onto one cache entry; the cached decision
is mapped back through the inverse renaming when it is executed.
"""

from __future__ import annotations

import hashlib

from repro.query.cq import ConjunctiveQuery
from repro.stats.constraints import ConstraintSet


def query_fingerprint(query: ConjunctiveQuery) -> tuple[str, dict[str, str]]:
    """``(digest, renaming)`` for a query's canonical form.

    ``renaming`` maps the query's variable names to the canonical names the
    digest was computed over; callers key caches on the digest and use the
    renaming to translate cached per-variable structures (tree decomposition
    bags) between the two name spaces.
    """
    canonical, renaming = query.canonicalize()
    descriptor = (tuple((atom.relation, atom.variables)
                        for atom in canonical.atoms),
                  tuple(sorted(canonical.free_variables)))
    digest = hashlib.sha1(repr(descriptor).encode()).hexdigest()
    return digest, renaming


def statistics_fingerprint(statistics: ConstraintSet,
                           renaming: dict[str, str]) -> str:
    """A content fingerprint of ``statistics`` in canonical variable space.

    Same descriptors as :meth:`ConstraintSet.fingerprint` (order-insensitive
    over the constraint multiset, sensitive to the reference size ``N``) but
    with every variable mapped through ``renaming`` first, so the statistics
    of two alpha-renamed queries hash identically exactly when they express
    the same bounds on corresponding variables.  A variable outside the query
    (symbolic statistics) keeps its own name behind a marker so a renamed
    query never aliases it onto a canonical ``v<i>``.
    """
    descriptors = statistics.constraint_descriptors(
        rename=lambda variable: renaming.get(variable, f"?{variable}"))
    digest = hashlib.sha1()
    digest.update(repr(statistics.base).encode())
    digest.update(repr(sorted(descriptors)).encode())
    return digest.hexdigest()


def plan_fingerprint(query_digest: str, statistics_digest: str) -> str:
    """The short human-readable plan identity shown by ``QueryPlan.explain``."""
    return f"{query_digest[:12]}x{statistics_digest[:12]}"
