"""The query-engine service layer (plan cache, prepared queries, sharding).

Public surface::

    from repro.engine import Engine

    engine = Engine(database, shards=4)          # owns the database
    prepared = engine.prepare(query)             # costed once, cached by shape
    result = prepared.execute()                  # partition-parallel when sharded
    batch = prepared.execute_many([db1, db2])    # one plan, many databases
    print(engine.stats.describe())               # plans reused, shards, caches

See :mod:`repro.engine.core` for the serving semantics,
:mod:`repro.engine.fingerprint` for the renaming-invariant plan-cache keys,
:mod:`repro.engine.parallel` for the partition-parallel execution model and
:mod:`repro.engine.cluster` for the fault-tolerant coordinator/worker
executor (retries, straggler re-dispatch, respawn, serial degradation).
"""

from repro.engine.cluster import ClusterConfig, ClusterCoordinator, run_shards
from repro.engine.core import Engine, EngineStats, PreparedQuery
from repro.engine.fingerprint import (
    plan_fingerprint,
    query_fingerprint,
    statistics_fingerprint,
)
from repro.engine.parallel import (
    PersistentProcessPool,
    choose_partition_atom,
    merge_shard_results,
    run_partitioned,
    shard_databases,
)
from repro.engine.plan_cache import LruDict, PlanCache, PlanRecipe

__all__ = [
    "Engine",
    "EngineStats",
    "PreparedQuery",
    "ClusterConfig",
    "ClusterCoordinator",
    "PersistentProcessPool",
    "run_shards",
    "LruDict",
    "PlanCache",
    "PlanRecipe",
    "query_fingerprint",
    "statistics_fingerprint",
    "plan_fingerprint",
    "choose_partition_atom",
    "shard_databases",
    "run_partitioned",
    "merge_shard_results",
]
