"""The AGM bound via fractional edge covers (Section 2.1, [12]).

When the statistics contain only cardinality constraints — one size ``N_R``
per atom — the polymatroid bound collapses to the AGM bound

    |Q(D)|  <=  Π_R N_R^{x_R}

where ``x`` is a fractional edge cover of the free variables by the atoms.
This module computes the optimal cover directly (a much smaller LP than the
polymatroid program) and exposes both the cover and the bound; the test suite
checks that it agrees with the polymatroid LP, as Theorem 4.1 promises.

Cover programs are memoized per (atom structure, sizes, cover variables):
cardinality estimation loops call the AGM bound for the same query shape over
and over, and on a hit the compiled sparse matrices are re-solved directly
(``edge_cover_builds`` / ``edge_cover_hits`` in
:func:`repro.lp.model.lp_cache_stats`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.lp.model import BoundedCache, LinearProgram
from repro.query.cq import ConjunctiveQuery
from repro.stats.constraints import ConstraintSet, log_with_base


@dataclass
class EdgeCoverResult:
    """Optimal fractional edge cover and the induced AGM bound."""

    exponent: float
    size_bound: float
    weights: dict[int, float]  # atom index -> cover weight

    def weight_by_atom(self, query: ConjunctiveQuery) -> dict[str, float]:
        """Cover weights keyed by a readable atom rendering."""
        return {str(query.atoms[index]): weight
                for index, weight in self.weights.items() if weight > 1e-9}


def _atom_sizes(query: ConjunctiveQuery, statistics: ConstraintSet) -> dict[int, float]:
    """The cardinality bound of each atom, from the statistics.

    An atom picks up the smallest cardinality constraint that covers all of
    its variables and is either guarded by the atom's relation or unguarded.
    """
    sizes: dict[int, float] = {}
    for index, atom in enumerate(query.atoms):
        candidates = []
        for constraint in statistics.cardinality_constraints():
            guard_ok = constraint.guard is None or constraint.guard == atom.relation
            if guard_ok and atom.varset <= constraint.target:
                candidates.append(constraint.bound)
        if not candidates:
            raise ValueError(
                f"no cardinality constraint covers atom {atom}; "
                "the AGM bound needs one size per atom")
        sizes[index] = min(candidates)
    return sizes


#: Compiled cover programs keyed by (per-atom varsets and sizes, cover set, base).
_COVER_CACHE = BoundedCache("edge_cover", 128)


def _cover_program(query: ConjunctiveQuery, sizes: Mapping[int, float],
                   cover_variables: frozenset[str], base: float) -> LinearProgram:
    """Build (or fetch) the compiled fractional-edge-cover LP."""
    key = (tuple((tuple(sorted(atom.varset)), sizes[index])
                 for index, atom in enumerate(query.atoms)),
           tuple(sorted(cover_variables)), base)
    cached = _COVER_CACHE.lookup(key)
    if cached is not None:
        return cached
    program = LinearProgram("fractional-edge-cover")
    objective: dict[str, float] = {}
    for index, atom in enumerate(query.atoms):
        name = f"x{index}"
        program.add_variable(name, lower=0.0)
        objective[name] = log_with_base(sizes[index], base)
    for variable in sorted(cover_variables):
        row = {f"x{index}": 1.0
               for index, atom in enumerate(query.atoms) if variable in atom.varset}
        if not row:
            raise ValueError(f"variable {variable!r} is not covered by any atom")
        program.add_ge(row, 1.0)
    program.set_objective(objective, maximize=False)
    return _COVER_CACHE.store(key, program)


def fractional_edge_cover(query: ConjunctiveQuery, statistics: ConstraintSet,
                          cover_variables: frozenset[str] | None = None) -> EdgeCoverResult:
    """Minimise ``Σ x_R log_N(N_R)`` over fractional covers of ``cover_variables``.

    ``cover_variables`` defaults to the query's free variables (Shearer's
    lemma only needs the output variables to be covered).
    """
    if cover_variables is None:
        cover_variables = query.free_variables
    sizes = _atom_sizes(query, statistics)
    program = _cover_program(query, sizes, frozenset(cover_variables),
                             statistics.base)
    solution = program.solve()
    weights = {index: solution.value(f"x{index}") for index in range(len(query.atoms))}
    exponent = solution.objective
    return EdgeCoverResult(exponent=exponent,
                           size_bound=statistics.size_from_exponent(exponent),
                           weights=weights)


def agm_bound(query: ConjunctiveQuery, statistics: ConstraintSet) -> EdgeCoverResult:
    """The AGM bound of a query under cardinality statistics.

    For a full CQ this is the classical bound of Atserias, Grohe and Marx;
    for queries with projections the cover only needs to span the free
    variables (the bound remains valid by Shearer's lemma).  Boolean queries
    get the trivial bound of one tuple.
    """
    if query.is_boolean:
        return EdgeCoverResult(exponent=0.0, size_bound=1.0, weights={})
    return fractional_edge_cover(query, statistics)


def agm_bound_from_sizes(query: ConjunctiveQuery,
                         sizes: Mapping[str, float],
                         base: float | None = None) -> EdgeCoverResult:
    """AGM bound given a plain ``{relation name: size}`` mapping."""
    reference = base if base is not None else max(2.0, max(sizes.values()))
    statistics = ConstraintSet(base=reference)
    for atom in query.atoms:
        if atom.relation not in sizes:
            raise KeyError(f"no size given for relation {atom.relation!r}")
        statistics.add_cardinality(atom.varset, sizes[atom.relation],
                                   guard=atom.relation)
    return agm_bound(query, statistics)
