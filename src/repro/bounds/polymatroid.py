"""The polymatroid bound for CQs and disjunctive datalog rules (Theorems 4.1, 5.1).

Given statistics ``S`` over variables ``V``, the polymatroid bound of a CQ
with free variables ``F`` is

    max { h(F)  :  h ∈ Γ_n,  h |= S }

and the polymatroid bound of a DDR with head targets ``B`` is

    max { min_{B ∈ B} h(B)  :  h ∈ Γ_n,  h |= S }.

Both are linear programs over one variable per non-empty subset of ``V``,
constrained by the elemental Shannon inequalities and the statistics rows
``h(Y|X) <= log_N N_{Y|X}`` (degree constraints) or
``h(X)/k + h(Y|X) <= log_N N_{Y|X,k}`` (ℓk-norm constraints, Eq. (73)).
Everything is expressed on the paper's log_N scale.

The feasible region ``Γ_n ∧ S`` depends only on the ground set and the
statistics, not on the objective, so :meth:`PolymatroidProgram.shared`
memoizes fully-built programs keyed by ``(variables, statistics
fingerprint)``: ``fhtw`` solving one LP per bag, ``subw`` one per bag
selector and repeated bound queries all re-solve one compiled sparse region
instead of regenerating the O(n²·2ⁿ) elemental family and rebuilding the
matrices.  The min-target rows of a DDR bound are stacked on the compiled
region per solve (they never mutate it), so CQ and DDR bounds share the same
cache entry.  Build/hit counters land in
:func:`repro.lp.model.lp_cache_stats` under ``region_builds`` /
``region_hits``.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.entropy.elemental import elemental_inequalities
from repro.entropy.setfunc import SetFunction
from repro.lp.model import (
    BoundedCache,
    LinearProgram,
    LPSolution,
    lp_caching_enabled,
    register_lp_cache,
)
from repro.query.cq import ConjunctiveQuery
from repro.stats.constraints import ConstraintSet, DegreeConstraint, LpNormConstraint
from repro.utils.varsets import format_varset, powerset

#: ``h{…}`` variable names are constructed for every subset row of every
#: constraint of every program; interning them per subset makes the dict
#: operations inside the LP builder pointer comparisons on repeat visits.
_NAME_CACHE: dict[frozenset[str], str] = {}

register_lp_cache(_NAME_CACHE.clear)


def entropy_variable_name(subset: frozenset[str]) -> str:
    """The (interned) LP variable name for ``h(subset)``."""
    cached = _NAME_CACHE.get(subset)
    if cached is None:
        cached = sys.intern("h" + format_varset(subset))
        _NAME_CACHE[subset] = cached
    return cached


@dataclass
class BoundResult:
    """The result of a polymatroid-bound LP.

    ``exponent`` is the bound on the log_N scale; ``size_bound`` converts it
    back to a tuple count using the statistics' reference size;
    ``polymatroid`` is the optimal (worst-case) polymatroid witnessing the
    bound.
    """

    exponent: float
    size_bound: float
    polymatroid: SetFunction
    lp_summary: str = ""

    def __str__(self) -> str:
        return f"N^{self.exponent:.4g} = {self.size_bound:.6g} tuples"


class PolymatroidProgram:
    """Shared construction of the ``h |= S, Γ_n`` feasible region.

    Solving never mutates the region: objectives are swapped per solve and
    the DDR min-targets ride along as ephemeral rows, so one instance can be
    shared between arbitrarily many bound queries (see :meth:`shared`).
    """

    def __init__(self, variables: Iterable[str], statistics: ConstraintSet,
                 name: str = "polymatroid") -> None:
        self.variables = frozenset(variables) | statistics.variables
        if not self.variables:
            raise ValueError("the polymatroid LP needs at least one variable")
        self.statistics = statistics
        self.program = LinearProgram(name)
        self._declare_entropy_variables()
        self._add_shannon_constraints()
        self._add_statistics_constraints()
        # Every bound query is a maximization; record the sense up front so
        # summaries stay truthful even though the per-solve objectives are
        # passed through ``resolve`` without touching the program.
        self.program.set_objective({}, maximize=True)

    # --------------------------------------------------------------- sharing
    @classmethod
    def shared(cls, variables: Iterable[str],
               statistics: ConstraintSet) -> "PolymatroidProgram":
        """A region-cache lookup: reuse a compiled ``Γ_n ∧ S`` program.

        Keyed by the ground set and the statistics' content fingerprint, so
        any two callers with structurally identical inputs — the per-bag LPs
        of ``fhtw``, the per-selector LPs of ``subw``, repeated bound queries
        from the optimizer — share one compiled program.  The program is
        always named ``polymatroid-region``: per-caller names would be
        misleading, since a cache hit serves whoever asked first.  With LP
        caching disabled this degenerates to a fresh build.
        """
        ground = frozenset(variables) | statistics.variables
        if not lp_caching_enabled():
            return cls(ground, statistics, name="polymatroid-region")
        key = (ground, statistics.fingerprint())
        cached = _REGION_CACHE.lookup(key)
        if cached is not None:
            return cached
        return _REGION_CACHE.store(
            key, cls(ground, statistics, name="polymatroid-region"))

    # ------------------------------------------------------------- building
    def _declare_entropy_variables(self) -> None:
        for subset in powerset(self.variables):
            if subset:
                self.program.add_variable(entropy_variable_name(subset), lower=0.0)

    def _add_shannon_constraints(self) -> None:
        for inequality in elemental_inequalities(self.variables):
            coefficients = {
                entropy_variable_name(subset): float(coeff)
                for subset, coeff in inequality.coefficients
                if subset
            }
            self.program.add_ge(coefficients, 0.0)

    def _add_statistics_constraints(self) -> None:
        for constraint in self.statistics:
            coefficients = self._constraint_row(constraint)
            rhs = self.statistics.exponent_of(constraint)
            self.program.add_le(coefficients, rhs)

    def _constraint_row(self, constraint) -> dict[str, float]:
        union = constraint.target | constraint.given
        coefficients: dict[str, float] = {entropy_variable_name(union): 1.0}
        if isinstance(constraint, DegreeConstraint):
            if constraint.given:
                coefficients[entropy_variable_name(constraint.given)] = -1.0
            return coefficients
        if isinstance(constraint, LpNormConstraint):
            # (1/k)·h(X) + h(Y|X) = h(XY) − (1 − 1/k)·h(X)
            if constraint.given:
                weight = -(1.0 - 1.0 / constraint.order)
                if abs(weight) > 1e-12:
                    coefficients[entropy_variable_name(constraint.given)] = weight
            return coefficients
        raise TypeError(f"unsupported constraint type: {type(constraint)!r}")

    # -------------------------------------------------------------- solving
    def maximize(self, objective: dict[frozenset[str], float]) -> LPSolution:
        coefficients = {entropy_variable_name(subset): weight
                        for subset, weight in objective.items() if subset}
        return self.program.resolve(objective=coefficients, maximize=True)

    def maximize_single(self, subset: frozenset[str]) -> LPSolution:
        return self.maximize({subset: 1.0})

    def maximize_each(self, subsets: Sequence[frozenset[str]]) -> list[LPSolution]:
        """One ``max h(B)`` solve per subset against the compiled region."""
        objectives = [{entropy_variable_name(subset): 1.0} for subset in subsets]
        return self.program.solve_many(objectives, maximize=True)

    def maximize_min(self, subsets: Sequence[frozenset[str]]) -> LPSolution:
        """``max min_B h(B)`` via the auxiliary variable ``t`` of Eq. (45).

        ``t`` and its ``t <= h(B)`` rows are ephemeral: they are stacked on
        the compiled region for this solve only, so a shared program can
        serve every selector of a ``subw`` computation in turn.
        """
        rows = [({"t": 1.0, entropy_variable_name(subset): -1.0}, 0.0)
                for subset in subsets]
        return self.program.resolve(
            objective={"t": 1.0}, maximize=True,
            extra_variables={"t": (None, None)}, extra_le=rows)

    def solution_polymatroid(self, solution: LPSolution) -> SetFunction:
        values = {}
        for subset in powerset(self.variables):
            if subset:
                values[subset] = solution.value(entropy_variable_name(subset))
        return SetFunction(self.variables, values)


#: Compiled ``Γ_n ∧ S`` regions keyed by (ground set, statistics fingerprint).
_REGION_CACHE = BoundedCache("region", 64)


def polymatroid_bound(query: ConjunctiveQuery | Iterable[str],
                      statistics: ConstraintSet) -> BoundResult:
    """The polymatroid bound of a CQ (or of a plain variable set).

    For a :class:`ConjunctiveQuery` the bound is on ``h(F)`` where ``F`` is
    the query's free-variable set; the ground set of the LP is the union of
    the query's variables and the statistics' variables, as in Theorem 4.1.
    Passing a bare variable set bounds ``h`` of that set — this is how bag
    sub-queries are costed in Eq. (21).
    """
    if isinstance(query, ConjunctiveQuery):
        target = query.free_variables
        variables = query.variables
    else:
        target = frozenset(query)
        variables = target
    if not target:
        # A Boolean query has output size at most 1: exponent 0.
        empty = SetFunction(variables | statistics.variables, {})
        return BoundResult(exponent=0.0, size_bound=1.0, polymatroid=empty,
                           lp_summary="boolean query: output size 1")
    builder = PolymatroidProgram.shared(variables, statistics)
    solution = builder.maximize_single(target)
    exponent = solution.objective
    return BoundResult(
        exponent=exponent,
        size_bound=statistics.size_from_exponent(exponent),
        polymatroid=builder.solution_polymatroid(solution),
        lp_summary=builder.program.describe(),
    )


def ddr_polymatroid_bound(targets: Sequence[Iterable[str]],
                          statistics: ConstraintSet,
                          variables: Iterable[str] = ()) -> BoundResult:
    """The polymatroid bound of a DDR with the given head targets (Theorem 5.1).

    ``targets`` is the list of bag variable sets in one bag selector; the
    bound is ``max_h min_B h(B)``.  Every selector of the same query re-solves
    the same shared ``Γ_n ∧ S`` region, appending only its min-target rows.
    """
    target_sets = [frozenset(target) for target in targets]
    if not target_sets:
        raise ValueError("a DDR needs at least one head target")
    ground = frozenset(variables) | frozenset().union(*target_sets)
    builder = PolymatroidProgram.shared(ground, statistics)
    solution = builder.maximize_min(target_sets)
    exponent = solution.objective
    return BoundResult(
        exponent=exponent,
        size_bound=statistics.size_from_exponent(exponent),
        polymatroid=builder.solution_polymatroid(solution),
        lp_summary=builder.program.describe(),
    )


def output_size_bound(query: ConjunctiveQuery, statistics: ConstraintSet) -> float:
    """Convenience wrapper: the worst-case output size bound in tuples."""
    return polymatroid_bound(query, statistics).size_bound
