"""The polymatroid bound for CQs and disjunctive datalog rules (Theorems 4.1, 5.1).

Given statistics ``S`` over variables ``V``, the polymatroid bound of a CQ
with free variables ``F`` is

    max { h(F)  :  h ∈ Γ_n,  h |= S }

and the polymatroid bound of a DDR with head targets ``B`` is

    max { min_{B ∈ B} h(B)  :  h ∈ Γ_n,  h |= S }.

Both are linear programs over one variable per non-empty subset of ``V``,
constrained by the elemental Shannon inequalities and the statistics rows
``h(Y|X) <= log_N N_{Y|X}`` (degree constraints) or
``h(X)/k + h(Y|X) <= log_N N_{Y|X,k}`` (ℓk-norm constraints, Eq. (73)).
Everything is expressed on the paper's log_N scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.entropy.elemental import elemental_inequalities
from repro.entropy.setfunc import SetFunction
from repro.lp.model import LinearProgram, LPSolution
from repro.query.cq import ConjunctiveQuery
from repro.stats.constraints import ConstraintSet, DegreeConstraint, LpNormConstraint
from repro.utils.varsets import format_varset, powerset


def entropy_variable_name(subset: frozenset[str]) -> str:
    """The LP variable name for ``h(subset)``."""
    return "h" + format_varset(subset)


@dataclass
class BoundResult:
    """The result of a polymatroid-bound LP.

    ``exponent`` is the bound on the log_N scale; ``size_bound`` converts it
    back to a tuple count using the statistics' reference size;
    ``polymatroid`` is the optimal (worst-case) polymatroid witnessing the
    bound.
    """

    exponent: float
    size_bound: float
    polymatroid: SetFunction
    lp_summary: str = ""

    def __str__(self) -> str:
        return f"N^{self.exponent:.4g} = {self.size_bound:.6g} tuples"


class PolymatroidProgram:
    """Shared construction of the ``h |= S, Γ_n`` feasible region."""

    def __init__(self, variables: Iterable[str], statistics: ConstraintSet,
                 name: str = "polymatroid") -> None:
        self.variables = frozenset(variables) | statistics.variables
        if not self.variables:
            raise ValueError("the polymatroid LP needs at least one variable")
        self.statistics = statistics
        self.program = LinearProgram(name)
        self._declare_entropy_variables()
        self._add_shannon_constraints()
        self._add_statistics_constraints()

    # ------------------------------------------------------------- building
    def _declare_entropy_variables(self) -> None:
        for subset in powerset(self.variables):
            if subset:
                self.program.add_variable(entropy_variable_name(subset), lower=0.0)

    def _add_shannon_constraints(self) -> None:
        for inequality in elemental_inequalities(self.variables):
            coefficients = {
                entropy_variable_name(subset): float(coeff)
                for subset, coeff in inequality.coefficients
                if subset
            }
            self.program.add_ge(coefficients, 0.0)

    def _add_statistics_constraints(self) -> None:
        for constraint in self.statistics:
            coefficients = self._constraint_row(constraint)
            rhs = self.statistics.exponent_of(constraint)
            self.program.add_le(coefficients, rhs)

    def _constraint_row(self, constraint) -> dict[str, float]:
        union = constraint.target | constraint.given
        coefficients: dict[str, float] = {entropy_variable_name(union): 1.0}
        if isinstance(constraint, DegreeConstraint):
            if constraint.given:
                coefficients[entropy_variable_name(constraint.given)] = -1.0
            return coefficients
        if isinstance(constraint, LpNormConstraint):
            # (1/k)·h(X) + h(Y|X) = h(XY) − (1 − 1/k)·h(X)
            if constraint.given:
                weight = -(1.0 - 1.0 / constraint.order)
                if abs(weight) > 1e-12:
                    coefficients[entropy_variable_name(constraint.given)] = weight
            return coefficients
        raise TypeError(f"unsupported constraint type: {type(constraint)!r}")

    # -------------------------------------------------------------- solving
    def maximize(self, objective: dict[frozenset[str], float]) -> LPSolution:
        coefficients = {entropy_variable_name(subset): weight
                        for subset, weight in objective.items() if subset}
        self.program.set_objective(coefficients, maximize=True)
        return self.program.solve()

    def maximize_single(self, subset: frozenset[str]) -> LPSolution:
        return self.maximize({subset: 1.0})

    def maximize_min(self, subsets: Sequence[frozenset[str]]) -> LPSolution:
        """``max min_B h(B)`` via the auxiliary variable ``t`` of Eq. (45)."""
        self.program.add_variable("t", lower=None)
        for subset in subsets:
            self.program.add_le({"t": 1.0, entropy_variable_name(subset): -1.0}, 0.0)
        self.program.set_objective({"t": 1.0}, maximize=True)
        return self.program.solve()

    def solution_polymatroid(self, solution: LPSolution) -> SetFunction:
        values = {}
        for subset in powerset(self.variables):
            if subset:
                values[subset] = solution.value(entropy_variable_name(subset))
        return SetFunction(self.variables, values)


def polymatroid_bound(query: ConjunctiveQuery | Iterable[str],
                      statistics: ConstraintSet) -> BoundResult:
    """The polymatroid bound of a CQ (or of a plain variable set).

    For a :class:`ConjunctiveQuery` the bound is on ``h(F)`` where ``F`` is
    the query's free-variable set; the ground set of the LP is the union of
    the query's variables and the statistics' variables, as in Theorem 4.1.
    Passing a bare variable set bounds ``h`` of that set — this is how bag
    sub-queries are costed in Eq. (21).
    """
    if isinstance(query, ConjunctiveQuery):
        target = query.free_variables
        variables = query.variables
    else:
        target = frozenset(query)
        variables = target
    if not target:
        # A Boolean query has output size at most 1: exponent 0.
        empty = SetFunction(variables | statistics.variables, {})
        return BoundResult(exponent=0.0, size_bound=1.0, polymatroid=empty,
                           lp_summary="boolean query: output size 1")
    builder = PolymatroidProgram(variables, statistics, name="polymatroid-bound")
    solution = builder.maximize_single(target)
    exponent = solution.objective
    return BoundResult(
        exponent=exponent,
        size_bound=statistics.size_from_exponent(exponent),
        polymatroid=builder.solution_polymatroid(solution),
        lp_summary=builder.program.describe(),
    )


def ddr_polymatroid_bound(targets: Sequence[Iterable[str]],
                          statistics: ConstraintSet,
                          variables: Iterable[str] = ()) -> BoundResult:
    """The polymatroid bound of a DDR with the given head targets (Theorem 5.1).

    ``targets`` is the list of bag variable sets in one bag selector; the
    bound is ``max_h min_B h(B)``.
    """
    target_sets = [frozenset(target) for target in targets]
    if not target_sets:
        raise ValueError("a DDR needs at least one head target")
    ground = frozenset(variables) | frozenset().union(*target_sets)
    builder = PolymatroidProgram(ground, statistics, name="ddr-bound")
    solution = builder.maximize_min(target_sets)
    exponent = solution.objective
    return BoundResult(
        exponent=exponent,
        size_bound=statistics.size_from_exponent(exponent),
        polymatroid=builder.solution_polymatroid(solution),
        lp_summary=builder.program.describe(),
    )


def output_size_bound(query: ConjunctiveQuery, statistics: ConstraintSet) -> float:
    """Convenience wrapper: the worst-case output size bound in tuples."""
    return polymatroid_bound(query, statistics).size_bound
