"""Worst-case output-size bounds (Sections 4.2, 5.2, 9.2)."""

from repro.bounds.agm import EdgeCoverResult, agm_bound, agm_bound_from_sizes, fractional_edge_cover
from repro.bounds.polymatroid import (
    BoundResult,
    PolymatroidProgram,
    ddr_polymatroid_bound,
    entropy_variable_name,
    output_size_bound,
    polymatroid_bound,
)
from repro.bounds.lpnorm import (
    NormBoundComparison,
    add_measured_lp_norms,
    compare_with_and_without_norms,
    lp_norm_bound,
)

__all__ = [
    "agm_bound",
    "agm_bound_from_sizes",
    "fractional_edge_cover",
    "EdgeCoverResult",
    "polymatroid_bound",
    "ddr_polymatroid_bound",
    "output_size_bound",
    "PolymatroidProgram",
    "BoundResult",
    "entropy_variable_name",
    "lp_norm_bound",
    "add_measured_lp_norms",
    "compare_with_and_without_norms",
    "NormBoundComparison",
]
