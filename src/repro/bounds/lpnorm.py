"""Bounds from ℓp-norm statistics on degree sequences (Section 9.2).

ℓk-norm constraints strictly generalise degree constraints (the max degree is
the ℓ∞ norm) and plug into the polymatroid bound through Eq. (73):

    h(X)/k + h(Y|X)  <=  log_N ||deg_R(Y|X=·)||_k .

The heavy lifting lives in :mod:`repro.bounds.polymatroid`; this module adds
the data-facing helpers: measuring norms on a database, building norm-enriched
statistics and comparing the resulting bound with the degree-only bound (the
comparison reproduced by experiment E7).

Because the polymatroid-region cache keys on the statistics' *content*
fingerprint, the degree-only :class:`ConstraintSet` rebuilt by
:func:`compare_with_and_without_norms` on every call still maps to one shared
compiled region — repeated E7-style comparisons re-solve two cached regions
(with and without the norm rows) instead of rebuilding four LPs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bounds.polymatroid import BoundResult, polymatroid_bound
from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.stats.constraints import ConstraintSet


@dataclass
class NormBoundComparison:
    """Side-by-side polymatroid bounds with and without ℓp-norm constraints."""

    without_norms: BoundResult
    with_norms: BoundResult

    @property
    def improvement_exponent(self) -> float:
        """How much the norm constraints lower the bound, on the log_N scale."""
        return self.without_norms.exponent - self.with_norms.exponent


def add_measured_lp_norms(statistics: ConstraintSet, database: Database,
                          query: ConjunctiveQuery, order: float = 2.0) -> ConstraintSet:
    """Return a copy of ``statistics`` enriched with measured ℓ_order norms.

    For every binary atom ``R(A, B)`` both directional norms
    ``||deg_R(B | A=·)||_order`` and ``||deg_R(A | B=·)||_order`` are added.
    Larger-arity atoms get one norm per single conditioning variable.
    """
    enriched = ConstraintSet(list(statistics), base=statistics.base)
    for atom in query.atoms:
        relation = database.bind_atom(atom)
        for given in sorted(atom.varset):
            target = atom.varset - {given}
            if not target:
                continue
            norm = relation.lp_norm_of_degrees(target, {given}, order)
            enriched.add_lp_norm(target, {given}, order, max(1.0, norm),
                                 guard=atom.relation)
    return enriched


def lp_norm_bound(query: ConjunctiveQuery, statistics: ConstraintSet) -> BoundResult:
    """The polymatroid bound with ℓp-norm constraints taken into account.

    This is just the general polymatroid bound — the function exists to make
    call sites that specifically exercise Section 9.2 self-documenting.
    """
    return polymatroid_bound(query, statistics)


def compare_with_and_without_norms(query: ConjunctiveQuery,
                                   statistics: ConstraintSet) -> NormBoundComparison:
    """Compare the bound using all constraints vs. dropping the norm constraints.

    Both bounds hit the shared polymatroid-region cache: the degree-only
    statistics are reconstructed here, but their fingerprint matches any
    previous call with the same content, so only the first comparison builds.
    """
    degree_only = ConstraintSet(statistics.degree_constraints, base=statistics.base)
    return NormBoundComparison(
        without_norms=polymatroid_bound(query, degree_only),
        with_norms=polymatroid_bound(query, statistics),
    )
