"""Sub-probability measure tables (Section 8.1).

PANDA re-interprets every term of a Shannon-flow inequality as a table whose
tuples carry *sub-probability* weights:

* an unconditional term ``h(Y)`` becomes a weighted table over the variables
  ``Y`` whose weights sum to at most 1;
* a conditional term ``h(Y|X)`` becomes, for every value of (the relevant part
  of) ``X``, a weighted table over ``Y`` whose weights sum to at most 1.

Proof steps act on these tables: decomposition splits a joint measure into a
marginal and a conditional, submodularity steps enlarge the nominal
conditioning set without touching the data (the measure simply does not depend
on the extra variables), and composition multiplies a marginal with a
conditional — the only step that creates new tuples, and the place where
PANDAExpress truncates at the ``1/B`` threshold.

Measure tables are facades over the same pluggable annotated storage engines
as semiring-annotated relations (:mod:`repro.relational.storage`): an
:class:`UnconditionalMeasure` delegates its weighted tuples, marginal
group-bys and sorted-weight views to an
:class:`~repro.relational.storage.AnnotatedBackend`, and a
:class:`ConditionalMeasure`'s groups are materialised from those (possibly
cached) structures — so statistics collection, measure initialisation and the
executor all hit one cache hierarchy.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.relational.relation import Relation
from repro.relational.storage import AnnotatedBackend, resolve_annotated_backend


def _add(a: float, b: float) -> float:
    return a + b


#: Cache tag for real-valued summation (the ⊕ of the measure tables); see
#: :meth:`AnnotatedBackend.marginal`.
_SUM_TAG = "real-sum"


class UnconditionalMeasure:
    """A weighted table over ``variables``: a sub-probability measure.

    ``backend`` selects the annotated storage engine (``"dict"`` reference or
    index-caching ``"columnar"``; plain kinds like ``"set"`` map to their
    annotated pair), a ready backend instance, or ``None`` for the process
    default.
    """

    def __init__(self, variables: tuple[str, ...],
                 weights: Mapping[tuple, float] | Iterable[tuple[tuple, float]],
                 backend: str | AnnotatedBackend | None = None) -> None:
        self.variables = tuple(variables)
        if isinstance(backend, AnnotatedBackend):
            self._backend = backend
        else:
            backend_class = resolve_annotated_backend(backend)
            pairs = weights.items() if isinstance(weights, Mapping) else weights
            self._backend = backend_class(pairs)

    @classmethod
    def uniform_from_relation(cls, relation: Relation, variables: Iterable[str],
                              denominator: float) -> "UnconditionalMeasure":
        """``p(y) = 1/denominator`` on the projection of ``relation`` onto ``variables``.

        The projection is served by the relation's cached distinct-projection
        backend; the measure lives on the annotated engine paired with the
        relation's own storage kind.
        """
        columns = sorted(variables)
        projected = relation.project(columns)
        weight = 1.0 / max(denominator, 1.0)
        return cls(tuple(columns), ((row, weight) for row in projected),
                   backend=relation.backend_kind)

    # ---------------------------------------------------------------- basics
    @property
    def weights(self) -> Mapping[tuple, float]:
        """The weighted tuples.  Treat as read-only (it may alias a cache)."""
        return self._backend.mapping()

    @property
    def backend_kind(self) -> str:
        return self._backend.kind

    def total_mass(self) -> float:
        return sum(self._backend.mapping().values())

    def __len__(self) -> int:
        return len(self._backend)

    def _spawn(self, variables: tuple[str, ...],
               pairs: Iterable[tuple[tuple, float]]) -> "UnconditionalMeasure":
        return UnconditionalMeasure(variables, {},
                                    backend=self._backend.spawn(pairs))

    # --------------------------------------------------------------- algebra
    def truncate(self, threshold: float) -> "UnconditionalMeasure":
        """Keep only tuples whose weight is at least ``threshold``."""
        return self._spawn(self.variables,
                           ((row, weight) for row, weight in self._backend.items()
                            if weight >= threshold))

    def marginal(self, onto: Iterable[str]) -> "UnconditionalMeasure":
        """Sum weights over the variables not in ``onto``.

        Served by the backend's memoized marginal group-by, so e.g. the
        decomposition step's marginal and the conditional's normalising
        denominators are computed once per (columns, backend) pair.
        """
        columns = sorted(set(onto) & set(self.variables))
        indices = tuple(self.variables.index(c) for c in columns)
        aggregated = self._backend.marginal(indices, _add, tag=_SUM_TAG)
        return self._spawn(tuple(columns), aggregated.items())

    def conditional_on(self, given: Iterable[str]) -> "ConditionalMeasure":
        """The conditional measure ``p(rest | given)`` derived from this joint measure.

        The grouping is served by the backend's (possibly cached) probe index
        on the ``given`` columns and the normalising marginal by its memoized
        group-by — decomposition touches each physical structure once.
        """
        given_columns = sorted(set(given) & set(self.variables))
        target_columns = [c for c in self.variables if c not in set(given_columns)]
        given_idx = tuple(self.variables.index(c) for c in given_columns)
        target_idx = tuple(self.variables.index(c) for c in target_columns)
        denominators = self._backend.marginal(given_idx, _add, tag=_SUM_TAG)
        groups: dict[tuple, list[tuple[tuple, float]]] = {}
        for key, bucket in self._backend.probe_index(given_idx).items():
            denominator = denominators.get(key, 0.0)
            if denominator <= 0:
                continue
            group = [(tuple(row[i] for i in target_idx), weight / denominator)
                     for row, weight in bucket]
            group.sort(key=lambda entry: -entry[1])
            groups[key] = group
        return ConditionalMeasure(tuple(target_columns), tuple(given_columns), groups)

    def sorted_weights(self) -> list[tuple[tuple, float]]:
        """All tuples by decreasing weight (the submodularity-step view),
        served by the backend's memoized sorted-group index."""
        all_positions = tuple(range(len(self.variables)))
        return self._backend.sorted_groups((), all_positions).get((), [])

    def support_relation(self, name: str) -> Relation:
        return Relation(name, self.variables, self._backend.mapping().keys())

    def as_assignments(self) -> Iterable[tuple[dict, float]]:
        for row, weight in self._backend.items():
            yield dict(zip(self.variables, row)), weight


class ConditionalMeasure:
    """A conditional sub-probability measure ``p(target | key)``.

    ``key_variables`` is the set of variables the measure *actually* depends
    on; submodularity steps may enlarge the nominal conditioning set of the
    term this measure is attached to, but the stored data never changes
    (``p_{Z|XY} := p_{Z|Y}`` in Table 2).

    ``groups`` is the sorted-group structure
    ``key tuple -> [(target tuple, weight), ...]`` by decreasing weight —
    the same shape :meth:`AnnotatedBackend.sorted_groups` serves; the
    factory classmethods materialise it from cached storage structures.
    """

    def __init__(self, target_variables: tuple[str, ...],
                 key_variables: tuple[str, ...],
                 groups: dict[tuple, list[tuple[tuple, float]]]) -> None:
        self.target_variables = tuple(target_variables)
        self.key_variables = tuple(key_variables)
        self.groups = groups

    @classmethod
    def per_group_uniform(cls, relation: Relation, target: Iterable[str],
                          given: Iterable[str]) -> "ConditionalMeasure":
        """``p(y|x) = 1/deg(Y|X=x)`` on the projection of ``relation``.

        This is the initialisation of a degree-constraint source term: the
        measure is a genuine conditional probability per group and every
        weight is at least ``1/deg(Y|X) >= 1/N_{Y|X}``.

        The grouping is served by the relation's cached group-by structure
        (:meth:`Relation.grouped_values`) — the same index degree statistics
        are measured from, so statistics collection warms the executor's path
        and vice versa.
        """
        target_columns = sorted(target)
        given_columns = sorted(given)
        projected = relation.project(given_columns + target_columns)
        raw_groups = projected.grouped_values(target_columns, given_columns)
        groups = {
            key: sorted(((value, 1.0 / len(values)) for value in values),
                        key=lambda entry: -entry[1])
            for key, values in raw_groups.items()
        }
        return cls(tuple(target_columns), tuple(given_columns), groups)

    @classmethod
    def from_unconditional(cls, measure: UnconditionalMeasure) -> "ConditionalMeasure":
        """``h(Y) → h(Y|Z)``: the measure stays the same and simply ignores Z
        (the submodularity step on an unconditional term)."""
        return cls(measure.variables, (), {(): list(measure.sorted_weights())})

    def group_for(self, assignment: Mapping[str, object]) -> list[tuple[tuple, float]]:
        key = tuple(assignment[c] for c in self.key_variables)
        return self.groups.get(key, [])

    def max_group_size(self) -> int:
        return max((len(group) for group in self.groups.values()), default=0)

    def __len__(self) -> int:
        return sum(len(group) for group in self.groups.values())


def compose(marginal: UnconditionalMeasure, conditional: ConditionalMeasure,
            threshold: float) -> UnconditionalMeasure:
    """``p(x)·p(y|x)``, truncated at ``threshold`` (the composition step).

    The conditional's groups are sorted by decreasing weight, so the inner
    loop stops as soon as the product drops below the threshold — the work is
    proportional to the number of *kept* tuples plus the number of groups
    touched, which is what gives PANDA its runtime guarantee.  Truncating
    below the (strictly-below-true) ``1/B`` threshold only ever removes junk;
    see the executor module docstring for the soundness argument.
    """
    missing = set(conditional.key_variables) - set(marginal.variables)
    if missing:
        raise ValueError(
            f"composition requires the marginal to determine the key variables "
            f"{sorted(missing)}")
    out_columns = tuple(sorted(set(marginal.variables) | set(conditional.target_variables)))
    weights: dict[tuple, float] = {}
    for row, base_weight in marginal.weights.items():
        if base_weight < threshold:
            continue
        assignment = dict(zip(marginal.variables, row))
        for value, conditional_weight in conditional.group_for(assignment):
            combined = base_weight * conditional_weight
            if combined < threshold:
                break
            extended = dict(assignment)
            extended.update(zip(conditional.target_variables, value))
            key = tuple(extended[c] for c in out_columns)
            if combined > weights.get(key, 0.0):
                weights[key] = combined
    return UnconditionalMeasure(out_columns, weights,
                                backend=marginal.backend_kind)
