"""Sub-probability measure tables (Section 8.1).

PANDA re-interprets every term of a Shannon-flow inequality as a table whose
tuples carry *sub-probability* weights:

* an unconditional term ``h(Y)`` becomes a weighted table over the variables
  ``Y`` whose weights sum to at most 1;
* a conditional term ``h(Y|X)`` becomes, for every value of (the relevant part
  of) ``X``, a weighted table over ``Y`` whose weights sum to at most 1.

Proof steps act on these tables: decomposition splits a joint measure into a
marginal and a conditional, submodularity steps enlarge the nominal
conditioning set without touching the data (the measure simply does not depend
on the extra variables), and composition multiplies a marginal with a
conditional — the only step that creates new tuples, and the place where
PANDAExpress truncates at the ``1/B`` threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.relational.relation import Relation


@dataclass
class UnconditionalMeasure:
    """A weighted table over ``variables``: a sub-probability measure."""

    variables: tuple[str, ...]
    weights: dict[tuple, float]

    @classmethod
    def uniform_from_relation(cls, relation: Relation, variables: Iterable[str],
                              denominator: float) -> "UnconditionalMeasure":
        """``p(y) = 1/denominator`` on the projection of ``relation`` onto ``variables``."""
        columns = sorted(variables)
        projected = relation.project(columns)
        weight = 1.0 / max(denominator, 1.0)
        return cls(tuple(columns), {row: weight for row in projected})

    def total_mass(self) -> float:
        return sum(self.weights.values())

    def __len__(self) -> int:
        return len(self.weights)

    def truncate(self, threshold: float) -> "UnconditionalMeasure":
        """Keep only tuples whose weight is at least ``threshold``."""
        kept = {row: weight for row, weight in self.weights.items()
                if weight >= threshold}
        return UnconditionalMeasure(self.variables, kept)

    def marginal(self, onto: Iterable[str]) -> "UnconditionalMeasure":
        """Sum weights over the variables not in ``onto``."""
        columns = sorted(set(onto) & set(self.variables))
        indices = [self.variables.index(c) for c in columns]
        weights: dict[tuple, float] = {}
        for row, weight in self.weights.items():
            key = tuple(row[i] for i in indices)
            weights[key] = weights.get(key, 0.0) + weight
        return UnconditionalMeasure(tuple(columns), weights)

    def conditional_on(self, given: Iterable[str]) -> "ConditionalMeasure":
        """The conditional measure ``p(rest | given)`` derived from this joint measure."""
        given_columns = sorted(set(given) & set(self.variables))
        target_columns = [c for c in self.variables if c not in set(given_columns)]
        given_idx = [self.variables.index(c) for c in given_columns]
        target_idx = [self.variables.index(c) for c in target_columns]
        marginal = self.marginal(given_columns)
        groups: dict[tuple, list[tuple[tuple, float]]] = {}
        for row, weight in self.weights.items():
            key = tuple(row[i] for i in given_idx)
            value = tuple(row[i] for i in target_idx)
            denominator = marginal.weights.get(key, 0.0)
            if denominator <= 0:
                continue
            groups.setdefault(key, []).append((value, weight / denominator))
        for key in groups:
            groups[key].sort(key=lambda entry: -entry[1])
        return ConditionalMeasure(tuple(target_columns), tuple(given_columns), groups)

    def support_relation(self, name: str) -> Relation:
        return Relation(name, self.variables, self.weights.keys())

    def as_assignments(self) -> Iterable[tuple[dict, float]]:
        for row, weight in self.weights.items():
            yield dict(zip(self.variables, row)), weight


@dataclass
class ConditionalMeasure:
    """A conditional sub-probability measure ``p(target | key)``.

    ``key_variables`` is the set of variables the measure *actually* depends
    on; submodularity steps may enlarge the nominal conditioning set of the
    term this measure is attached to, but the stored data never changes
    (``p_{Z|XY} := p_{Z|Y}`` in Table 2).
    """

    target_variables: tuple[str, ...]
    key_variables: tuple[str, ...]
    groups: dict[tuple, list[tuple[tuple, float]]]

    @classmethod
    def per_group_uniform(cls, relation: Relation, target: Iterable[str],
                          given: Iterable[str]) -> "ConditionalMeasure":
        """``p(y|x) = 1/deg(Y|X=x)`` on the projection of ``relation``.

        This is the initialisation of a degree-constraint source term: the
        measure is a genuine conditional probability per group and every
        weight is at least ``1/deg(Y|X) >= 1/N_{Y|X}``.

        The grouping is served by the relation's cached group-by structure
        (:meth:`Relation.grouped_values`) — the same index degree statistics
        are measured from, so statistics collection warms the executor's path
        and vice versa.
        """
        target_columns = sorted(target)
        given_columns = sorted(given)
        projected = relation.project(given_columns + target_columns)
        raw_groups = projected.grouped_values(target_columns, given_columns)
        groups = {
            key: sorted(((value, 1.0 / len(values)) for value in values),
                        key=lambda entry: -entry[1])
            for key, values in raw_groups.items()
        }
        return cls(tuple(target_columns), tuple(given_columns), groups)

    def group_for(self, assignment: Mapping[str, object]) -> list[tuple[tuple, float]]:
        key = tuple(assignment[c] for c in self.key_variables)
        return self.groups.get(key, [])

    def max_group_size(self) -> int:
        return max((len(group) for group in self.groups.values()), default=0)

    def __len__(self) -> int:
        return sum(len(group) for group in self.groups.values())


def compose(marginal: UnconditionalMeasure, conditional: ConditionalMeasure,
            threshold: float) -> UnconditionalMeasure:
    """``p(x)·p(y|x)``, truncated at ``threshold`` (the composition step).

    The conditional's groups are sorted by decreasing weight, so the inner
    loop stops as soon as the product drops below the threshold — the work is
    proportional to the number of *kept* tuples plus the number of groups
    touched, which is what gives PANDA its runtime guarantee.
    """
    missing = set(conditional.key_variables) - set(marginal.variables)
    if missing:
        raise ValueError(
            f"composition requires the marginal to determine the key variables "
            f"{sorted(missing)}")
    out_columns = tuple(sorted(set(marginal.variables) | set(conditional.target_variables)))
    weights: dict[tuple, float] = {}
    for row, base_weight in marginal.weights.items():
        if base_weight < threshold:
            continue
        assignment = dict(zip(marginal.variables, row))
        for value, conditional_weight in conditional.group_for(assignment):
            combined = base_weight * conditional_weight
            if combined < threshold:
                break
            extended = dict(assignment)
            extended.update(zip(conditional.target_variables, value))
            key = tuple(extended[c] for c in out_columns)
            if combined > weights.get(key, 0.0):
                weights[key] = combined
    return UnconditionalMeasure(out_columns, weights)
