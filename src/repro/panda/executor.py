"""The PANDA / PANDAExpress executor for disjunctive datalog rules (Section 8).

Given a DDR, statistics and a database, the executor

1. finds an optimal Shannon-flow inequality for the DDR (Section 6.2),
2. converts it to integral form and builds a proof sequence (Section 7.1),
3. initialises one sub-probability measure table per source term from the
   guard relations of the statistics (Table 2, left-to-right), and
4. replays the proof steps on the measure tables, truncating every composition
   at the ``1/B`` threshold, where ``B = N^{bound exponent}`` is the DDR's
   worst-case size bound.

The supports of the final target-term tables form a model of the DDR whose
relations each have at most ``≈ B`` tuples.  Eager truncation replaces the
paper's Reset-lemma bookkeeping; it is sound because of a potential argument,
not the seed's (wrong) "later steps only multiply by factors ≤ 1" story —
marginal steps *sum* weights, so an individual tuple's weight alone says
nothing.  The correct invariant: every measure weight is ≤ 1, and for every
body tuple ``t`` the potential ``Φ(t) = Σ over live terms of
-log w_term(π_term(t))`` starts at ``≤ log B`` (that is what the Shannon-flow
objective certifies about the source initialisations) and never increases —
decomposition splits ``-log w`` into ``-log w_marg - log w_cond`` exactly,
composition adds the two back, submodularity keeps the data, and
monotonicity replaces a weight by a marginal *sum* that contains it.  Since
every summand of ``Φ(t)`` is nonnegative, each individual one is at most
``log B``: a body tuple's projection carries weight ``≥ 1/B`` in *every*
live table, at *every* step, so truncating strictly below the true ``1/B``
only ever removes junk.  The delicate part is "strictly below the true
``1/B``" — see :data:`TRUNCATION_SLACK`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.ddr.rule import DisjunctiveDatalogRule
from repro.flows.proof_sequence import ProofSequence, construct_proof_sequence
from repro.flows.proof_steps import (
    CompositionStep,
    DecompositionStep,
    MonotonicityStep,
    SubmodularityStep,
    Term,
)
from repro.flows.shannon_flow import (
    IntegralShannonFlow,
    ShannonFlowInequality,
    find_shannon_flow,
)
from repro.panda.measures import ConditionalMeasure, UnconditionalMeasure, compose
from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.relation import Relation
from repro.stats.constraints import ConstraintSet, DegreeConstraint
from repro.telemetry.trace import get_tracer
from repro.utils.varsets import format_varset


class PandaExecutionError(RuntimeError):
    """Raised when the PANDA executor cannot process a DDR."""


@dataclass
class _Entry:
    """One live term of the inequality together with its measure table."""

    term: Term
    measure: UnconditionalMeasure | ConditionalMeasure


@dataclass
class PandaReport:
    """Execution trace of one DDR evaluation."""

    flow: ShannonFlowInequality
    integral: IntegralShannonFlow
    sequence: ProofSequence
    bound_exponent: float
    size_bound: float
    threshold: float
    head_sizes: dict[frozenset[str], int] = field(default_factory=dict)
    max_table_size: int = 0
    step_log: list[str] = field(default_factory=list)

    def describe(self) -> str:
        lines = [f"PANDA execution (bound N^{self.bound_exponent:.4g} = "
                 f"{self.size_bound:.6g}, threshold {self.threshold:.3g})"]
        lines.append(f"  shannon flow: {self.flow.describe()}")
        lines.append(f"  proof steps: {len(self.sequence)}")
        for bag, size in self.head_sizes.items():
            lines.append(f"  head {format_varset(bag)}: {size} tuples")
        lines.append(f"  largest measure table: {self.max_table_size} tuples")
        return "\n".join(lines)


#: Relative slack between the computed ``1/size_bound`` and the truncation
#: threshold actually applied.  Soundness requires the threshold to sit
#: *strictly below* the true ``1/B``: every body tuple's projection carries
#: weight ``>= 1/B`` in every live measure table (see the module docstring),
#: but that inequality is attained exactly — e.g. a body tuple guarded only by
#: a cardinality-7 source term ends with weight exactly ``1/7``.  The bound
#: exponent comes out of a floating-point LP whose objective can undershoot
#: the exact optimum by ~1e-9, which makes ``size_bound`` undershoot ``B``
#: and ``1/size_bound`` overshoot the true ``1/B`` — so a hair of slack
#: (the seed used ``1e-9``) is not enough, and answers were silently dropped.
#: ``1e-6`` dominates both the LP error and the float rounding of the weight
#: products themselves, while loosening the size guarantee only by the
#: negligible factor ``1/(1 - 1e-6)``.
TRUNCATION_SLACK = 1e-6


def _safe_threshold(size_bound: float) -> float:
    """The eager-truncation threshold for a given worst-case size bound."""
    return (1.0 / size_bound) * (1.0 - TRUNCATION_SLACK) if size_bound > 0 else 0.0


def evaluate_ddr(ddr: DisjunctiveDatalogRule, database: Database,
                 statistics: ConstraintSet) -> tuple[dict[frozenset[str], Relation], PandaReport]:
    """Evaluate a DDR with PANDA; returns ``{target: relation}`` plus a report."""
    flow = find_shannon_flow(ddr.targets, statistics, variables=ddr.variables)
    integral = flow.to_integral()
    sequence = construct_proof_sequence(integral)
    bound_exponent = float(flow.bound_exponent())
    size_bound = statistics.size_from_exponent(bound_exponent)
    threshold = _safe_threshold(size_bound)

    entries = _initial_entries(ddr.query, database, statistics, integral)
    filters = [database.bind_atom(atom) for atom in ddr.query.atoms]
    report = PandaReport(flow=flow, integral=integral, sequence=sequence,
                         bound_exponent=bound_exponent, size_bound=size_bound,
                         threshold=threshold)
    _record_sizes(entries, report)

    # One span covers the whole proof replay: a span per step costs more
    # than the cheap steps themselves on warm plans (proofs run to dozens
    # of steps), and the step-by-step trajectory is already recorded on
    # ``report.step_log`` for anyone debugging a single proof.
    with get_tracer().span("panda.proof",
                           {"steps": len(sequence.steps)}) as span:
        for step in sequence.steps:
            _apply_step(step, entries, threshold, report, filters)
            _record_sizes(entries, report)
        span.set("live_terms", len(entries))

    heads = _collect_heads(ddr, entries, threshold)
    report.head_sizes = {bag: len(rel) for bag, rel in heads.items()}
    return heads, report


# ---------------------------------------------------------------------------
# initialisation
# ---------------------------------------------------------------------------

def _initial_entries(query: ConjunctiveQuery, database: Database,
                     statistics: ConstraintSet,
                     integral: IntegralShannonFlow) -> list[_Entry]:
    entries: list[_Entry] = []
    for term, pairs in integral.term_sources.items():
        for constraint, count in pairs:
            relation = _guard_relation(query, database, constraint)
            for _ in range(count):
                entries.append(_Entry(term=term,
                                      measure=_initial_measure(relation, constraint)))
    return entries


def _guard_relation(query: ConjunctiveQuery, database: Database,
                    constraint: DegreeConstraint) -> Relation:
    """The relation (with atom-variable columns) that guards a constraint."""
    candidates = []
    for atom in query.atoms:
        if constraint.variables <= atom.varset:
            if constraint.guard is None or constraint.guard == atom.relation:
                candidates.append(atom)
    if not candidates:
        raise PandaExecutionError(
            f"no atom of {query.name} guards the constraint {constraint}")
    return database.bind_atom(candidates[0])


def _initial_measure(relation: Relation,
                     constraint: DegreeConstraint) -> UnconditionalMeasure | ConditionalMeasure:
    if constraint.is_cardinality:
        return UnconditionalMeasure.uniform_from_relation(
            relation, constraint.target, denominator=constraint.bound)
    return ConditionalMeasure.per_group_uniform(relation, constraint.target,
                                                constraint.given)


# ---------------------------------------------------------------------------
# step application
# ---------------------------------------------------------------------------

def _apply_step(step, entries: list[_Entry], threshold: float,
                report: PandaReport, filters: list[Relation]) -> None:
    if isinstance(step, DecompositionStep):
        _apply_decomposition(step, entries)
    elif isinstance(step, SubmodularityStep):
        _apply_submodularity(step, entries)
    elif isinstance(step, CompositionStep):
        _apply_composition(step, entries, threshold, filters)
    elif isinstance(step, MonotonicityStep):
        _apply_monotonicity(step, entries)
    else:  # pragma: no cover - defensive
        raise PandaExecutionError(f"unsupported proof step: {step}")
    report.step_log.append(step.describe())


def _take_entry(entries: list[_Entry], term: Term) -> _Entry:
    for index, entry in enumerate(entries):
        if entry.term == term:
            return entries.pop(index)
    raise PandaExecutionError(f"no measure table available for term {term}")


def _apply_decomposition(step: DecompositionStep, entries: list[_Entry]) -> None:
    entry = _take_entry(entries, Term(step.whole))
    measure = entry.measure
    if not isinstance(measure, UnconditionalMeasure):
        raise PandaExecutionError("decomposition needs an unconditional measure")
    if not step.part:
        entries.append(entry)
        return
    marginal = measure.marginal(step.part)
    conditional = measure.conditional_on(step.part)
    entries.append(_Entry(term=Term(step.part), measure=marginal))
    entries.append(_Entry(term=Term(step.whole - step.part, step.part),
                          measure=conditional))


def _apply_submodularity(step: SubmodularityStep, entries: list[_Entry]) -> None:
    entry = _take_entry(entries, Term(step.target, step.given))
    measure = entry.measure
    if isinstance(measure, UnconditionalMeasure):
        # h(Y) → h(Y|Z): the measure stays the same and simply ignores Z; the
        # sorted view is served by the measure backend's memoized index.
        measure = ConditionalMeasure.from_unconditional(measure)
    entries.append(_Entry(term=Term(step.target, step.given | step.extra),
                          measure=measure))


def _apply_composition(step: CompositionStep, entries: list[_Entry],
                       threshold: float, filters: list[Relation]) -> None:
    marginal_entry = _take_entry(entries, Term(step.given))
    conditional_entry = _take_entry(entries, Term(step.target, step.given))
    marginal = marginal_entry.measure
    conditional = conditional_entry.measure
    if not isinstance(marginal, UnconditionalMeasure):
        raise PandaExecutionError("composition needs an unconditional left operand")
    if not isinstance(conditional, ConditionalMeasure):
        raise PandaExecutionError("composition needs a conditional right operand")
    combined = compose(marginal, conditional, threshold)
    combined = _filter_with_atoms(combined, filters)
    entries.append(_Entry(term=Term(step.given | step.target), measure=combined))


def _filter_with_atoms(measure: UnconditionalMeasure,
                       filters: list[Relation]) -> UnconditionalMeasure:
    """Semijoin a composed measure's support with every atom it covers.

    Compositions can pair marginals that originate from different relations,
    which may introduce combinations that satisfy neither; dropping tuples
    that are inconsistent with an input atom never removes a body tuple's
    projection (a body tuple satisfies every atom), never increases any
    measure, and keeps the executed partitioning aligned with the paper's
    Table 2 narrative (light tuples stay in the light part).
    """
    column_set = set(measure.variables)
    relevant = [relation for relation in filters
                if set(relation.columns) <= column_set and relation.columns]
    if not relevant:
        return measure
    keys = []
    for relation in relevant:
        indices = [measure.variables.index(column) for column in relation.columns]
        allowed = {tuple(row) for row in relation.project(relation.columns)}
        keys.append((indices, allowed))
    weights = {}
    for row, weight in measure.weights.items():
        if all(tuple(row[i] for i in indices) in allowed for indices, allowed in keys):
            weights[row] = weight
    return UnconditionalMeasure(measure.variables, weights,
                                backend=measure.backend_kind)


def _apply_monotonicity(step: MonotonicityStep, entries: list[_Entry]) -> None:
    entry = _take_entry(entries, Term(step.whole))
    measure = entry.measure
    if not isinstance(measure, UnconditionalMeasure):
        raise PandaExecutionError("monotonicity needs an unconditional measure")
    if not step.smaller:
        return
    entries.append(_Entry(term=Term(step.smaller), measure=measure.marginal(step.smaller)))


# ---------------------------------------------------------------------------
# output collection
# ---------------------------------------------------------------------------

def _collect_heads(ddr: DisjunctiveDatalogRule, entries: list[_Entry],
                   threshold: float) -> dict[frozenset[str], Relation]:
    heads: dict[frozenset[str], Relation] = {}
    for target in ddr.targets:
        columns = tuple(sorted(target))
        heads[target] = Relation(f"Q{format_varset(target)}", columns, [])
    for entry in entries:
        if not entry.term.is_unconditional:
            continue
        target = entry.term.target
        if target not in heads:
            continue
        measure = entry.measure
        if not isinstance(measure, UnconditionalMeasure):  # pragma: no cover
            continue
        truncated = measure.truncate(threshold)
        support = truncated.support_relation(f"Q{format_varset(target)}")
        heads[target] = heads[target].union(
            support.project(heads[target].columns), name=heads[target].name)
    return heads


def _record_sizes(entries: list[_Entry], report: PandaReport) -> None:
    for entry in entries:
        report.max_table_size = max(report.max_table_size, len(entry.measure))
