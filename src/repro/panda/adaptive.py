"""Adaptive (multi-tree-decomposition) CQ evaluation — the full PANDA pipeline.

Rules (28)–(29) of the paper: an adaptive plan computes, for every bag ``B``
of every free-connex tree decomposition, a relation ``Q_B`` such that every
body tuple is covered by *all* bags of *some* decomposition; the answer is
then the union, over the decompositions, of the acyclic join of their bags.

The evaluator proceeds selector by selector: every bag selector gives a DDR
(Section 5.1) which is evaluated with the PANDA executor; the per-bag outputs
are unioned across selectors, semijoin-reduced against the input atoms they
cover, and finally each decomposition's bags are joined with the Yannakakis
algorithm and projected onto the free variables.

The evaluator works for set-semantics CQ evaluation and for idempotent
aggregate semantics; it deliberately refuses non-idempotent semirings (e.g.
counting), which is the Section 9.1 caveat.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.algorithms.yannakakis import yannakakis_over_relations
from repro.ddr.rule import DisjunctiveDatalogRule, bag_selectors
from repro.decompositions.enumerate import enumerate_tree_decompositions
from repro.decompositions.treedecomp import TreeDecomposition
from repro.lp.model import lp_cache_delta, lp_cache_stats
from repro.panda.executor import PandaReport, evaluate_ddr
from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.operators import WorkCounter
from repro.relational.relation import Relation
from repro.stats.collect import collect_statistics
from repro.stats.constraints import ConstraintSet
from repro.utils.varsets import format_varset


@dataclass
class AdaptiveReport:
    """Execution trace of an adaptive PANDA plan."""

    decompositions: list[TreeDecomposition]
    ddr_reports: list[PandaReport] = field(default_factory=list)
    bag_sizes: dict[frozenset[str], int] = field(default_factory=dict)
    counter: WorkCounter = field(default_factory=WorkCounter)
    #: LP-layer cache events (flow/region/elemental builds and hits) that
    #: occurred during this evaluation — nonzero ``flow_hits`` means the run
    #: reused memoized Shannon-flow certificates instead of re-deriving them.
    lp_cache_events: dict[str, int] = field(default_factory=dict)

    @property
    def max_bag_size(self) -> int:
        return max(self.bag_sizes.values(), default=0)

    @property
    def max_intermediate(self) -> int:
        table_max = max((report.max_table_size for report in self.ddr_reports), default=0)
        return max(table_max, self.max_bag_size, self.counter.max_intermediate)

    @property
    def subw_exponent(self) -> float:
        return max((report.bound_exponent for report in self.ddr_reports), default=0.0)

    def describe(self) -> str:
        lines = [f"adaptive PANDA plan over {len(self.decompositions)} decompositions, "
                 f"{len(self.ddr_reports)} DDRs (subw exponent {self.subw_exponent:.4g})"]
        for bag, size in sorted(self.bag_sizes.items(), key=lambda kv: sorted(kv[0])):
            lines.append(f"  bag {format_varset(bag)}: {size} tuples")
        lines.append(f"  max intermediate: {self.max_intermediate} tuples")
        if self.lp_cache_events:
            events = ", ".join(f"{key}={value}" for key, value
                               in sorted(self.lp_cache_events.items()))
            lines.append(f"  lp caches: {events}")
        return "\n".join(lines)


def evaluate_adaptive(query: ConjunctiveQuery, database: Database,
                      statistics: ConstraintSet | None = None,
                      decompositions: Sequence[TreeDecomposition] | None = None,
                      max_variables: int = 9,
                      counter: WorkCounter | None = None) -> tuple[Relation, AdaptiveReport]:
    """Evaluate a CQ with the adaptive (multi-TD) PANDA plan.

    ``statistics`` defaults to the cardinality constraints measured on the
    database (one per atom); richer statistics (degree constraints, FDs) yield
    tighter bounds and finer partitioning.  Pass ``decompositions`` (e.g. the
    ones a cost estimate already enumerated) to skip re-enumerating them, and
    ``counter`` to have the report account work directly into the caller's
    counter instead of a private one.
    """
    if statistics is None:
        statistics = collect_statistics(database, query, include_degrees=False)
    if decompositions is None:
        decompositions = enumerate_tree_decompositions(query, max_variables=max_variables)
    decompositions = list(decompositions)
    if not decompositions:
        raise ValueError("the query admits no free-connex tree decomposition")
    report = AdaptiveReport(decompositions=decompositions)
    if counter is not None:
        report.counter = counter

    # A guaranteed-empty query needs no proof steps: any empty atom makes the
    # body unsatisfiable, so return the empty answer without running a DDR.
    if any(len(relation) == 0 for relation in database.bind_query(query)):
        report.bag_sizes = {bag: 0 for decomposition in decompositions
                            for bag in decomposition.bags}
        return Relation(query.name, tuple(sorted(query.free_variables)), []), report

    before = lp_cache_stats()
    bag_relations = _evaluate_all_ddrs(query, database, statistics, decompositions, report)
    report.lp_cache_events = lp_cache_delta(before)
    _semijoin_reduce_bags(query, database, bag_relations, report)
    report.bag_sizes = {bag: len(rel) for bag, rel in bag_relations.items()}

    answer = _combine_decompositions(query, decompositions, bag_relations, report)
    return answer, report


# ---------------------------------------------------------------------------
# phases
# ---------------------------------------------------------------------------

def _evaluate_all_ddrs(query: ConjunctiveQuery, database: Database,
                       statistics: ConstraintSet,
                       decompositions: Sequence[TreeDecomposition],
                       report: AdaptiveReport) -> dict[frozenset[str], Relation]:
    """Evaluate every bag-selector DDR and union the per-bag outputs."""
    bag_relations: dict[frozenset[str], Relation] = {}
    for decomposition in decompositions:
        for bag in decomposition.bags:
            bag_relations.setdefault(
                bag, Relation(f"Q{format_varset(bag)}", tuple(sorted(bag)), []))
    for selector in bag_selectors(decompositions):
        report.counter.check()
        ddr = DisjunctiveDatalogRule(query, selector)
        heads, ddr_report = evaluate_ddr(ddr, database, statistics)
        report.ddr_reports.append(ddr_report)
        for bag, relation in heads.items():
            if bag in bag_relations:
                bag_relations[bag] = bag_relations[bag].union(
                    relation.project(bag_relations[bag].columns),
                    name=bag_relations[bag].name)
            else:
                bag_relations[bag] = relation
    return bag_relations


def _semijoin_reduce_bags(query: ConjunctiveQuery, database: Database,
                          bag_relations: dict[frozenset[str], Relation],
                          report: AdaptiveReport) -> None:
    """Filter each bag relation with every input atom it covers (junk removal).

    PANDA's measure supports can contain combinations that satisfy only the
    atoms used along their composition chain; semijoining with every atom
    whose variables lie inside the bag restores the invariant
    ``Q_B ⊆ ⋈ of the atoms inside B`` that the final per-TD join relies on.
    """
    bound = list(zip(query.atoms, database.bind_query(query)))
    for bag, relation in bag_relations.items():
        report.counter.check()
        reduced = relation
        for atom, filter_relation in bound:
            if atom.varset <= bag:
                reduced = reduced.semijoin(filter_relation)
        bag_relations[bag] = reduced
        report.counter.record(reduced, note=f"semijoin-reduced bag {format_varset(bag)}")


def _combine_decompositions(query: ConjunctiveQuery,
                            decompositions: Sequence[TreeDecomposition],
                            bag_relations: dict[frozenset[str], Relation],
                            report: AdaptiveReport) -> Relation:
    """Rule (29): union, over the decompositions, of the acyclic joins of their bags."""
    free = sorted(query.free_variables)
    answer = Relation(query.name, tuple(free), [])
    saw_result = False
    for decomposition in decompositions:
        relations = [bag_relations[bag] for bag in decomposition.bags]
        partial = yannakakis_over_relations(relations, query.free_variables,
                                            counter=report.counter,
                                            name=f"{query.name}_{decomposition}")
        if query.is_boolean:
            saw_result = saw_result or len(partial) > 0
        else:
            answer = answer.union(partial.project(answer.columns), name=query.name)
    if query.is_boolean:
        return Relation(query.name, (), [()] if saw_result else [])
    return answer
