"""The PANDA / PANDAExpress algorithm: DDR evaluation and adaptive CQ plans (Section 8)."""

from repro.panda.measures import ConditionalMeasure, UnconditionalMeasure, compose
from repro.panda.executor import PandaExecutionError, PandaReport, evaluate_ddr
from repro.panda.adaptive import AdaptiveReport, evaluate_adaptive

__all__ = [
    "UnconditionalMeasure",
    "ConditionalMeasure",
    "compose",
    "evaluate_ddr",
    "PandaReport",
    "PandaExecutionError",
    "evaluate_adaptive",
    "AdaptiveReport",
]
