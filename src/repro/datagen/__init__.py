"""Synthetic data and workload generators for the experiments."""

from repro.datagen.graphs import (
    erdos_renyi_edges,
    functional_relation,
    hard_four_cycle_instance,
    random_binary_relation,
    random_graph_database,
    skewed_binary_relation,
)
from repro.datagen.workloads import (
    WeightedWorkload,
    Workload,
    four_cycle_hard_workload,
    four_cycle_random_workload,
    path_workload,
    triangle_workload,
    weighted_four_cycle_workload,
    weighted_path_workload,
)

__all__ = [
    "random_binary_relation",
    "skewed_binary_relation",
    "hard_four_cycle_instance",
    "random_graph_database",
    "erdos_renyi_edges",
    "functional_relation",
    "Workload",
    "WeightedWorkload",
    "four_cycle_hard_workload",
    "four_cycle_random_workload",
    "triangle_workload",
    "path_workload",
    "weighted_four_cycle_workload",
    "weighted_path_workload",
]
