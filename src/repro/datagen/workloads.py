"""Named workloads used by the benchmark harness.

Every benchmark in ``benchmarks/`` pulls its data through one of these
factories so the parameters (sizes, domains, seeds, storage backend) are
recorded in one place and the runs are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Mapping

from repro.datagen.graphs import (
    hard_four_cycle_instance,
    random_graph_database,
)
from repro.query.cq import ConjunctiveQuery
from repro.query.library import (
    four_cycle_projected,
    triangle_query,
    path_query,
)
from repro.relational.database import Database


@dataclass(frozen=True)
class Workload:
    """A query together with a database instance and a short description."""

    name: str
    query: ConjunctiveQuery
    database: Database
    description: str

    @property
    def input_size(self) -> int:
        return self.database.max_relation_size()


def four_cycle_hard_workload(size: int, backend: str | None = None) -> Workload:
    """The adaptive-vs-static showdown of experiment E5."""
    return Workload(
        name=f"four-cycle-hard-N{size}",
        query=four_cycle_projected(),
        database=hard_four_cycle_instance(size, backend=backend),
        description=("4-cycle query on the Section-5.1 skewed instance; every "
                     "static plan is Ω(N²) while PANDA stays at O(N^{3/2})"),
    )


def four_cycle_random_workload(size: int, domain: int | None = None,
                               seed: int = 7,
                               backend: str | None = None) -> Workload:
    """A uniform random 4-cycle workload (baseline comparisons)."""
    query = four_cycle_projected()
    domain = domain or max(4, int(size ** 0.75))
    return Workload(
        name=f"four-cycle-random-N{size}",
        query=query,
        database=random_graph_database(query, size, domain, seed=seed,
                                       backend=backend),
        description="4-cycle query on uniform random binary relations",
    )


def triangle_workload(size: int, domain: int | None = None, seed: int = 11,
                      skew: float | None = None,
                      backend: str | None = None) -> Workload:
    """Triangle listing (experiment E9: AGM bound vs worst-case optimal join)."""
    query = triangle_query()
    domain = domain or max(4, int(size ** 0.6))
    return Workload(
        name=f"triangle-N{size}" + ("-skewed" if skew else ""),
        query=query,
        database=random_graph_database(query, size, domain, seed=seed, skew=skew,
                                       backend=backend),
        description="triangle query on random binary relations",
    )


def path_workload(length: int, size: int, domain: int | None = None,
                  seed: int = 13, backend: str | None = None) -> Workload:
    """An acyclic chain query (experiment E6: Yannakakis linearity)."""
    query = path_query(length, free_variables=("X1", f"X{length + 1}"))
    domain = domain or max(4, size // 4)
    return Workload(
        name=f"path{length}-N{size}",
        query=query,
        database=random_graph_database(query, size, domain, seed=seed,
                                       backend=backend),
        description=f"{length}-hop path query (free-connex acyclic)",
    )


# ---------------------------------------------------------------------------
# weighted-graph workloads (FAQ over non-Boolean semirings)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class WeightedWorkload(Workload):
    """A workload whose tuples additionally carry per-relation edge weights.

    ``weights`` maps each relation name to a ``row tuple -> weight`` table
    (rows in the relation's stored column order); :meth:`weight` adapts it to
    the ``(relation_name, row_as_dict) -> annotation`` signature
    :func:`repro.algorithms.faq.evaluate_faq` expects, and ``weight_key`` is
    the stable name under which the database may memoize the annotated
    factors it produces.
    """

    weights: Mapping[str, Mapping[tuple, float]] = field(default_factory=dict)
    weight_key: str = ""

    def weight(self, relation_name: str, row: Mapping[str, object]) -> float:
        # ``row`` is built by zipping the bound relation's columns with the
        # stored tuple, so its value order is the stored column order.
        return self.weights[relation_name][tuple(row.values())]


def _random_edge_weights(database: Database, seed: int,
                         low: float, high: float) -> dict[str, dict[tuple, float]]:
    rng = random.Random(seed)
    # Rows are weighted in sorted order so the weights are a function of the
    # data alone, not of the storage backend's iteration order.
    return {name: {row: round(rng.uniform(low, high), 3)
                   for row in sorted(relation.rows)}
            for name, relation in zip(database.relation_names(),
                                      database.relations())}


def weighted_four_cycle_workload(size: int, domain: int | None = None,
                                 seed: int = 23, backend: str | None = None,
                                 weight_range: tuple[float, float] = (0.5, 2.0),
                                 ) -> WeightedWorkload:
    """A random 4-cycle with uniform random edge weights.

    Under min-plus (or top-k min-plus) the FAQ over this workload finds, per
    output pair, the (k) cheapest 4-cycle completions; under max-times, the
    most probable one.
    """
    query = four_cycle_projected()
    domain = domain or max(4, int(size ** 0.75))
    database = random_graph_database(query, size, domain, seed=seed,
                                     backend=backend)
    low, high = weight_range
    return WeightedWorkload(
        name=f"weighted-four-cycle-N{size}",
        query=query,
        database=database,
        description="4-cycle query with uniform random edge weights",
        weights=_random_edge_weights(database, seed + 1, low, high),
        weight_key=f"weighted-four-cycle-N{size}-seed{seed}-w{low:g}:{high:g}",
    )


def weighted_path_workload(length: int, size: int, domain: int | None = None,
                           seed: int = 29, backend: str | None = None,
                           weight_range: tuple[float, float] = (0.5, 2.0),
                           ) -> WeightedWorkload:
    """An acyclic chain with random edge weights (shortest-path style FAQ)."""
    query = path_query(length, free_variables=("X1", f"X{length + 1}"))
    domain = domain or max(4, size // 4)
    database = random_graph_database(query, size, domain, seed=seed,
                                     backend=backend)
    low, high = weight_range
    return WeightedWorkload(
        name=f"weighted-path{length}-N{size}",
        query=query,
        database=database,
        description=f"{length}-hop path query with random edge weights",
        weights=_random_edge_weights(database, seed + 1, low, high),
        weight_key=f"weighted-path{length}-N{size}-seed{seed}-w{low:g}:{high:g}",
    )
