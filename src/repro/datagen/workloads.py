"""Named workloads used by the benchmark harness.

Every benchmark in ``benchmarks/`` pulls its data through one of these
factories so the parameters (sizes, domains, seeds, storage backend) are
recorded in one place and the runs are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.datagen.graphs import (
    hard_four_cycle_instance,
    random_graph_database,
)
from repro.query.cq import ConjunctiveQuery
from repro.query.library import (
    four_cycle_projected,
    triangle_query,
    path_query,
)
from repro.relational.database import Database


@dataclass(frozen=True)
class Workload:
    """A query together with a database instance and a short description."""

    name: str
    query: ConjunctiveQuery
    database: Database
    description: str

    @property
    def input_size(self) -> int:
        return self.database.max_relation_size()


def four_cycle_hard_workload(size: int, backend: str | None = None) -> Workload:
    """The adaptive-vs-static showdown of experiment E5."""
    return Workload(
        name=f"four-cycle-hard-N{size}",
        query=four_cycle_projected(),
        database=hard_four_cycle_instance(size, backend=backend),
        description=("4-cycle query on the Section-5.1 skewed instance; every "
                     "static plan is Ω(N²) while PANDA stays at O(N^{3/2})"),
    )


def four_cycle_random_workload(size: int, domain: int | None = None,
                               seed: int = 7,
                               backend: str | None = None) -> Workload:
    """A uniform random 4-cycle workload (baseline comparisons)."""
    query = four_cycle_projected()
    domain = domain or max(4, int(size ** 0.75))
    return Workload(
        name=f"four-cycle-random-N{size}",
        query=query,
        database=random_graph_database(query, size, domain, seed=seed,
                                       backend=backend),
        description="4-cycle query on uniform random binary relations",
    )


def triangle_workload(size: int, domain: int | None = None, seed: int = 11,
                      skew: float | None = None,
                      backend: str | None = None) -> Workload:
    """Triangle listing (experiment E9: AGM bound vs worst-case optimal join)."""
    query = triangle_query()
    domain = domain or max(4, int(size ** 0.6))
    return Workload(
        name=f"triangle-N{size}" + ("-skewed" if skew else ""),
        query=query,
        database=random_graph_database(query, size, domain, seed=seed, skew=skew,
                                       backend=backend),
        description="triangle query on random binary relations",
    )


def path_workload(length: int, size: int, domain: int | None = None,
                  seed: int = 13, backend: str | None = None) -> Workload:
    """An acyclic chain query (experiment E6: Yannakakis linearity)."""
    query = path_query(length, free_variables=("X1", f"X{length + 1}"))
    domain = domain or max(4, size // 4)
    return Workload(
        name=f"path{length}-N{size}",
        query=query,
        database=random_graph_database(query, size, domain, seed=seed,
                                       backend=backend),
        description=f"{length}-hop path query (free-connex acyclic)",
    )
