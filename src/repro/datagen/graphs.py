"""Synthetic data generators for the experiments.

The paper's motivating workloads are graph-pattern queries over binary
relations, so the generators here produce binary (and a few higher-arity)
relations with controlled size, skew and structure:

* uniform random relations over a bounded domain;
* power-law (Zipf-like) skewed relations, which separate worst-case-optimal
  joins from binary-join plans;
* the *fhtw-hard* 4-cycle family of Section 5.1
  (``R = S = T = U = ([N/2] × {1}) ∪ ({1} × [N/2])``), on which every static
  plan materialises Ω(N²) tuples while the adaptive plan stays at O(N^{3/2});
* Erdős–Rényi style random graphs encoded as edge relations.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.relational.relation import Relation


def random_binary_relation(name: str, size: int, domain: int,
                           seed: int | None = None,
                           columns: tuple[str, str] = ("a", "b"),
                           backend: str | None = None) -> Relation:
    """A uniform random binary relation with ``size`` distinct tuples.

    ``backend`` picks the storage engine; rows are handed to the relation in
    one deduplicated batch, which is the bulk-construction fast path.
    """
    rng = random.Random(seed)
    if domain * domain < size:
        raise ValueError("the domain is too small to hold that many distinct tuples")
    rows: set[tuple] = set()
    while len(rows) < size:
        rows.add((rng.randrange(domain), rng.randrange(domain)))
    return Relation(name, columns, rows, backend=backend)


def skewed_binary_relation(name: str, size: int, domain: int, skew: float = 1.2,
                           seed: int | None = None,
                           columns: tuple[str, str] = ("a", "b"),
                           backend: str | None = None) -> Relation:
    """A binary relation whose first column follows a Zipf-like distribution."""
    rng = random.Random(seed)
    weights = [1.0 / ((rank + 1) ** skew) for rank in range(domain)]
    total = sum(weights)
    weights = [w / total for w in weights]
    rows: set[tuple] = set()
    attempts = 0
    while len(rows) < size and attempts < 50 * size:
        attempts += 1
        first = rng.choices(range(domain), weights=weights, k=1)[0]
        second = rng.randrange(domain)
        rows.add((first, second))
    return Relation(name, columns, rows, backend=backend)


def hard_four_cycle_instance(size: int,
                             relation_names: Sequence[str] = ("R", "S", "T", "U"),
                             backend: str | None = None) -> Database:
    """The Section-5.1 instance ``([N/2] × {1}) ∪ ({1} × [N/2])`` for each relation.

    Every relation has exactly ``size`` tuples (``size`` must be even): half of
    them share the value 1 in the second column, half share it in the first.
    Any single tree decomposition of the 4-cycle materialises a bag of size
    ``(N/2)² = Ω(N²)`` on this instance, whereas the adaptive plan's
    heavy/light partitioning keeps every intermediate at ``O(N^{3/2})``.
    """
    if size % 2 != 0 or size < 2:
        raise ValueError("the hard instance needs an even size of at least 2")
    half = size // 2
    rows = {(value, 1) for value in range(2, half + 2)}
    rows |= {(1, value) for value in range(2, half + 2)}
    database = Database(backend=backend)
    for name in relation_names:
        database.add(Relation(name, ("a", "b"), rows, backend=backend))
    return database


def random_graph_database(query: ConjunctiveQuery, size: int, domain: int,
                          seed: int | None = None,
                          skew: float | None = None,
                          backend: str | None = None) -> Database:
    """One random relation per *relation symbol* of ``query``.

    Binary atoms get binary relations; higher-arity atoms get uniform random
    relations of the matching arity.  Self-joins reuse the same relation for
    every atom with the same symbol, as the semantics requires.
    """
    rng = random.Random(seed)
    database = Database(backend=backend)
    for symbol in dict.fromkeys(query.relation_names):
        arity = len(next(a for a in query.atoms if a.relation == symbol).variables)
        columns = tuple(f"c{i + 1}" for i in range(arity))
        if arity == 2:
            if skew:
                relation = skewed_binary_relation(symbol, size, domain, skew=skew,
                                                  seed=rng.randrange(1 << 30),
                                                  columns=columns, backend=backend)
            else:
                relation = random_binary_relation(symbol, size, domain,
                                                  seed=rng.randrange(1 << 30),
                                                  columns=columns, backend=backend)
        else:
            rows: set[tuple] = set()
            attempts = 0
            while len(rows) < size and attempts < 50 * size:
                attempts += 1
                rows.add(tuple(rng.randrange(domain) for _ in range(arity)))
            relation = Relation(symbol, columns, rows, backend=backend)
        database.add(relation)
    return database


def erdos_renyi_edges(name: str, vertices: int, probability: float,
                      seed: int | None = None,
                      columns: tuple[str, str] = ("a", "b"),
                      backend: str | None = None) -> Relation:
    """A directed Erdős–Rényi graph G(n, p) as an edge relation (no self-loops)."""
    rng = random.Random(seed)
    rows = [(u, v) for u in range(vertices) for v in range(vertices)
            if u != v and rng.random() < probability]
    return Relation(name, columns, rows, backend=backend)


def functional_relation(name: str, size: int, fan_in: int,
                        columns: tuple[str, str] = ("a", "b"),
                        seed: int | None = None,
                        backend: str | None = None) -> Relation:
    """A relation satisfying the FD ``first → second`` with bounded reverse degree.

    Useful for exercising the paper's ``S□full`` statistics (Eq. (16)): the
    relation has ``size`` tuples, each first-column value appears once, and
    each second-column value is shared by at most ``fan_in`` first values.
    """
    rng = random.Random(seed)
    rows = []
    for key in range(size):
        group = key // max(fan_in, 1)
        rows.append((key, group))
    rng.shuffle(rows)
    return Relation(name, columns, rows, backend=backend)
