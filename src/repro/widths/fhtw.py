"""The fractional hypertree width under arbitrary statistics (Section 4.3, Eq. (22)).

    fhtw(Q, S) = min over free-connex TDs T of
                 max over bags B of T of
                 the polymatroid bound of B under S.

The classical fractional hypertree width of Grohe and Marx is the special case
of identical cardinality constraints and Boolean queries; the definition here
(following the paper) works for any statistics and any CQ.

Every bag bound is a ``max h(B)`` solve over the same feasible region
``Γ_n ∧ S``, so the computation fetches one shared compiled
:class:`~repro.bounds.polymatroid.PolymatroidProgram` (see
``PolymatroidProgram.shared``) and solves one objective per bag against it —
and because ``subw`` keys the region cache identically, a planner that
computes both widths builds the region once for the pair.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.bounds.polymatroid import PolymatroidProgram
from repro.decompositions.enumerate import enumerate_tree_decompositions
from repro.decompositions.treedecomp import TreeDecomposition
from repro.query.cq import ConjunctiveQuery
from repro.stats.constraints import ConstraintSet
from repro.utils.varsets import format_varset


@dataclass
class DecompositionCost:
    """The cost (Eq. (21)) of one static plan: the worst bag bound."""

    decomposition: TreeDecomposition
    bag_exponents: dict[frozenset[str], float] = field(default_factory=dict)

    @property
    def cost(self) -> float:
        return max(self.bag_exponents.values(), default=0.0)

    @property
    def worst_bag(self) -> frozenset[str]:
        return max(self.bag_exponents, key=self.bag_exponents.get)

    def describe(self) -> str:
        bags = ", ".join(f"{format_varset(bag)}: {value:.4g}"
                         for bag, value in sorted(self.bag_exponents.items(),
                                                  key=lambda kv: sorted(kv[0])))
        return f"cost {self.cost:.4g} ({bags})"


@dataclass
class FhtwResult:
    """The fractional hypertree width and the static plan that attains it."""

    width: float
    best: DecompositionCost
    all_costs: list[DecompositionCost]

    @property
    def best_decomposition(self) -> TreeDecomposition:
        return self.best.decomposition

    def size_bound(self, statistics: ConstraintSet) -> float:
        return statistics.size_from_exponent(self.width)

    def describe(self) -> str:
        lines = [f"fhtw = {self.width:.4g} attained by {self.best.decomposition}"]
        for cost in self.all_costs:
            lines.append(f"  {cost.decomposition}: {cost.describe()}")
        return "\n".join(lines)


def decomposition_cost(decomposition: TreeDecomposition,
                       statistics: ConstraintSet,
                       query: ConjunctiveQuery | None = None,
                       builder: PolymatroidProgram | None = None) -> DecompositionCost:
    """``cost(T, S)`` from Eq. (21): the largest polymatroid bound over the bags.

    All bag bounds are solved against one shared compiled region; pass
    ``builder`` to reuse a region the caller already holds.
    """
    variables = query.variables if query is not None else decomposition.variables
    if builder is None:
        builder = PolymatroidProgram.shared(variables, statistics)
    result = DecompositionCost(decomposition=decomposition)
    bags = list(decomposition.bags)
    for bag, solution in zip(bags, builder.maximize_each(bags)):
        result.bag_exponents[bag] = solution.objective
    return result


def fractional_hypertree_width(query: ConjunctiveQuery, statistics: ConstraintSet,
                               decompositions: Sequence[TreeDecomposition] | None = None,
                               max_variables: int = 9) -> FhtwResult:
    """Compute ``fhtw(Q, S)`` by enumerating free-connex tree decompositions.

    One shared ``Γ_n ∧ S`` region serves every bag of every decomposition.
    """
    if decompositions is None:
        decompositions = enumerate_tree_decompositions(query, max_variables=max_variables)
    if not decompositions:
        raise ValueError("the query admits no free-connex tree decomposition")
    builder = PolymatroidProgram.shared(query.variables, statistics)
    costs = [decomposition_cost(td, statistics, query=query, builder=builder)
             for td in decompositions]
    best = min(costs, key=lambda c: c.cost)
    return FhtwResult(width=best.cost, best=best, all_costs=costs)
