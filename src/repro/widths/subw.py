"""The submodular width under arbitrary statistics (Section 5.3, Eq. (41)-(42)).

    subw(Q, S) = max over bag selectors B ∈ BS(Q) of
                 max over polymatroids h |= S of
                 min over bags B ∈ B of h(B)
               = max over polymatroids h |= S of
                 min over TDs T of
                 max over bags B of T of h(B).

Each inner max-min is the polymatroid bound of a disjunctive datalog rule
(Theorem 5.1); the outer max ranges over bag selectors.  The min-max
inequality gives ``subw(Q, S) <= fhtw(Q, S)`` for every query and statistics,
and the 4-cycle under identical cardinalities is the paper's example of a
strict gap (3/2 vs 2).

All the selector LPs share the same feasible region ``Γ_n ∧ S``; only the
min-target rows differ.  The DDR bound therefore re-solves one compiled
shared :class:`~repro.bounds.polymatroid.PolymatroidProgram` per selector
(the selector's rows are stacked ephemerally), which is where the
``region_hits`` counted by :func:`repro.lp.model.lp_cache_stats` come from.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.bounds.polymatroid import BoundResult, ddr_polymatroid_bound
from repro.ddr.rule import bag_selectors
from repro.decompositions.enumerate import enumerate_tree_decompositions
from repro.decompositions.treedecomp import TreeDecomposition
from repro.query.cq import ConjunctiveQuery
from repro.stats.constraints import ConstraintSet
from repro.utils.varsets import format_varset


@dataclass
class SelectorBound:
    """The DDR bound of one bag selector."""

    selector: tuple[frozenset[str], ...]
    bound: BoundResult

    def describe(self) -> str:
        bags = " ∨ ".join(format_varset(bag) for bag in self.selector)
        return f"[{bags}] -> {self.bound.exponent:.4g}"


@dataclass
class SubwResult:
    """The submodular width, its witnessing selector, and all selector bounds."""

    width: float
    decompositions: list[TreeDecomposition]
    selector_bounds: list[SelectorBound]

    @property
    def witness(self) -> SelectorBound:
        """The bag selector (and polymatroid) attaining the width."""
        return max(self.selector_bounds, key=lambda s: s.bound.exponent)

    def size_bound(self, statistics: ConstraintSet) -> float:
        return statistics.size_from_exponent(self.width)

    def describe(self) -> str:
        lines = [f"subw = {self.width:.4g} over {len(self.decompositions)} decompositions "
                 f"and {len(self.selector_bounds)} bag selectors"]
        for entry in self.selector_bounds:
            lines.append(f"  {entry.describe()}")
        return "\n".join(lines)


def submodular_width(query: ConjunctiveQuery, statistics: ConstraintSet,
                     decompositions: Sequence[TreeDecomposition] | None = None,
                     max_variables: int = 9) -> SubwResult:
    """Compute ``subw(Q, S)``: one objective per bag selector, one shared region."""
    if decompositions is None:
        decompositions = enumerate_tree_decompositions(query, max_variables=max_variables)
    decompositions = list(decompositions)
    if not decompositions:
        raise ValueError("the query admits no free-connex tree decomposition")
    selectors = bag_selectors(decompositions)
    bounds: list[SelectorBound] = []
    for selector in selectors:
        bound = ddr_polymatroid_bound(selector, statistics, variables=query.variables)
        bounds.append(SelectorBound(selector=selector, bound=bound))
    width = max(entry.bound.exponent for entry in bounds)
    return SubwResult(width=width, decompositions=decompositions,
                      selector_bounds=bounds)


def width_gap(query: ConjunctiveQuery, statistics: ConstraintSet,
              max_variables: int = 9) -> tuple[float, float]:
    """Convenience helper returning ``(subw, fhtw)``; subw <= fhtw always holds."""
    from repro.widths.fhtw import fractional_hypertree_width

    decompositions = enumerate_tree_decompositions(query, max_variables=max_variables)
    sub = submodular_width(query, statistics, decompositions=decompositions)
    frac = fractional_hypertree_width(query, statistics, decompositions=decompositions)
    return sub.width, frac.width
