"""Width measures: fractional hypertree width, submodular width, ω-submodular width."""

from repro.widths.fhtw import (
    DecompositionCost,
    FhtwResult,
    decomposition_cost,
    fractional_hypertree_width,
)
from repro.widths.subw import SelectorBound, SubwResult, submodular_width, width_gap
from repro.widths.omega import (
    OmegaWidthReport,
    crossover_omega,
    fmm_beats_combinatorial_four_cycle,
    four_cycle_combinatorial_subw_via_lp,
    four_cycle_width_report,
    gamma,
    mm_exponent,
    mm_exponent_from_dimensions,
    omega_submodular_width_four_cycle,
)

__all__ = [
    "fractional_hypertree_width",
    "decomposition_cost",
    "FhtwResult",
    "DecompositionCost",
    "submodular_width",
    "width_gap",
    "SubwResult",
    "SelectorBound",
    "mm_exponent",
    "mm_exponent_from_dimensions",
    "gamma",
    "omega_submodular_width_four_cycle",
    "fmm_beats_combinatorial_four_cycle",
    "four_cycle_combinatorial_subw_via_lp",
    "four_cycle_width_report",
    "crossover_omega",
    "OmegaWidthReport",
]
