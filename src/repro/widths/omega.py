"""The ω-submodular width and fast-matrix-multiplication costs (Section 9.3).

The paper quotes, from [44], two facts that this module reproduces:

* the information-theoretic cost of a single (square-blocked) fast matrix
  multiplication, Eq. (78):
  ``MM(X;Y;Z) = max(h(X)+h(Y)+γ·h(Z), h(X)+γ·h(Y)+h(Z), γ·h(X)+h(Y)+h(Z))``
  with ``γ = ω − 2``;
* the ω-submodular width of the Boolean 4-cycle under identical cardinality
  constraints, ``ω-subw(Q□bool, S□) = (4ω−1)/(2ω+1)``, which beats the
  (combinatorial) submodular width 3/2 exactly when ``ω < 5/2``.

The fully general ω-submodular width of [44] requires that paper's extended
variable-elimination plan space and is outside the scope of this tutorial
reproduction; the closed form for the 4-cycle, its crossover behaviour, and an
actual matrix-multiplication evaluation algorithm
(:mod:`repro.algorithms.matmul`) are what the tutorial itself presents and what
experiment E8 checks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.algorithms.matmul import OMEGA
from repro.entropy.setfunc import SetFunction


def gamma(omega: float = OMEGA) -> float:
    """``γ = ω − 2``, the exponent appearing in the blocked-FMM cost."""
    return omega - 2.0


def mm_exponent(h: SetFunction, x: Iterable[str] | str, y: Iterable[str] | str,
                z: Iterable[str] | str, omega: float = OMEGA) -> float:
    """``MM(X;Y;Z)`` from Eq. (78), evaluated on a set function ``h``.

    ``h(X), h(Y), h(Z)`` act as proxies for ``log m, log n, log p``: the log
    dimensions of the two matrices being multiplied.
    """
    g = gamma(omega)
    hx, hy, hz = h[x], h[y], h[z]
    return max(hx + hy + g * hz, hx + g * hy + hz, g * hx + hy + hz)


def mm_exponent_from_dimensions(m: float, n: float, p: float,
                                omega: float = OMEGA) -> float:
    """The blocked-FMM exponent for explicit (log-scale) dimensions."""
    g = gamma(omega)
    return max(m + n + g * p, m + g * n + p, g * m + n + p)


def omega_submodular_width_four_cycle(omega: float = OMEGA) -> float:
    """``ω-subw(Q□bool, S□) = (4ω−1)/(2ω+1)`` (Section 9.3, [44], [60], [21]).

    The value interpolates between 7/5 (if ω were 2) and 11/7 (for naive
    ω = 3); with the current best bound ω ≈ 2.371552 it is ≈ 1.4776, strictly
    below the combinatorial submodular width 3/2.
    """
    if omega < 2.0 or omega > 3.0:
        raise ValueError("the matrix multiplication exponent ω lies in [2, 3]")
    return (4.0 * omega - 1.0) / (2.0 * omega + 1.0)


def fmm_beats_combinatorial_four_cycle(omega: float = OMEGA) -> bool:
    """True when the FMM-based plan beats PANDA's N^{3/2} for the Boolean 4-cycle.

    Solving ``(4ω−1)/(2ω+1) < 3/2`` gives ``ω < 5/2``.
    """
    return omega_submodular_width_four_cycle(omega) < 1.5


def four_cycle_combinatorial_subw_via_lp(size: float = 1000.0) -> float:
    """``subw(Q□bool, S□)`` recomputed through the LP substrate.

    The closed form is 3/2; this re-derives it by solving the four
    bag-selector DDR LPs against the shared compiled ``Γ_4 ∧ S□`` region —
    the cross-check used by E8 (and by the LP-substrate benchmark) to tie the
    quoted ω-subw comparison back to an actual width computation.
    """
    from repro.query.library import four_cycle_boolean
    from repro.stats.constraints import statistics_for_query
    from repro.widths.subw import submodular_width

    query = four_cycle_boolean()
    statistics = statistics_for_query(query, size)
    return submodular_width(query, statistics).width


@dataclass
class OmegaWidthReport:
    """Comparison of the combinatorial and FMM widths of the Boolean 4-cycle."""

    omega: float
    submodular_width: float
    omega_submodular_width: float

    @property
    def speedup_exponent(self) -> float:
        return self.submodular_width - self.omega_submodular_width

    def describe(self) -> str:
        return (f"ω = {self.omega:.6g}: subw = {self.submodular_width:.4g}, "
                f"ω-subw = {self.omega_submodular_width:.6g} "
                f"(gain of N^{self.speedup_exponent:.4g})")


def four_cycle_width_report(omega: float = OMEGA,
                            verify_with_lp: bool = False,
                            size: float = 1000.0) -> OmegaWidthReport:
    """The E8 comparison: subw = 3/2 vs ω-subw = (4ω−1)/(2ω+1).

    With ``verify_with_lp`` the combinatorial width is recomputed through the
    submodular-width LPs (shared compiled region) instead of quoting the
    closed form — the two agree to solver precision.
    """
    submodular = four_cycle_combinatorial_subw_via_lp(size) if verify_with_lp else 1.5
    return OmegaWidthReport(
        omega=omega,
        submodular_width=submodular,
        omega_submodular_width=omega_submodular_width_four_cycle(omega),
    )


def crossover_omega() -> float:
    """The ω value at which FMM stops helping the Boolean 4-cycle (ω = 5/2)."""
    return 2.5
