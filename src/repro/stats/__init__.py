"""Degree constraints, ℓp-norm constraints and statistics collection (Sections 3.2, 9.2)."""

from repro.stats.constraints import (
    ConstraintSet,
    DegreeConstraint,
    LpNormConstraint,
    identical_cardinalities,
    log_with_base,
    statistics_for_query,
)
from repro.stats.collect import collect_statistics, satisfies, validate

__all__ = [
    "DegreeConstraint",
    "LpNormConstraint",
    "ConstraintSet",
    "identical_cardinalities",
    "statistics_for_query",
    "log_with_base",
    "collect_statistics",
    "validate",
    "satisfies",
]
