"""Input statistics: degree constraints and ℓp-norm constraints (Sections 3.2, 9.2).

A *degree constraint* ``deg_R(Y | X) <= N_{Y|X}`` bounds, for every fixed value
of the variables ``X``, the number of distinct ``Y`` values that co-occur with
it in the guard relation ``R``.  Cardinality constraints (``X = ∅``) and
functional dependencies (``N_{Y|X} = 1``) are special cases.  ℓp-norm
constraints bound the ℓk norm of the whole degree vector and strictly
generalise degree constraints (the max degree is the ℓ∞ norm).

All bound computations in this library work on a *log_N scale*: a constraint
with bound ``b`` contributes the linear inequality ``h(Y|X) <= log_N(b)`` (or
``h(X)/k + h(Y|X) <= log_N(b)`` for an ℓk-norm constraint) to the polymatroid
LP, where ``N`` is the reference input size stored on the
:class:`ConstraintSet`.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from repro.utils.varsets import format_varset, varset


@dataclass(frozen=True)
class DegreeConstraint:
    """``deg_guard(target | given) <= bound``.

    ``given`` may be empty, in which case this is the cardinality constraint
    ``|π_target(guard)| <= bound``.  ``guard`` is the name of the relation the
    statistic was measured on; it is optional for purely symbolic statistics
    but required by the PANDA executor (which needs to know which relation to
    read the initial sub-probability measure from).
    """

    target: frozenset[str]
    given: frozenset[str]
    bound: float
    guard: str | None = None

    def __post_init__(self) -> None:
        if self.target & self.given:
            raise ValueError("target and given variable sets must be disjoint")
        if not self.target:
            raise ValueError("a degree constraint needs a non-empty target set")
        if self.bound < 0:
            raise ValueError("a degree bound cannot be negative")

    @property
    def variables(self) -> frozenset[str]:
        return self.target | self.given

    @property
    def is_cardinality(self) -> bool:
        return not self.given

    @property
    def is_functional_dependency(self) -> bool:
        return bool(self.given) and self.bound <= 1

    def exponent(self, base: float) -> float:
        """``log_base(bound)``, the right-hand side in the polymatroid LP."""
        return log_with_base(self.bound, base)

    def __str__(self) -> str:
        guard = f" in {self.guard}" if self.guard else ""
        if self.is_cardinality:
            return f"|{format_varset(self.target)}| <= {self.bound:g}{guard}"
        return (f"deg({format_varset(self.target)} | {format_varset(self.given)})"
                f" <= {self.bound:g}{guard}")


@dataclass(frozen=True)
class LpNormConstraint:
    """``||deg_guard(target | given = ·)||_order <= bound`` (Eq. (72)).

    Contributes ``h(given)/order + h(target|given) <= log_N(bound)`` to the
    polymatroid LP (Eq. (73)).  ``order = inf`` degenerates to a plain degree
    constraint.
    """

    target: frozenset[str]
    given: frozenset[str]
    order: float
    bound: float
    guard: str | None = None

    def __post_init__(self) -> None:
        if self.target & self.given:
            raise ValueError("target and given variable sets must be disjoint")
        if not self.target:
            raise ValueError("an lp-norm constraint needs a non-empty target set")
        if self.order < 1:
            raise ValueError("the norm order must be at least 1")

    @property
    def variables(self) -> frozenset[str]:
        return self.target | self.given

    def exponent(self, base: float) -> float:
        return log_with_base(self.bound, base)

    def as_degree_constraint(self) -> DegreeConstraint:
        """The equivalent degree constraint when ``order == inf``."""
        if self.order != float("inf"):
            raise ValueError("only the ℓ∞ norm is a plain degree constraint")
        return DegreeConstraint(self.target, self.given, self.bound, self.guard)

    def __str__(self) -> str:
        guard = f" in {self.guard}" if self.guard else ""
        order = "∞" if self.order == float("inf") else f"{self.order:g}"
        return (f"||deg({format_varset(self.target)} | {format_varset(self.given)})"
                f"||_{order} <= {self.bound:g}{guard}")


def log_with_base(value: float, base: float) -> float:
    """``log_base(value)`` with the conventions used throughout the paper.

    ``value <= 1`` maps to 0 (a functional dependency has exponent 0); a base
    of 1 or less would make the scale meaningless, so it is rejected.
    """
    if base <= 1:
        raise ValueError("the log base N must be larger than 1")
    if value <= 1:
        return 0.0
    return math.log(value) / math.log(base)


class ConstraintSet:
    """A set of statistics ``S`` together with the reference input size ``N``.

    The reference size fixes the log scale used by every bound and width
    computation: a cardinality constraint of ``N`` has exponent 1, one of
    ``N^{3/2}`` has exponent 1.5, and so on.
    """

    def __init__(self,
                 constraints: Iterable[DegreeConstraint | LpNormConstraint] = (),
                 base: float = 2.0) -> None:
        if base <= 1:
            raise ValueError("the reference size N must be larger than 1")
        self.base = float(base)
        self._degree: list[DegreeConstraint] = []
        self._lp_norm: list[LpNormConstraint] = []
        for constraint in constraints:
            self.add(constraint)

    # ----------------------------------------------------------- population
    def add(self, constraint: DegreeConstraint | LpNormConstraint) -> None:
        if isinstance(constraint, DegreeConstraint):
            self._degree.append(constraint)
        elif isinstance(constraint, LpNormConstraint):
            self._lp_norm.append(constraint)
        else:
            raise TypeError(f"unsupported constraint type: {type(constraint)!r}")

    def add_cardinality(self, variables: Iterable[str] | str, bound: float,
                        guard: str | None = None) -> DegreeConstraint:
        """Add ``|π_variables(guard)| <= bound`` and return the constraint."""
        constraint = DegreeConstraint(varset(variables), frozenset(), bound, guard)
        self.add(constraint)
        return constraint

    def add_degree(self, target: Iterable[str] | str, given: Iterable[str] | str,
                   bound: float, guard: str | None = None) -> DegreeConstraint:
        """Add ``deg_guard(target | given) <= bound`` and return the constraint."""
        constraint = DegreeConstraint(varset(target), varset(given), bound, guard)
        self.add(constraint)
        return constraint

    def add_functional_dependency(self, given: Iterable[str] | str,
                                  target: Iterable[str] | str,
                                  guard: str | None = None) -> DegreeConstraint:
        """Add the FD ``given -> target`` on the guard relation."""
        return self.add_degree(target, given, 1.0, guard)

    def add_lp_norm(self, target: Iterable[str] | str, given: Iterable[str] | str,
                    order: float, bound: float,
                    guard: str | None = None) -> LpNormConstraint:
        """Add an ℓ_order norm constraint on a degree vector."""
        constraint = LpNormConstraint(varset(target), varset(given), float(order),
                                      bound, guard)
        self.add(constraint)
        return constraint

    # ----------------------------------------------------------------- views
    @property
    def degree_constraints(self) -> tuple[DegreeConstraint, ...]:
        return tuple(self._degree)

    @property
    def lp_norm_constraints(self) -> tuple[LpNormConstraint, ...]:
        return tuple(self._lp_norm)

    def __iter__(self) -> Iterator[DegreeConstraint | LpNormConstraint]:
        yield from self._degree
        yield from self._lp_norm

    def __len__(self) -> int:
        return len(self._degree) + len(self._lp_norm)

    @property
    def variables(self) -> frozenset[str]:
        result: set[str] = set()
        for constraint in self:
            result.update(constraint.variables)
        return frozenset(result)

    def cardinality_constraints(self) -> list[DegreeConstraint]:
        return [c for c in self._degree if c.is_cardinality]

    def has_only_cardinalities(self) -> bool:
        return not self._lp_norm and all(c.is_cardinality for c in self._degree)

    def constraints_guarded_by(self, relation: str) -> list[DegreeConstraint | LpNormConstraint]:
        return [c for c in self if c.guard == relation]

    # ----------------------------------------------------------- identity
    def constraint_descriptors(self, rename=None) -> list[tuple]:
        """Hashable descriptors of the constraints, one per constraint.

        ``rename`` optionally maps every variable name before it enters the
        descriptor — the engine fingerprints statistics in a query's
        *canonical* variable space this way.  This is the single source of
        truth for what identifies a constraint: both :meth:`fingerprint` and
        the engine's renaming-aware fingerprint hash these descriptors, so a
        new constraint field only needs to be added here to reach every
        cache key.
        """
        if rename is None:
            rename = lambda variable: variable  # noqa: E731

        def mapped(variables) -> tuple[str, ...]:
            return tuple(sorted(rename(variable) for variable in variables))

        descriptors = []
        for constraint in self:
            if isinstance(constraint, DegreeConstraint):
                descriptors.append(("deg", mapped(constraint.target),
                                    mapped(constraint.given),
                                    repr(constraint.bound), constraint.guard or ""))
            else:
                descriptors.append(("lpnorm", mapped(constraint.target),
                                    mapped(constraint.given),
                                    repr(constraint.order),
                                    repr(constraint.bound), constraint.guard or ""))
        return descriptors

    def fingerprint(self) -> str:
        """A content fingerprint of the statistics (order-insensitive).

        Two :class:`ConstraintSet` objects with the same reference size and
        the same multiset of constraints produce the same fingerprint; the LP
        substrate keys its shared polymatroid-region and Shannon-flow caches
        on it, so structurally identical statistics reuse compiled feasible
        regions no matter which object carries them.  Mutating the set (via
        :meth:`add`) changes the fingerprint.
        """
        digest = hashlib.sha1()
        digest.update(repr(self.base).encode())
        digest.update(repr(sorted(self.constraint_descriptors())).encode())
        return digest.hexdigest()

    # --------------------------------------------------------------- scaling
    def exponent_of(self, constraint: DegreeConstraint | LpNormConstraint) -> float:
        """``log_N`` of the constraint's bound."""
        return constraint.exponent(self.base)

    def size_from_exponent(self, exponent: float) -> float:
        """``N ** exponent``: converts a log-scale bound back to a count."""
        return self.base ** exponent

    def __str__(self) -> str:
        lines = [f"Statistics over N = {self.base:g}:"]
        lines.extend(f"  {constraint}" for constraint in self)
        return "\n".join(lines)


def identical_cardinalities(varsets_list: Sequence[Iterable[str] | str], size: float,
                            guards: Sequence[str | None] | None = None) -> ConstraintSet:
    """The classic "all relations have size N" statistics (Section 3.2).

    This is the statistics object the original AGM bound and Marx's submodular
    width assume; it is also the paper's ``S□`` when applied to the four edge
    relations of the 4-cycle query.
    """
    statistics = ConstraintSet(base=size)
    for index, variables in enumerate(varsets_list):
        guard = guards[index] if guards else None
        statistics.add_cardinality(variables, size, guard=guard)
    return statistics


def statistics_for_query(query, size: float) -> ConstraintSet:
    """Identical cardinality constraints (= ``size``) for every atom of a query."""
    statistics = ConstraintSet(base=size)
    for atom in query.atoms:
        statistics.add_cardinality(atom.varset, size, guard=atom.relation)
    return statistics
