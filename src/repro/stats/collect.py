"""Collecting statistics from a concrete database and validating ``D |= S``.

The paper treats statistics as *given*; a real optimizer has to measure them.
:func:`collect_statistics` computes, for every atom of a query, the
cardinality of the bound relation and the maximum degrees (and optionally the
ℓ2 norms) for every split of the atom's variables into a "given" and a
"target" part.  :func:`validate` checks that a database satisfies a constraint
set, which the tests use to confirm that worst-case bounds really are upper
bounds on real instances.
"""

from __future__ import annotations

from itertools import combinations
from typing import Iterable

from repro.query.cq import ConjunctiveQuery
from repro.relational.database import Database
from repro.stats.constraints import ConstraintSet, DegreeConstraint, LpNormConstraint


def collect_statistics(database: Database, query: ConjunctiveQuery,
                       include_degrees: bool = True,
                       include_l2_norms: bool = False,
                       base: float | None = None) -> ConstraintSet:
    """Measure statistics of ``database`` relevant to ``query``.

    Parameters
    ----------
    include_degrees:
        When true (the default), add a max-degree constraint for every
        non-trivial split of each atom's variables.
    include_l2_norms:
        When true, also add ℓ2-norm constraints for single-variable splits of
        binary atoms (the case worked out in Section 9.2).
    base:
        The reference size ``N``; defaults to the largest relation size (at
        least 2 so the log scale is well defined).

    Degree probes go through each bound relation's storage backend, so under
    a caching backend the group-by structures built here are the same ones
    the executor's partitioning and measure initialisation consume — and a
    second collection over the same database is served entirely from cache.
    """
    if base is None:
        base = max(2.0, float(database.max_relation_size()))
    statistics = ConstraintSet(base=base)
    for atom, bound_relation in zip(query.atoms, database.bind_query(query)):
        variables = sorted(atom.varset)
        # Record the *true* cardinality — including 0 for an empty relation.
        # The seed clamped here (``max(1, len)``), which made an empty atom
        # report cardinality 1 and degree 1, inflating PANDA's size bound and
        # hiding guaranteed-empty queries from the planner.  Clamping belongs
        # in log space only, where ``log_with_base`` already maps any bound
        # <= 1 to exponent 0 for the polymatroid LP.
        statistics.add_cardinality(atom.varset, len(bound_relation),
                                   guard=atom.relation)
        if not include_degrees or len(variables) < 2:
            continue
        for given_size in range(1, len(variables)):
            for given in combinations(variables, given_size):
                given_set = frozenset(given)
                target_set = atom.varset - given_set
                degree = bound_relation.degree(target_set, given_set)
                statistics.add_degree(target_set, given_set, degree,
                                      guard=atom.relation)
                if include_l2_norms and len(given_set) == 1:
                    norm = bound_relation.lp_norm_of_degrees(target_set, given_set, 2.0)
                    statistics.add_lp_norm(target_set, given_set, 2.0, norm,
                                           guard=atom.relation)
    return statistics


def validate(database: Database, query: ConjunctiveQuery,
             statistics: ConstraintSet) -> list[str]:
    """Return a list of violated constraints (empty when ``D |= S``).

    A constraint with a guard is checked against that relation; a guard-less
    constraint is checked against every atom whose variables contain the
    constraint's variables (it must hold on all of them).
    """
    violations: list[str] = []
    for constraint in statistics:
        for atom in _guarding_atoms(query, constraint):
            relation = database.bind_atom(atom)
            if isinstance(constraint, DegreeConstraint):
                actual = relation.degree(constraint.target, constraint.given)
                if actual > constraint.bound + 1e-9:
                    violations.append(
                        f"{constraint} violated on {atom}: actual degree {actual}")
            elif isinstance(constraint, LpNormConstraint):
                actual = relation.lp_norm_of_degrees(constraint.target,
                                                     constraint.given,
                                                     constraint.order)
                if actual > constraint.bound + 1e-6:
                    violations.append(
                        f"{constraint} violated on {atom}: actual norm {actual:.4f}")
    return violations


def satisfies(database: Database, query: ConjunctiveQuery,
              statistics: ConstraintSet) -> bool:
    """``True`` when the database satisfies every constraint (``D |= S``)."""
    return not validate(database, query, statistics)


def _guarding_atoms(query: ConjunctiveQuery, constraint) -> Iterable:
    """The atoms a constraint should be checked against."""
    if constraint.guard is not None:
        atoms = [atom for atom in query.atoms if atom.relation == constraint.guard
                 and constraint.variables <= atom.varset]
        if atoms:
            return atoms
        return []
    return [atom for atom in query.atoms if constraint.variables <= atom.varset]
