"""The in-memory relational engine substrate."""

from repro.relational.relation import Relation, relation_from_pairs
from repro.relational.database import Database, database_from_edges
from repro.relational.operators import (
    WorkCounter,
    cartesian_product,
    join_all,
    project,
    semijoin_reduce,
    union_all,
)
from repro.relational.semiring import (
    BOOLEAN_SEMIRING,
    COUNTING_SEMIRING,
    MAX_MIN_SEMIRING,
    MIN_PLUS_SEMIRING,
    AnnotatedRelation,
    Semiring,
)

__all__ = [
    "Relation",
    "relation_from_pairs",
    "Database",
    "database_from_edges",
    "WorkCounter",
    "join_all",
    "project",
    "semijoin_reduce",
    "cartesian_product",
    "union_all",
    "Semiring",
    "AnnotatedRelation",
    "BOOLEAN_SEMIRING",
    "COUNTING_SEMIRING",
    "MIN_PLUS_SEMIRING",
    "MAX_MIN_SEMIRING",
]
