"""The in-memory relational engine substrate.

Relations are facades over pluggable storage backends (``"set"`` is the
semantics reference, ``"columnar"`` adds cached indexes); see
:mod:`repro.relational.storage` for backend selection helpers.
"""

from repro.relational.kernels import (
    kernel_ready,
    kernel_stats,
    kernel_stats_delta,
    kernels_enabled,
    reset_kernel_stats,
    set_kernels_enabled,
    using_kernels,
)
from repro.relational.storage import (
    ANNOTATED_BACKENDS,
    BACKENDS,
    AnnotatedBackend,
    ColumnarAnnotatedBackend,
    ColumnarBackend,
    DictAnnotatedBackend,
    SetBackend,
    StorageBackend,
    get_default_backend,
    register_backend,
    resolve_annotated_backend,
    set_default_backend,
    stable_row_hash,
    using_backend,
)
from repro.relational.relation import Relation, relation_from_pairs
from repro.relational.database import Database, database_from_edges
from repro.relational.operators import (
    WorkCounter,
    cartesian_product,
    join_all,
    project,
    semijoin_reduce,
    union_all,
)
from repro.relational.semiring import (
    BOOLEAN_SEMIRING,
    BUILTIN_SEMIRINGS,
    COUNTING_SEMIRING,
    MAX_MIN_SEMIRING,
    MAX_TIMES_SEMIRING,
    MIN_PLUS_SEMIRING,
    AnnotatedRelation,
    Semiring,
    top_k_min_plus_semiring,
)

__all__ = [
    "StorageBackend",
    "SetBackend",
    "ColumnarBackend",
    "BACKENDS",
    "AnnotatedBackend",
    "DictAnnotatedBackend",
    "ColumnarAnnotatedBackend",
    "ANNOTATED_BACKENDS",
    "resolve_annotated_backend",
    "register_backend",
    "get_default_backend",
    "set_default_backend",
    "stable_row_hash",
    "using_backend",
    "kernel_ready",
    "kernel_stats",
    "kernel_stats_delta",
    "kernels_enabled",
    "reset_kernel_stats",
    "set_kernels_enabled",
    "using_kernels",
    "Relation",
    "relation_from_pairs",
    "Database",
    "database_from_edges",
    "WorkCounter",
    "join_all",
    "project",
    "semijoin_reduce",
    "cartesian_product",
    "union_all",
    "Semiring",
    "AnnotatedRelation",
    "BOOLEAN_SEMIRING",
    "COUNTING_SEMIRING",
    "MIN_PLUS_SEMIRING",
    "MAX_MIN_SEMIRING",
    "MAX_TIMES_SEMIRING",
    "BUILTIN_SEMIRINGS",
    "top_k_min_plus_semiring",
]
