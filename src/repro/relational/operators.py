"""Free-standing relational operators used by the evaluation algorithms.

These functions complement the methods on :class:`~repro.relational.relation.Relation`
with multi-way variants (joining a list of relations, semijoin-reducing a set
of relations to global consistency) and with an instrumented join that counts
intermediate tuples — the quantity the paper's cost model bounds.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.relational.relation import Relation


@dataclass
class WorkCounter:
    """Counts the work performed by an evaluation algorithm.

    ``intermediate_tuples`` accumulates the sizes of every materialised
    intermediate relation; ``max_intermediate`` tracks the largest one, which
    is exactly the cost measure of Section 4.1 of the paper.

    Counters are thread-safe: every update happens under an internal lock,
    so a counter shared between the engine's partition-parallel shard workers
    never loses counts.  (The engine's default is still one counter per
    worker, merged at join — :meth:`merge` snapshots the source under its own
    lock, so merging is safe in either topology.)

    ``cancellation`` optionally carries a cooperative cancellation token
    (:class:`~repro.utils.cancellation.CancellationToken`).  The evaluation
    algorithms call :meth:`check` inside their inner loops — the generic
    join every few hundred explored partial assignments, Yannakakis and the
    FAQ evaluator at every operator step — so a cancelled or
    deadline-exceeded query raises
    :class:`~repro.utils.cancellation.QueryCancelledError` mid-plan, with the
    work performed up to that point still tallied.  :meth:`check` is explicit
    and never called by :meth:`tally`/:meth:`record`, so accounting stays
    pure: a cancelled algorithm can tally its partial work before re-raising.
    """

    intermediate_tuples: int = 0
    max_intermediate: int = 0
    materializations: int = 0
    notes: list[str] = field(default_factory=list)
    #: Per-plan-node observed sizes, ``(kind, variables, rows)`` triples
    #: recorded by the runners and consumed by the telemetry cardinality
    #: profiler.  Plain tuples so they pickle across shard workers and merge
    #: exactly like the scalar counters.
    observations: list[tuple[str, tuple[str, ...], int]] = \
        field(default_factory=list)
    #: Optional cooperative-cancellation token (anything with ``check()``).
    cancellation: object | None = field(default=None, repr=False, compare=False)
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)

    def check(self) -> None:
        """Consult the cancellation token, raising if the query should stop."""
        token = self.cancellation
        if token is not None:
            token.check()

    def record(self, relation: Relation, note: str | None = None) -> Relation:
        size = len(relation)
        self.tally(size, size, note=f"{note}: {size} tuples" if note else None)
        return relation

    def tally(self, tuples: int, largest: int, note: str | None = None) -> None:
        """Account one batch of work (e.g. a whole join's exploration) atomically."""
        with self._lock:
            self.intermediate_tuples += tuples
            self.max_intermediate = max(self.max_intermediate, largest)
            self.materializations += 1
            if note:
                self.notes.append(note)

    def observe_node(self, kind: str, variables: Iterable[str],
                     rows: int) -> None:
        """Record one plan node's observed size for the cardinality profiler.

        Deliberately separate from :meth:`tally`: a node observation is a
        *label-resolved* fact ("bag {x,y,z} materialised 412 rows"), not a
        work total, so it must not double-count into ``intermediate_tuples``.
        """
        with self._lock:
            self.observations.append((str(kind), tuple(variables), int(rows)))

    def observe_max(self, largest: int) -> None:
        """Raise ``max_intermediate`` to at least ``largest``, atomically.

        The adaptive runner folds a report's peak intermediate back into a
        counter that parallel shard workers may be moving concurrently; a
        bare ``counter.max_intermediate = max(...)`` here is the same
        read-modify-write race :meth:`tally` exists to prevent (lint rule
        REP101), so the fold gets its own locked method.
        """
        with self._lock:
            self.max_intermediate = max(self.max_intermediate, largest)

    def merge(self, other: "WorkCounter") -> None:
        # Snapshot under the source lock, apply under ours: never nested, so
        # two threads merging in opposite directions cannot deadlock.
        with other._lock:
            tuples = other.intermediate_tuples
            largest = other.max_intermediate
            materializations = other.materializations
            notes = list(other.notes)
            observations = list(other.observations)
        with self._lock:
            self.intermediate_tuples += tuples
            self.max_intermediate = max(self.max_intermediate, largest)
            self.materializations += materializations
            self.notes.extend(notes)
            self.observations.extend(observations)

    # Locks cannot cross pickle (process-parallel shard payloads) — drop the
    # lock on the way out and give the copy a fresh one.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._lock = threading.Lock()


def join_all(relations: Sequence[Relation],
             counter: WorkCounter | None = None,
             name: str = "⋈") -> Relation:
    """Natural join of a list of relations, left to right.

    The result of an empty list is the nullary relation with a single empty
    tuple (the unit of natural join).
    """
    if not relations:
        return Relation(name, (), [()])
    result = relations[0]
    for relation in relations[1:]:
        result = result.hash_join(relation)
        if counter is not None:
            counter.record(result, note=f"join step -> {result.columns}")
    return result.copy(name)


def project(relation: Relation, columns: Iterable[str], name: str | None = None) -> Relation:
    """Projection preserving the relation's column order.

    Requesting a column the relation does not have is an immediate, clearly
    attributed error (rather than a deferred ``KeyError`` from deep inside
    :meth:`Relation.project`).
    """
    columns = list(columns)
    missing = [c for c in columns if c not in relation.column_set]
    if missing:
        raise KeyError(
            f"cannot project relation {relation.name!r} onto {columns}: "
            f"missing columns {missing} (available: {list(relation.columns)})"
        )
    ordered = [c for c in relation.columns if c in set(columns)]
    return relation.project(ordered, name=name)


def semijoin_reduce(relations: Sequence[Relation],
                    counter: WorkCounter | None = None) -> list[Relation]:
    """Full semijoin reduction to (pairwise) consistency.

    Semijoins relations against their schema-overlapping neighbours until no
    relation shrinks.  For acyclic joins arranged along a join tree the
    classical Yannakakis algorithm needs only two passes; this generic version
    is used when no join tree is available (e.g. to clean up PANDA's bag
    relations) and always terminates because sizes only decrease.

    Instead of re-scanning all pairs after every change (O(n²) per pass), a
    worklist tracks which relations may still shrink: when relation ``j``
    shrinks, only the neighbours of ``j`` — the relations ``j`` can filter —
    are revisited.  The fixpoint (the unique maximal pairwise-consistent
    sub-instance) is the same as the all-pairs version's.
    """
    current = [relation.copy() for relation in relations]
    neighbours: list[list[int]] = [
        [j for j, other in enumerate(relations)
         if j != i and (relations[i].column_set & other.column_set)]
        for i in range(len(relations))
    ]
    pending = deque(range(len(current)))
    queued = set(pending)
    while pending:
        i = pending.popleft()
        queued.discard(i)
        for j in neighbours[i]:
            reduced = current[i].semijoin(current[j])
            if len(reduced) < len(current[i]):
                current[i] = reduced
                if counter is not None:
                    counter.record(reduced, note=f"semijoin {reduced.name}")
                # i shrank, so every relation i can filter may shrink too.
                for k in neighbours[i]:
                    if k not in queued:
                        pending.append(k)
                        queued.add(k)
    return current


def cartesian_product(left: Relation, right: Relation,
                      name: str | None = None) -> Relation:
    """Cartesian product of two relations over disjoint schemas."""
    if left.column_set & right.column_set:
        raise ValueError("cartesian_product requires disjoint schemas")
    rows = [l + r for l in left for r in right]
    return Relation(name or f"({left.name} × {right.name})",
                    left.columns + right.columns, rows)


def empty_like(relation: Relation, name: str | None = None) -> Relation:
    """An empty relation with the same schema."""
    return Relation(name or relation.name, relation.columns, [])


def union_all(relations: Sequence[Relation], columns: Sequence[str],
              name: str = "∪") -> Relation:
    """Union of relations projected onto a common column list."""
    result = Relation(name, tuple(columns), [])
    for relation in relations:
        projected = relation.project(columns)
        for row in projected:
            result.add(row)
    return result
