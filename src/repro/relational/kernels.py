"""Vectorized NumPy kernels over dictionary-encoded columns.

The columnar backends cache the *right* access structures, but until this
module the joins themselves still ran tuple-at-a-time in Python.  The kernels
here move the hot loops into NumPy over the backends' dictionary-encoded
``int64`` code arrays (see
:class:`~repro.relational.storage.ColumnDictionary`):

* **encode** — each participating column is dictionary-encoded once (cached
  on the backend, COW-shared like the hash indexes); codes of one side are
  translated into the other side's code space through a memoized translation
  table, so equality of codes is equality of values;
* **kernel** — hash joins and semijoins become sort + ``searchsorted`` range
  lookups, projections become ``np.unique`` over packed keys, the generic
  worst-case-optimal join becomes a breadth-first frontier of per-level code
  arrays, and per-semiring ⊕-marginalization becomes
  ``np.add/minimum/maximum.reduceat`` over sorted groups;
* **decode** — set-semantics outputs *stay encoded*: kernels return
  ``(decode lists, int64 code arrays, length)`` triples that become
  ``ColumnarBackend.from_encoded`` backends, so a chain of joins, semijoins
  and projections never materialises intermediate Python tuples and each
  derived backend realises its own dictionaries vectorized
  (:meth:`ColumnDictionary.from_codes`).  Rows are decoded lazily — by
  fancy-indexing object-dtype decode columns and ``zip``-ing the original
  Python value objects back — only when something actually reads them, so
  results are bit-identical to the reference ``SetBackend`` path.

Every kernel is *exact or absent*: value domains that cannot be reproduced
exactly in vector form (non-``int``/``float`` annotations, magnitudes that
could overflow ``int64`` sums, packed key spaces past ``_PACK_LIMIT``, or a
semiring without a registered reduction) return ``None`` and the caller falls
back to the reference Python path.  Usage and fallback counters are collected
process-wide (:func:`kernel_stats`) and surfaced through
``EngineStats.kernel_cache_events``; the per-backend encode counters
(``dictionary_builds``/``dictionary_hits``) flow through
``Database.cache_stats`` like every other index counter.

The kernels are selected via a backend capability flag
(``supports_kernels``) plus the process-wide :func:`kernels_enabled` toggle —
``using_kernels(False)`` restores the reference path everywhere, which is how
the parity suites and the ``bench_vectorized_kernels`` benchmark compare the
two implementations.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from typing import Iterable, Sequence

try:  # numpy is a declared runtime dependency, but stay importable without it
    import numpy as np
except ImportError:  # pragma: no cover - exercised only on broken installs
    np = None  # type: ignore[assignment]

#: Packed join keys must stay below this bound so Horner-packed ``int64``
#: keys cannot overflow (tests shrink it to force the fallback path).
_PACK_LIMIT = 1 << 62

#: Counting-semiring guards: annotation magnitudes and matched-pair counts
#: small enough that every sum-of-products stays exactly representable in
#: ``int64`` (values < 2^20, pairwise products < 2^40, sums over < 2^22
#: terms < 2^62).
_COUNT_VALUE_LIMIT = 1 << 20
_COUNT_PAIR_LIMIT = 1 << 22

#: Per-backend kernel memo dicts reset wholesale past this many entries.
_MEMO_CAPACITY = 512

_enabled = True
_stats: dict[str, int] = {}
_stats_lock = threading.Lock()


# ---------------------------------------------------------------------------
# toggle, capability flag, counters
# ---------------------------------------------------------------------------

def kernels_enabled() -> bool:
    """Whether the vectorized kernel path is active (and numpy importable)."""
    return _enabled and np is not None


def set_kernels_enabled(flag: bool) -> None:
    """Switch the process-wide kernel toggle (see :func:`using_kernels`)."""
    global _enabled
    _enabled = bool(flag)


@contextmanager
def using_kernels(flag: bool):
    """Temporarily force the kernel toggle (for tests and benchmarks)."""
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    try:
        yield
    finally:
        _enabled = previous


def kernel_ready(*backends) -> bool:
    """True when kernels are on and every backend advertises support."""
    if not kernels_enabled():
        return False
    return all(getattr(backend, "supports_kernels", False)
               for backend in backends)


def _count(event: str, amount: int = 1) -> None:
    with _stats_lock:
        _stats[event] = _stats.get(event, 0) + amount


def kernel_stats() -> dict[str, int]:
    """A snapshot of the process-wide kernel usage/fallback counters."""
    with _stats_lock:
        return dict(_stats)


def kernel_stats_delta(before: dict[str, int]) -> dict[str, int]:
    """Counter movements since a :func:`kernel_stats` snapshot."""
    after = kernel_stats()
    return {event: after.get(event, 0) - before.get(event, 0)
            for event in set(after) | set(before)}


def reset_kernel_stats() -> None:
    with _stats_lock:
        _stats.clear()


# ---------------------------------------------------------------------------
# per-backend memos for kernel access structures
# ---------------------------------------------------------------------------

def _memo(backend, key, build):
    """Memoize ``build()`` in the backend's kernel-memo dict (if it has one).

    Packed key arrays, sort permutations and member sets are pure functions
    of a backend's stored rows (plus the target dictionaries' ``uid``s baked
    into ``key``), so they are cached exactly like the backends' other access
    structures — until the next mutation — and repeated evaluations only pay
    the probes.  Build/hit counters flow through the backend's ``stats`` like
    every other index counter.  ``None`` results (pack overflow) are not
    cached; those callers fall back anyway.
    """
    memos = getattr(backend, "_kernel_memos", None)
    if memos is None:
        return build()
    value = memos.get(key)
    if value is None:
        value = build()
        if value is not None:
            if len(memos) >= _MEMO_CAPACITY:
                # Keys embed the counterpart dictionaries' uids, so a
                # long-lived backend probed by a stream of transient
                # relations would otherwise accumulate dead entries.
                memos.clear()
            memos[key] = value
            backend._count("kernel_memo_builds")
    else:
        backend._count("kernel_memo_hits")
    return value


# ---------------------------------------------------------------------------
# packing and matching primitives
# ---------------------------------------------------------------------------

def _pack(columns: Sequence, dims: Sequence[int], length: int):
    """Horner-pack per-column code arrays into one ``int64`` key per row.

    ``dims[i]`` bounds the code space of ``columns[i]``; returns ``None``
    when the combined key space could overflow (callers then fall back).
    An empty column list packs every row to key ``0``.
    """
    if not columns:
        return np.zeros(length, dtype=np.int64)
    space = 1
    for dim in dims:
        space *= max(int(dim), 1)
        if space > _PACK_LIMIT:
            return None
    packed = columns[0].astype(np.int64, copy=True)
    for column, dim in zip(columns[1:], dims[1:]):
        packed *= max(int(dim), 1)
        packed += column
    return packed


#: Dense lookup tables over the packed key space replace ``searchsorted``
#: probes when the space is at most this factor times the row count (beyond
#: it, table construction and memory would dominate the probes they save).
_LUT_SPACE_FACTOR = 8
_LUT_SPACE_FLOOR = 1 << 16

#: Memo sentinel: the packed key space is too large for a dense table.
_TOO_BIG = "too-big"


def _lut_capacity(rows: int) -> int:
    return max(_LUT_SPACE_FLOOR, _LUT_SPACE_FACTOR * max(rows, 1))


def _expand_ranges(order, starts, counts):
    """Expand per-right-row equal ranges of the sorted left side into pairs."""
    total = int(counts.sum())
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return empty, empty
    right_idx = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    block_starts = np.cumsum(counts) - counts
    within = np.arange(total, dtype=np.int64) - np.repeat(block_starts, counts)
    left_idx = order[np.repeat(starts, counts) + within]
    return left_idx, right_idx


def _match_pairs(left, left_key, dims, right_keys):
    """All (left row, right row) index pairs with equal packed keys.

    The left side's (memoized) stable sort permutation gives each right key
    an equal range — found through a dense start/count lookup table when the
    packed key space is small (one gather per side), through two
    ``searchsorted`` probes otherwise — and the ranges expand without a
    Python loop.  Negative right keys (untranslatable values) match nothing
    because left keys are always non-negative codes.
    """
    sorted_packed = _sorted_self_keys(left, left_key)
    order, sorted_keys = sorted_packed
    lut = _range_lut(left, left_key, dims)
    if lut is not _TOO_BIG:
        starts_lut, counts_lut = lut
        # Slot `space` is a zero-count sentinel for untranslatable rows.
        probes = np.where(right_keys < 0, starts_lut.size - 1, right_keys)
        return _expand_ranges(order, starts_lut[probes], counts_lut[probes])
    starts = np.searchsorted(sorted_keys, right_keys, side="left")
    ends = np.searchsorted(sorted_keys, right_keys, side="right")
    return _expand_ranges(order, starts, ends - starts)


def _range_lut(backend, positions, dims):
    """Memoized ``(starts, counts)`` tables over the packed key space.

    ``starts[k]``/``counts[k]`` locate key ``k``'s equal range in the
    backend's sorted key permutation; the extra final slot holds an empty
    range for the ``-1`` sentinel.  Returns :data:`_TOO_BIG` when the space
    does not fit the dense-table budget.
    """
    space = 1
    for dim in dims:
        space *= max(int(dim), 1)
    if space > _lut_capacity(len(backend)):
        return _TOO_BIG

    def build():
        _, sorted_keys = _sorted_self_keys(backend, positions)
        counts = np.bincount(sorted_keys, minlength=space).astype(np.int64)
        starts = np.cumsum(counts) - counts
        return (np.append(starts, 0), np.append(counts, 0))
    return _memo(backend, ("ranges", positions), build)


def _member_mask(keys, members):
    """Boolean mask of ``keys`` present in sorted-unique ``members``."""
    if members.size == 0:
        return np.zeros(keys.shape, dtype=bool)
    pos = np.searchsorted(members, keys)
    pos_clipped = np.minimum(pos, members.size - 1)
    return (members[pos_clipped] == keys) & (pos < members.size)


def _self_keys(backend, positions):
    """Packed keys of ``positions`` in the backend's own code space (memoized).

    Returns ``(keys, dims)`` or ``None`` on pack overflow.
    """
    def build():
        dicts = [backend.dictionary(p) for p in positions]
        dims = tuple(len(d.decode) for d in dicts)
        keys = _pack([d.codes_array() for d in dicts], dims, len(backend))
        if keys is None:
            return None
        return keys, dims
    return _memo(backend, ("pack", positions), build)


def _sorted_self_keys(backend, positions):
    """The memoized stable sort of :func:`_self_keys` — the join build side.

    Returns ``(order, sorted_keys)`` or ``None`` on pack overflow.
    """
    def build():
        packed = _self_keys(backend, positions)
        if packed is None:
            return None
        keys, _ = packed
        order = np.argsort(keys, kind="stable")
        return order, keys[order]
    return _memo(backend, ("sorted", positions), build)


def _translated_keys(right, right_key, left_dicts, dims):
    """``right``'s key columns packed in the *left* dictionaries' code space.

    Memoized per ``(positions, target dictionary uids)`` — for repeated
    evaluations against the same stored relations the translation, packing
    and masking all happen once.  Rows holding values unknown to the left get
    key ``-1``; returns ``None`` on pack overflow.
    """
    def build():
        right_cols = []
        invalid = None
        for left_dict, position in zip(left_dicts, right_key):
            right_dict = right.dictionary(position)
            codes = right_dict.translate_to(left_dict)[right_dict.codes_array()]
            missing = codes < 0
            if missing.any():
                invalid = missing if invalid is None else (invalid | missing)
                codes = np.where(missing, 0, codes)
            right_cols.append(codes)
        right_keys = _pack(right_cols, dims, len(right))
        if right_keys is None:
            return None
        if invalid is not None:
            right_keys = np.where(invalid, -1, right_keys)
        return right_keys
    uids = tuple(d.uid for d in left_dicts)
    return _memo(right, ("xlate", right_key, uids), build)


def _member_keys(right, right_key, left_dicts, dims):
    """Sorted distinct translated keys of ``right`` — the semijoin probe set.

    Memoized alongside :func:`_translated_keys`; returns ``None`` on pack
    overflow.
    """
    def build():
        right_keys = _translated_keys(right, right_key, left_dicts, dims)
        if right_keys is None:
            return None
        return np.unique(right_keys[right_keys >= 0])
    uids = tuple(d.uid for d in left_dicts)
    return _memo(right, ("members", right_key, uids), build)


def _member_lut(right, right_key, left_dicts, dims, space):
    """Dense boolean membership table over the packed left key space.

    One gather replaces the semijoin's per-row binary search; memoized like
    :func:`_member_keys`.  Returns ``None`` on pack overflow.
    """
    def build():
        members = _member_keys(right, right_key, left_dicts, dims)
        if members is None:
            return None
        table = np.zeros(space, dtype=bool)
        table[members] = True
        return table
    uids = tuple(d.uid for d in left_dicts)
    return _memo(right, ("memberlut", right_key, uids), build)


def take_rows(backend, indices, width: int) -> list[tuple]:
    """Materialise ``backend``'s rows at ``indices`` via decode columns."""
    if width == 0:
        return [() for _ in range(int(indices.size))]
    pieces = [backend.dictionary(p).object_column()[indices]
              for p in range(width)]
    return list(zip(*pieces))


def gather_encoded(backend, indices, width: int):
    """``backend``'s rows at ``indices`` as an encoded-columns triple.

    Returns ``(decode lists, int64 code arrays, length)`` — the arguments of
    ``ColumnarBackend.from_encoded`` — without touching a single Python value
    object: the parent's decode lists are shared by reference and only the
    code arrays are gathered.
    """
    dictionaries = [backend.dictionary(p) for p in range(width)]
    return ([d.decode for d in dictionaries],
            [d.codes_array()[indices] for d in dictionaries],
            int(indices.size))


# ---------------------------------------------------------------------------
# set-semantics kernels: join, semijoin, projection, sharding
# ---------------------------------------------------------------------------

def join_encoded(left, right, left_key: Sequence[int],
                 right_key: Sequence[int], right_extra: Sequence[int],
                 left_width: int):
    """Array hash join, output encoded: left columns + right extras.

    The sort + ``searchsorted`` matching makes this a sort-merge join over
    hashed-free integer keys — both classical kernels collapse into one here
    because dictionary codes are already dense integers.  Returns an
    ``(decode lists, code arrays, length)`` triple for
    ``ColumnarBackend.from_encoded`` (the output rows are unique because the
    duplicate-free inputs contribute every one of their columns), or ``None``
    to fall back on pack overflow.
    """
    width = left_width + len(right_extra)
    if len(left) == 0 or len(right) == 0:
        _count("join_kernels")
        return ([[] for _ in range(width)],
                [np.empty(0, dtype=np.int64) for _ in range(width)], 0)
    left_key = tuple(left_key)
    packed = _self_keys(left, left_key)
    if packed is None:
        _count("join_fallbacks")
        return None
    _, dims = packed
    left_dicts = [left.dictionary(p) for p in left_key]
    right_keys = _translated_keys(right, tuple(right_key), left_dicts, dims)
    if right_keys is None:
        _count("join_fallbacks")
        return None
    left_idx, right_idx = _match_pairs(left, left_key, dims, right_keys)
    _count("join_kernels")
    if width == 0:
        # Both sides are zero-column relations; the only possible output row
        # is the empty tuple, present iff anything matched.
        return [], [], (1 if left_idx.size else 0)
    decodes = []
    codes = []
    for position in range(left_width):
        dictionary = left.dictionary(position)
        decodes.append(dictionary.decode)
        codes.append(dictionary.codes_array()[left_idx])
    for position in right_extra:
        dictionary = right.dictionary(position)
        decodes.append(dictionary.decode)
        codes.append(dictionary.codes_array()[right_idx])
    return decodes, codes, int(left_idx.size)


def semijoin_keep(left, right, left_key: Sequence[int],
                  right_key: Sequence[int]):
    """Indices of left rows whose key appears in ``right``, or ``None``.

    Works for plain and annotated backends alike (both expose the
    ``dictionary`` protocol).
    """
    if len(left) == 0:
        _count("semijoin_kernels")
        return np.empty(0, dtype=np.int64)
    left_key = tuple(left_key)
    packed = _self_keys(left, left_key)
    if packed is None:
        _count("semijoin_fallbacks")
        return None
    left_keys, dims = packed
    left_dicts = [left.dictionary(p) for p in left_key]
    space = 1
    for dim in dims:
        space *= max(int(dim), 1)
    if space <= _lut_capacity(len(left)):
        table = _member_lut(right, tuple(right_key), left_dicts, dims, space)
        if table is None:
            _count("semijoin_fallbacks")
            return None
        mask = table[left_keys]
    else:
        members = _member_keys(right, tuple(right_key), left_dicts, dims)
        if members is None:
            _count("semijoin_fallbacks")
            return None
        mask = _member_mask(left_keys, members)
    _count("semijoin_kernels")
    return np.flatnonzero(mask)


def distinct_encoded(backend, positions: Sequence[int]):
    """The distinct projection onto ``positions``, output encoded.

    Returns an ``(decode lists, code arrays, length)`` triple for
    ``ColumnarBackend.from_encoded``, or ``None`` on pack overflow.
    """
    length = len(backend)
    if length == 0:
        _count("projection_kernels")
        return ([[] for _ in positions],
                [np.empty(0, dtype=np.int64) for _ in positions], 0)
    if not positions:
        _count("projection_kernels")
        return [], [], 1
    dicts = [backend.dictionary(p) for p in positions]
    dims = [len(d.decode) for d in dicts]
    keys = _pack([d.codes_array() for d in dicts], dims, length)
    if keys is None:
        _count("projection_fallbacks")
        return None
    _, representative = np.unique(keys, return_index=True)
    _count("projection_kernels")
    return ([d.decode for d in dicts],
            [d.codes_array()[representative] for d in dicts],
            int(representative.size))


def shard_assignments(backend, width: int, count: int):
    """Deterministic shard index per row, mixed from the code arrays.

    Only the parent process ever assigns shards (workers receive ready
    shards), so any deterministic function of the stored rows preserves the
    partition-parallel identity; mixing dictionary codes avoids building a
    single Python tuple.
    """
    if not kernel_ready(backend):
        return None
    length = len(backend)
    mixed = np.zeros(length, dtype=np.uint64)
    prime = np.uint64(0x100000001B3)
    with np.errstate(over="ignore"):
        for position in range(width):
            codes = backend.dictionary(position).codes_array()
            mixed = mixed * prime + codes.astype(np.uint64) + np.uint64(1)
            mixed ^= mixed >> np.uint64(29)
    _count("shard_kernels")
    return (mixed % np.uint64(count)).astype(np.int64)


# ---------------------------------------------------------------------------
# worst-case-optimal join: breadth-first frontier over code arrays
# ---------------------------------------------------------------------------

def wcoj(specs: Sequence[tuple], depth_total: int,
         free_levels: Sequence[int], check=None):
    """Generic join as a breadth-first vectorized frontier.

    ``check`` is an optional cooperative-cancellation hook called once per
    frontier level with the number of partial assignments explored so far; a
    hook that raises aborts the enumeration between levels (the vectorized
    analogue of the depth-first path's periodic
    :data:`~repro.algorithms.generic_join.CHECK_INTERVAL` checks).

    ``specs`` holds ``(backend, positions, levels)`` per bound relation:
    ``positions[j]`` is the column of the relation's ``j``-th variable (in
    global order) and ``levels[j]`` that variable's level.  The frontier at
    level ``L`` is a set of per-level ``int64`` arrays (codes in the level's
    *anchor* dictionary — the extending relation's own column dictionary);
    each level extends the frontier through the first constraining relation's
    distinct ``(prefix, value)`` pairs and filters it through the remaining
    constraining relations' distinct prefix sets, which reproduces exactly
    the per-level trie intersection of the depth-first reference — including
    the ``explored`` work count (the sum of frontier sizes equals the number
    of partial assignments the DFS enters).

    Returns ``(encoded output triple, explored)`` — the triple being the
    ``(decode lists, code arrays, length)`` arguments of
    ``ColumnarBackend.from_encoded`` over the free variables — or ``None``
    to fall back.
    """
    # plans[L] = [(spec index, variable rank within the relation), ...]
    plans: list[list[tuple[int, int]]] = [[] for _ in range(depth_total)]
    for spec_index, (_, _, levels) in enumerate(specs):
        for rank, level in enumerate(levels):
            plans[level].append((spec_index, rank))
    if any(not entries for entries in plans):
        _count("wcoj_fallbacks")
        return None

    anchors: list = [None] * depth_total
    anchor_dims = [1] * depth_total
    assign: list = []
    frontier = 1  # one empty partial assignment
    explored = 0

    def relation_keys(spec_index: int, rank: int):
        """Distinct packed keys of one relation's first ``rank + 1`` columns,
        translated into the anchor code space (rows with values unknown to an
        anchor are dropped — they can never meet the frontier).  Memoized per
        ``(positions, anchor uids)`` — the vectorized analogue of the cached
        prefix tries, rebuilt only when the stored relations change.  Returns
        ``(keys, dims)`` or ``None`` on pack overflow."""
        backend, positions, levels = specs[spec_index]
        dims = tuple(anchor_dims[levels[j]] for j in range(rank + 1))

        def build():
            columns = []
            invalid = None
            for j in range(rank + 1):
                column_dict = backend.dictionary(positions[j])
                codes = column_dict.translate_to(anchors[levels[j]])[
                    column_dict.codes_array()]
                missing = codes < 0
                if missing.any():
                    invalid = missing if invalid is None else (invalid | missing)
                    codes = np.where(missing, 0, codes)
                columns.append(codes)
            keys = _pack(columns, dims, len(backend))
            if keys is None:
                return None
            if invalid is not None:
                keys = keys[~invalid]
            return np.unique(keys), dims

        uids = tuple(anchors[levels[j]].uid for j in range(rank + 1))
        return _memo(backend, ("wcoj", positions[:rank + 1], uids), build)

    for level in range(depth_total):
        if check is not None:
            check(explored)
        entries = plans[level]
        ext_index, ext_rank = entries[0]
        backend, positions, levels = specs[ext_index]
        anchor = backend.dictionary(positions[ext_rank])
        anchors[level] = anchor
        anchor_dims[level] = max(len(anchor.decode), 1)

        packed = relation_keys(ext_index, ext_rank)
        if packed is None:
            _count("wcoj_fallbacks")
            return None
        pair_keys, pair_dims = packed
        value_dim = pair_dims[-1]
        prefix_keys = pair_keys // value_dim
        pair_values = pair_keys % value_dim

        prefix_levels = levels[:ext_rank]
        frontier_keys = _pack([assign[l] for l in prefix_levels],
                              pair_dims[:-1], frontier)
        if frontier_keys is None:
            _count("wcoj_fallbacks")
            return None
        # prefix_keys is sorted (np.unique), so probe it directly.
        starts = np.searchsorted(prefix_keys, frontier_keys, side="left")
        ends = np.searchsorted(prefix_keys, frontier_keys, side="right")
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            assign = [array[:0] for array in assign]
            assign.append(np.empty(0, dtype=np.int64))
            frontier = 0
        else:
            parent_idx = np.repeat(np.arange(frontier, dtype=np.int64), counts)
            block_starts = np.cumsum(counts) - counts
            within = (np.arange(total, dtype=np.int64)
                      - np.repeat(block_starts, counts))
            pair_pos = np.repeat(starts, counts) + within
            assign = [array[parent_idx] for array in assign]
            assign.append(pair_values[pair_pos])
            frontier = total

        for spec_index, rank in entries[1:]:
            if frontier == 0:
                break
            packed = relation_keys(spec_index, rank)
            if packed is None:
                _count("wcoj_fallbacks")
                return None
            member_keys, member_dims = packed
            rel_levels = specs[spec_index][2][:rank + 1]
            frontier_keys = _pack([assign[l] for l in rel_levels],
                                  member_dims, frontier)
            if frontier_keys is None:
                _count("wcoj_fallbacks")
                return None
            pos = np.searchsorted(member_keys, frontier_keys)
            if member_keys.size == 0:
                mask = np.zeros(frontier, dtype=bool)
            else:
                clipped = np.minimum(pos, member_keys.size - 1)
                mask = (member_keys[clipped] == frontier_keys) & (
                    pos < member_keys.size)
            if not mask.all():
                assign = [array[mask] for array in assign]
                frontier = int(mask.sum())

        explored += frontier
        if frontier == 0:
            _count("wcoj_kernels")
            empty = ([[] for _ in free_levels],
                     [np.empty(0, dtype=np.int64) for _ in free_levels], 0)
            return empty, explored

    free_levels = tuple(free_levels)
    if not free_levels:
        _count("wcoj_kernels")
        return ([], [], 1 if frontier else 0), explored
    free_dims = [anchor_dims[l] for l in free_levels]
    keys = _pack([assign[l] for l in free_levels], free_dims, frontier)
    if keys is None:
        _count("wcoj_fallbacks")
        return None
    _, representative = np.unique(keys, return_index=True)
    _count("wcoj_kernels")
    encoded = ([anchors[l].decode for l in free_levels],
               [assign[l][representative] for l in free_levels],
               int(representative.size))
    return encoded, explored


# ---------------------------------------------------------------------------
# semiring kernels: marginalization and fused join+eliminate
# ---------------------------------------------------------------------------

#: ``semiring name -> (value kind, grouped ⊕ reduction, ⊗ pair combiner)``.
#: Only reductions whose vector form is *exactly* the reference fold are
#: registered: integer sums (guarded against int64 overflow), float
#: min/max (order-independent, pick an existing IEEE value), and the
#: all-``True`` boolean case.  Everything else — e.g. the top-k min-plus
#: semiring with tuple values — falls back to the Python path.
def _build_semiring_specs():
    return {
        "counting": ("int", np.add.reduceat,
                     lambda a, b: a * b),
        "boolean": ("true", None, None),
        "min-plus": ("float", np.minimum.reduceat,
                     lambda a, b: a + b),
        "max-min": ("float", np.maximum.reduceat,
                    lambda a, b: np.minimum(a, b)),
        "max-times": ("float", np.maximum.reduceat,
                      lambda a, b: a * b),
    }


_SEMIRING_SPECS = _build_semiring_specs() if np is not None else {}


def kernel_supported_semirings() -> frozenset[str]:
    """Names of semirings with a registered vectorized ⊕/⊗ reduction.

    The static plan verifier (:mod:`repro.analysis.plan_verifier`) checks
    this capability table against each semiring's value shape: only
    scalar-valued semirings may appear here — tuple-valued ones (top-k
    min-plus) must take the reference fallback path.
    """
    return frozenset(_SEMIRING_SPECS)


def _scalar(kind: str, value):
    """Convert one aggregated numpy scalar back to the reference Python type."""
    if kind == "int":
        return int(value)
    if kind == "float":
        return float(value)
    return True


def _grouped_reduce(kind: str, reduce_at, keys, values):
    """⊕-reduce ``values`` grouped by ``keys``; returns (rep index, list)."""
    order = np.argsort(keys, kind="stable")
    sorted_keys = keys[order]
    boundaries = np.empty(sorted_keys.size, dtype=bool)
    boundaries[0] = True
    np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundaries[1:])
    group_starts = np.flatnonzero(boundaries)
    representative = order[group_starts]
    if kind == "true":
        return representative, [True] * group_starts.size
    aggregated = reduce_at(values[order], group_starts)
    return representative, [_scalar(kind, value) for value in aggregated]


def marginal_dict(backend, keep_positions: Sequence[int], semiring_name: str):
    """⊕-marginal of an annotated backend grouped by ``keep_positions``.

    Returns the aggregated ``{key tuple: value}`` dict (same contents as the
    reference ``_compute_marginal``) or ``None`` to fall back.
    """
    spec = _SEMIRING_SPECS.get(semiring_name)
    if spec is None:
        _count("marginal_fallbacks")
        return None
    kind, reduce_at, _ = spec
    length = len(backend)
    if length == 0:
        _count("marginal_kernels")
        return {}
    values = backend.kernel_values(kind)
    if values is None:
        _count("marginal_fallbacks")
        return None
    keep_positions = tuple(keep_positions)
    packed = _self_keys(backend, keep_positions)
    if packed is None:
        _count("marginal_fallbacks")
        return None
    keys, _ = packed
    dicts = [backend.dictionary(p) for p in keep_positions]
    representative, aggregated = _grouped_reduce(kind, reduce_at, keys, values)
    _count("marginal_kernels")
    pieces = [d.object_column()[representative] for d in dicts]
    grouped_keys = list(zip(*pieces)) if pieces else [()] * len(aggregated)
    return dict(zip(grouped_keys, aggregated))


def join_marginalize_dict(left, right, left_key: Sequence[int],
                          right_key: Sequence[int],
                          out_source: Sequence[tuple[str, int]],
                          semiring_name: str):
    """Fused ⊗-join + ⊕-eliminate over two annotated backends.

    ``out_source`` names each surviving output column as ``('l', position)``
    or ``('r', position)``.  Returns the output ``{row: value}`` dict or
    ``None`` to fall back (unsupported semiring, non-vectorizable values, or
    a pair count past the exact-``int64`` guard for the counting semiring).
    """
    spec = _SEMIRING_SPECS.get(semiring_name)
    if spec is None:
        _count("join_marginalize_fallbacks")
        return None
    kind, reduce_at, combine = spec
    if len(left) == 0 or len(right) == 0:
        _count("join_marginalize_kernels")
        return {}
    left_values = left.kernel_values(kind)
    right_values = right.kernel_values(kind)
    if left_values is None or right_values is None:
        _count("join_marginalize_fallbacks")
        return None
    left_key = tuple(left_key)
    packed = _self_keys(left, left_key)
    if packed is None:
        _count("join_marginalize_fallbacks")
        return None
    _, dims = packed
    left_dicts = [left.dictionary(p) for p in left_key]
    right_keys = _translated_keys(right, tuple(right_key), left_dicts, dims)
    if right_keys is None:
        _count("join_marginalize_fallbacks")
        return None
    left_idx, right_idx = _match_pairs(left, left_key, dims, right_keys)
    if left_idx.size == 0:
        _count("join_marginalize_kernels")
        return {}
    if kind == "int" and left_idx.size > _COUNT_PAIR_LIMIT:
        _count("join_marginalize_fallbacks")
        return None
    if kind == "true":
        products = None
    else:
        products = combine(left_values[left_idx], right_values[right_idx])
    out_dicts = []
    out_codes = []
    for side, position in out_source:
        if side == "l":
            dictionary = left.dictionary(position)
            codes = dictionary.codes_array()[left_idx]
        else:
            dictionary = right.dictionary(position)
            codes = dictionary.codes_array()[right_idx]
        out_dicts.append(dictionary)
        out_codes.append(codes)
    group_keys = _pack(out_codes, [len(d.decode) for d in out_dicts],
                       left_idx.size)
    if group_keys is None:
        _count("join_marginalize_fallbacks")
        return None
    representative, aggregated = _grouped_reduce(kind, reduce_at, group_keys,
                                                 products)
    _count("join_marginalize_kernels")
    pieces = [dictionary.decode_array()[codes[representative]]
              for dictionary, codes in zip(out_dicts, out_codes)]
    grouped_rows = list(zip(*pieces)) if pieces else [()] * len(aggregated)
    return dict(zip(grouped_rows, aggregated))


# ---------------------------------------------------------------------------
# value-array vetting (used by the annotated backends' kernel_values caches)
# ---------------------------------------------------------------------------

def vet_values(values: Iterable, kind: str):
    """Convert annotation values to an exact numpy array for ``kind``.

    Returns the array (or ``True`` for the boolean kind), or ``None`` when
    any value cannot be represented exactly — the caller then falls back.
    ``bool`` is deliberately excluded from the ``int`` kind (``type`` check,
    not ``isinstance``) so counting annotations stay genuine integers.
    """
    if np is None:
        return None
    if kind == "true":
        return True if all(value is True for value in values) else None
    if kind == "int":
        checked = list(values)
        limit = _COUNT_VALUE_LIMIT
        if all(type(value) is int and -limit < value < limit
               for value in checked):
            return np.array(checked, dtype=np.int64)
        return None
    if kind == "float":
        checked = list(values)
        if all(type(value) is float for value in checked):
            return np.array(checked, dtype=np.float64)
        return None
    return None
