"""Database instances: named collections of relations bound to a query.

A :class:`Database` maps relation symbols to :class:`~repro.relational.relation.Relation`
instances.  When a query atom ``R(X, Y)`` is evaluated against relation ``R``,
the relation's columns are positionally bound to the atom's variables, which
is how the engine moves from "columns" to the paper's "variables".
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.query.cq import Atom, ConjunctiveQuery
from repro.relational.relation import Relation


class Database:
    """A database instance ``D``: a mapping from relation symbols to relations."""

    def __init__(self, relations: Mapping[str, Relation] | Iterable[Relation] = ()) -> None:
        self._relations: dict[str, Relation] = {}
        if isinstance(relations, Mapping):
            for name, relation in relations.items():
                self.add(relation, name=name)
        else:
            for relation in relations:
                self.add(relation)

    def add(self, relation: Relation, name: str | None = None) -> None:
        """Register a relation under ``name`` (defaults to the relation's name)."""
        self._relations[name or relation.name] = relation

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise KeyError(f"database has no relation named {name!r}") from exc

    def relation_names(self) -> list[str]:
        return sorted(self._relations)

    def relations(self) -> list[Relation]:
        return [self._relations[name] for name in self.relation_names()]

    @property
    def size(self) -> int:
        """Total number of tuples ``N = ||D||`` across all relations."""
        return sum(len(relation) for relation in self._relations.values())

    def max_relation_size(self) -> int:
        """The size of the largest relation (often used as the parameter N)."""
        if not self._relations:
            return 0
        return max(len(relation) for relation in self._relations.values())

    # -------------------------------------------------------------- bindings
    def bind_atom(self, atom: Atom) -> Relation:
        """The relation of ``atom`` with its columns renamed to the atom's variables.

        Binding is positional: the i-th column of the stored relation becomes
        the i-th variable of the atom.  The resulting relation is then
        projected onto the atom's variable set (duplicates collapse), which is
        all the join algorithms need.
        """
        relation = self[atom.relation]
        if len(relation.columns) != len(atom.variables):
            raise ValueError(
                f"atom {atom} has arity {len(atom.variables)} but relation "
                f"{atom.relation!r} has arity {len(relation.columns)}"
            )
        mapping = dict(zip(relation.columns, atom.variables))
        return relation.rename(mapping, name=str(atom))

    def bind_query(self, query: ConjunctiveQuery) -> list[Relation]:
        """Bind every atom of ``query``, in atom order."""
        return [self.bind_atom(atom) for atom in query.atoms]

    def restrict_to_query(self, query: ConjunctiveQuery) -> "Database":
        """A database containing only the relations mentioned by ``query``."""
        names = set(query.relation_names)
        return Database({name: self._relations[name] for name in names})

    def copy(self) -> "Database":
        return Database({name: rel.copy() for name, rel in self._relations.items()})

    def summary(self) -> dict[str, int]:
        """Relation sizes, for display and logging."""
        return {name: len(self._relations[name]) for name in self.relation_names()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{name}:{len(rel)}" for name, rel in sorted(self._relations.items()))
        return f"Database({parts})"


def database_from_edges(edge_lists: Mapping[str, Iterable[tuple]],
                        columns: Mapping[str, tuple[str, ...]] | None = None) -> Database:
    """Build a database of (mostly binary) relations from raw tuple lists.

    ``columns`` optionally overrides the column names per relation; by default
    a relation with arity k gets columns ``("c1", ..., "ck")``.
    """
    database = Database()
    for name, rows in edge_lists.items():
        rows = [tuple(row) for row in rows]
        if columns and name in columns:
            cols = columns[name]
        else:
            arity = len(rows[0]) if rows else 2
            cols = tuple(f"c{i + 1}" for i in range(arity))
        database.add(Relation(name, cols, rows))
    return database
