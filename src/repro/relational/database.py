"""Database instances: named collections of relations bound to a query.

A :class:`Database` maps relation symbols to :class:`~repro.relational.relation.Relation`
instances.  When a query atom ``R(X, Y)`` is evaluated against relation ``R``,
the relation's columns are positionally bound to the atom's variables, which
is how the engine moves from "columns" to the paper's "variables".

The database is also the engine-level cache boundary: atom bindings are
memoized (a bound atom is a rename, which shares the stored relation's
storage backend), so every consumer of the same atom — statistics collection,
PANDA partitioning, the join algorithms — hits the same backend and therefore
the same cached indexes.  Cache entries are validated by backend identity and
drop out automatically when a relation is replaced or mutated (copy-on-write
forks change the backend object).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.query.cq import Atom, ConjunctiveQuery
from repro.relational.relation import Relation


class Database:
    """A database instance ``D``: a mapping from relation symbols to relations.

    ``backend`` optionally pins every stored relation to one storage engine
    kind (``"set"`` or ``"columnar"``): relations added under a different
    backend are converted on registration.
    """

    def __init__(self, relations: Mapping[str, Relation] | Iterable[Relation] = (),
                 backend: str | None = None) -> None:
        self._relations: dict[str, Relation] = {}
        self._backend_kind = backend
        self._bind_cache: dict[tuple, tuple[Relation, object]] = {}
        self._annotated_cache: dict[tuple, tuple] = {}
        self._revision = 0
        if isinstance(relations, Mapping):
            for name, relation in relations.items():
                self.add(relation, name=name)
        else:
            for relation in relations:
                self.add(relation)

    @property
    def backend_kind(self) -> str | None:
        """The storage engine every relation is pinned to (None = mixed)."""
        return self._backend_kind

    @property
    def revision(self) -> int:
        """A counter bumped whenever a relation is registered or replaced.

        The engine keys its measured-statistics memo and prepared-query
        validity on it: a prepared plan observed at revision ``r`` is
        transparently re-resolved once the database moves past ``r``.
        (Facade-level row mutation forks the relation's backend instead of
        going through :meth:`add`; consumers that need to see those too
        should also compare :meth:`backend_snapshot`.)
        """
        return self._revision

    def backend_snapshot(self) -> tuple[tuple[str, object], ...]:
        """``(name, backend object)`` pairs, for identity-based cache validation.

        Copy-on-write mutation replaces a relation's backend object, so a
        snapshot captured alongside a derived result (memoized statistics, a
        prepared query) stays valid exactly as long as every stored relation
        still carries the same backend.
        """
        return tuple((name, self._relations[name]._backend)
                     for name in self.relation_names())

    def add(self, relation: Relation, name: str | None = None) -> None:
        """Register a relation under ``name`` (defaults to the relation's name)."""
        if self._backend_kind is not None:
            relation = relation.with_backend(self._backend_kind)
        key = name or relation.name
        self._relations[key] = relation
        self._revision += 1
        for cached_key in [k for k in self._bind_cache if k[0] == key]:
            del self._bind_cache[cached_key]
        for cached_key in [k for k in self._annotated_cache if k[0] == key]:
            del self._annotated_cache[cached_key]

    def with_backend(self, backend: str) -> "Database":
        """This database with every relation converted to ``backend``."""
        converted = Database(backend=backend)
        for name, relation in self._relations.items():
            converted.add(relation, name=name)
        return converted

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError as exc:
            raise KeyError(f"database has no relation named {name!r}") from exc

    def relation_names(self) -> list[str]:
        return sorted(self._relations)

    def relations(self) -> list[Relation]:
        return [self._relations[name] for name in self.relation_names()]

    @property
    def size(self) -> int:
        """Total number of tuples ``N = ||D||`` across all relations."""
        return sum(len(relation) for relation in self._relations.values())

    def max_relation_size(self) -> int:
        """The size of the largest relation (often used as the parameter N)."""
        if not self._relations:
            return 0
        return max(len(relation) for relation in self._relations.values())

    def cache_stats(self) -> dict[str, int]:
        """Aggregate index build/hit counters across the stored relations.

        Includes the counters of memoized annotated bindings (the FAQ
        engine's factors), so semiring workloads surface their index reuse
        through the same interface as set-semantics ones.
        """
        totals: dict[str, int] = {}
        for relation in self._relations.values():
            for event, count in relation.storage_stats.items():
                totals[event] = totals.get(event, 0) + count
        for annotated, _ in self._annotated_cache.values():
            for event, count in annotated.storage_stats.items():
                totals[event] = totals.get(event, 0) + count
        return totals

    # -------------------------------------------------------------- bindings
    def bind_atom(self, atom: Atom) -> Relation:
        """The relation of ``atom`` with its columns renamed to the atom's variables.

        Binding is positional: the i-th column of the stored relation becomes
        the i-th variable of the atom.  Bindings are memoized per
        ``(relation, variables)`` pair; the bound facade shares the stored
        relation's backend, so index caches are shared across every query
        that binds the same atom.
        """
        relation = self[atom.relation]
        cache_key = (atom.relation, tuple(atom.variables))
        cached = self._bind_cache.get(cache_key)
        if cached is not None:
            bound, stored_backend = cached
            if relation._backend is stored_backend:
                # Hand out a fresh facade sharing the cached backend: callers
                # get independent snapshot semantics (mutating one bound
                # relation forks only that facade) while index caches stay
                # shared.
                return bound.copy(bound.name)
        if len(relation.columns) != len(atom.variables):
            raise ValueError(
                f"atom {atom} has arity {len(atom.variables)} but relation "
                f"{atom.relation!r} has arity {len(relation.columns)}"
            )
        mapping = dict(zip(relation.columns, atom.variables))
        bound = relation.rename(mapping, name=str(atom))
        self._bind_cache[cache_key] = (bound, relation._backend)
        return bound.copy(bound.name)

    def bind_query(self, query: ConjunctiveQuery) -> list[Relation]:
        """Bind every atom of ``query``, in atom order."""
        return [self.bind_atom(atom) for atom in query.atoms]

    def annotated_atom(self, atom: Atom, semiring,
                       weight=None, weight_key: str | None = None):
        """The bound atom as an annotated relation over ``semiring``.

        This is where the FAQ engine gets its factors.  Bindings are memoized
        per ``(relation, variables, semiring name, weight key)`` — but only
        when the paired annotated engine caches indexes (so the ``dict``
        reference engine faithfully keeps the seed's rebuild-per-run costs)
        and the annotation is reproducible: the default ``one`` annotation
        (``weight is None``) or a ``weight`` function the caller names with a
        stable ``weight_key``.  Cache entries are validated by the stored
        relation's backend identity, exactly like :meth:`bind_atom`, so
        copy-on-write mutation drops them automatically.
        """
        from repro.relational.semiring import AnnotatedRelation

        relation = self[atom.relation]
        cache_key = None
        # A falsy weight_key (None, "") means "unnamed weight function" — two
        # different unnamed functions must never share a cache slot.
        if weight is None or weight_key:
            cache_key = (atom.relation, tuple(atom.variables), semiring.name,
                         None if weight is None else weight_key)
            cached = self._annotated_cache.get(cache_key)
            if cached is not None:
                annotated, stored_backend = cached
                if relation._backend is stored_backend:
                    return annotated
        annotated = AnnotatedRelation.from_relation(self.bind_atom(atom),
                                                    semiring, weight=weight)
        if cache_key is not None and annotated._backend.caches_indexes:
            # Annotated relations are immutable through their facade API, so
            # the cache can hand out the same facade (and its warm indexes).
            annotated._backend.share()
            self._annotated_cache[cache_key] = (annotated, relation._backend)
        return annotated

    def restrict_to_query(self, query: ConjunctiveQuery) -> "Database":
        """A database containing only the relations mentioned by ``query``."""
        names = set(query.relation_names)
        return Database({name: self._relations[name] for name in names},
                        backend=self._backend_kind)

    def copy(self) -> "Database":
        return Database({name: rel.copy() for name, rel in self._relations.items()},
                        backend=self._backend_kind)

    def summary(self) -> dict[str, int]:
        """Relation sizes, for display and logging."""
        return {name: len(self._relations[name]) for name in self.relation_names()}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = ", ".join(f"{name}:{len(rel)}" for name, rel in sorted(self._relations.items()))
        return f"Database({parts})"


def database_from_edges(edge_lists: Mapping[str, Iterable[tuple]],
                        columns: Mapping[str, tuple[str, ...]] | None = None,
                        backend: str | None = None) -> Database:
    """Build a database of (mostly binary) relations from raw tuple lists.

    ``columns`` optionally overrides the column names per relation; by default
    a relation with arity k gets columns ``("c1", ..., "ck")``.  ``backend``
    selects the storage engine for every relation.
    """
    database = Database(backend=backend)
    for name, rows in edge_lists.items():
        rows = [tuple(row) for row in rows]
        if columns and name in columns:
            cols = columns[name]
        else:
            arity = len(rows[0]) if rows else 2
            cols = tuple(f"c{i + 1}" for i in range(arity))
        database.add(Relation(name, cols, rows, backend=backend))
    return database
