"""Pluggable storage backends for relations.

A :class:`~repro.relational.relation.Relation` is a thin facade over a
:class:`StorageBackend`: the backend owns the physical tuple storage and every
derived access structure the evaluation algorithms need — hash indexes keyed
by a column subset, distinct-key sets for semijoins, group-by structures for
degree statistics, prefix tries for worst-case-optimal joins and memoized
distinct projections.

Two implementations ship with the library:

* :class:`SetBackend` — the original ``set[tuple]`` substrate, kept as the
  semantics reference.  Every access structure is recomputed on demand, which
  makes the backend trivially correct and a faithful model of the seed
  implementation's per-call costs.
* :class:`ColumnarBackend` — tuples stored once in insertion order with
  lazily realised dictionary-encoded columns, plus caches for every access
  structure, invalidated on mutation.  Repeated evaluation of the same query
  against the same database reuses the cached indexes instead of rebuilding
  them, which is where the speedups measured by
  ``benchmarks/bench_storage_backends.py`` come from.

Backends are shared *structurally* between facades: renaming or copying a
relation reuses the same backend (so caches built while collecting statistics
are also hit by the executor).  Mutation goes through copy-on-write — a facade
that wants to ``add`` a row to a shared backend forks it first — so sharing is
never observable through the ``Relation`` API.

The same split exists for *annotated* (weighted) relations: the
:class:`AnnotatedBackend` interface maps duplicate-free rows to semiring
annotations, with :class:`DictAnnotatedBackend` as the uncached reference and
:class:`ColumnarAnnotatedBackend` memoizing probe indexes, semijoin key sets,
⊕-marginal group-bys and sorted conditional groups.  Semiring-annotated
relations, FAQ factors and PANDA's measure tables are all facades over it.

Every cache records build/hit counters in :attr:`StorageBackend.stats`, which
the benchmarks use to make cached index reuse observable.
"""

from __future__ import annotations

import itertools
import threading
import zlib
from contextlib import contextmanager
from typing import Iterable, Iterator, Mapping, Sequence

from repro.relational import kernels

try:  # numpy is a declared runtime dependency, but stay importable without it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only on broken installs
    _np = None  # type: ignore[assignment]


IndexKey = tuple[int, ...]


# Process-wide mirror of every backend instance's ``stats`` dict.  Backend
# stats are per-instance (each database snapshots its own via
# ``Database.cache_stats``); the telemetry metrics registry needs one
# process-level series per event, so ``_count`` additionally folds every
# event into this aggregate.  Monotone counters only — never reconciled
# against the per-instance dicts, which come and go with their backends.
_PROCESS_STATS: dict[str, int] = {}
_PROCESS_STATS_LOCK = threading.Lock()


def _count_process(event: str) -> None:
    with _PROCESS_STATS_LOCK:
        _PROCESS_STATS[event] = _PROCESS_STATS.get(event, 0) + 1


def storage_stats() -> dict[str, int]:
    """A snapshot of the process-wide storage build/hit counters."""
    with _PROCESS_STATS_LOCK:
        return dict(_PROCESS_STATS)


def storage_stats_delta(before: dict[str, int]) -> dict[str, int]:
    """Counter movements since a :func:`storage_stats` snapshot."""
    after = storage_stats()
    return {event: after.get(event, 0) - before.get(event, 0)
            for event in set(after) | set(before)}


def reset_storage_stats() -> None:
    with _PROCESS_STATS_LOCK:
        _PROCESS_STATS.clear()


def stable_row_hash(row: tuple) -> int:
    """A process-independent hash of a row.

    Python's builtin ``hash`` is salted per process for strings, so it cannot
    decide which shard a row belongs to when shards are evaluated by worker
    *processes*: the parent and the workers would disagree.  CRC32 over the
    row's ``repr`` is deterministic across processes and Python versions,
    which is what partition-parallel execution needs so that hash-partitioning
    a relation yields the same shards everywhere.
    """
    return zlib.crc32(repr(row).encode("utf-8"))


class StorageBackend:
    """Interface (and shared bookkeeping) for relation storage engines.

    Rows are always duplicate-free tuples; index methods take *column
    positions* (never names) so that a backend can be shared between facades
    that rename columns.
    """

    kind: str = "abstract"
    #: Whether access structures are memoized.  Operators use this to decide
    #: if building an index just-in-time will pay off on later calls.
    caches_indexes: bool = False
    #: Whether the vectorized kernel path (:mod:`repro.relational.kernels`)
    #: may run against this backend.  Only backends exposing the
    #: ``dictionary`` protocol over NumPy code arrays opt in; the set/dict
    #: reference engines stay on the tuple-at-a-time path so the parity
    #: suites always have an untouched semantics reference.
    supports_kernels: bool = False

    def __init__(self) -> None:
        self.shared = False
        self.stats: dict[str, int] = {}
        self._stats_lock = threading.Lock()

    # -- bookkeeping ---------------------------------------------------------
    def share(self) -> "StorageBackend":
        """Mark this backend as structurally shared and return it."""
        self.shared = True
        return self

    def _count(self, event: str) -> None:
        # Backends are shared across the engine's thread-parallel shard
        # workers; an unguarded read-modify-write here would lose counts
        # exactly like the WorkCounter race this increment mirrors.
        with self._stats_lock:
            self.stats[event] = self.stats.get(event, 0) + 1
        _count_process(event)

    # Locks cannot cross pickle; regrow one on the other side.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_stats_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    # -- core storage (must be implemented) -----------------------------------
    def __len__(self) -> int:
        raise NotImplementedError

    def iter_rows(self) -> Iterator[tuple]:
        raise NotImplementedError

    def row_set(self) -> frozenset[tuple]:
        raise NotImplementedError

    def contains(self, row: tuple) -> bool:
        raise NotImplementedError

    def add(self, row: tuple) -> None:
        """Insert one row (idempotent) and invalidate every cache."""
        raise NotImplementedError

    def fork(self) -> "StorageBackend":
        """An independent, unshared copy (for copy-on-write mutation)."""
        raise NotImplementedError

    def spawn(self, rows: Iterable[tuple], assume_unique: bool = False) -> "StorageBackend":
        """A new backend of the same kind holding ``rows``.

        ``assume_unique`` lets callers that construct provably duplicate-free
        rows (semijoin outputs, join outputs over set-semantics inputs) skip
        the deduplication pass.
        """
        return type(self)(rows, assume_unique=assume_unique)  # type: ignore[call-arg]

    # -- access structures (may cache) -----------------------------------------
    def hash_index(self, key_positions: IndexKey) -> Mapping[tuple, Sequence[tuple]]:
        """``key tuple -> list of full rows`` for the given key positions."""
        raise NotImplementedError

    def has_cached_index(self, key_positions: IndexKey) -> bool:
        """True when :meth:`hash_index` for these positions is already built."""
        return False

    def key_set(self, key_positions: IndexKey):
        """The set of distinct key tuples at the given positions."""
        raise NotImplementedError

    def degree_index(self, given_positions: IndexKey,
                     target_positions: IndexKey) -> Mapping[tuple, int]:
        """``given tuple -> number of distinct target tuples`` (degree vector)."""
        raise NotImplementedError

    def group_index(self, given_positions: IndexKey,
                    target_positions: IndexKey) -> Mapping[tuple, tuple[tuple, ...]]:
        """``given tuple -> distinct target tuples`` (full group-by structure)."""
        raise NotImplementedError

    def trie(self, positions: IndexKey) -> list[dict[tuple, set]]:
        """Prefix trie for worst-case-optimal joins.

        ``trie(p)[d]`` maps a depth-``d`` prefix (values at ``positions[:d]``)
        to the set of values observed at ``positions[d]`` under that prefix.
        """
        raise NotImplementedError

    def project_backend(self, positions: IndexKey) -> "StorageBackend":
        """A backend (same kind) holding the distinct projection onto ``positions``."""
        raise NotImplementedError

    # -- shared computation helpers -------------------------------------------
    def _compute_hash_index(self, key_positions: IndexKey) -> dict[tuple, list[tuple]]:
        index: dict[tuple, list[tuple]] = {}
        for row in self.iter_rows():
            key = tuple(row[i] for i in key_positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [row]
            else:
                bucket.append(row)
        return index

    def _compute_key_set(self, key_positions: IndexKey) -> set[tuple]:
        return {tuple(row[i] for i in key_positions) for row in self.iter_rows()}

    def _compute_groups(self, given_positions: IndexKey,
                        target_positions: IndexKey) -> dict[tuple, set[tuple]]:
        groups: dict[tuple, set[tuple]] = {}
        for row in self.iter_rows():
            key = tuple(row[i] for i in given_positions)
            value = tuple(row[i] for i in target_positions)
            values = groups.get(key)
            if values is None:
                groups[key] = {value}
            else:
                values.add(value)
        return groups

    def _compute_trie(self, positions: IndexKey) -> list[dict[tuple, set]]:
        reordered = [tuple(row[p] for p in positions) for row in self.iter_rows()]
        levels: list[dict[tuple, set]] = []
        for depth in range(len(positions)):
            level: dict[tuple, set] = {}
            for row in reordered:
                prefix = row[:depth]
                values = level.get(prefix)
                if values is None:
                    level[prefix] = {row[depth]}
                else:
                    values.add(row[depth])
            levels.append(level)
        return levels


class SetBackend(StorageBackend):
    """The reference backend: a plain ``set[tuple]``, no caching whatsoever.

    Every access structure is computed from scratch on every request, exactly
    like the seed implementation did inline in each operator.
    """

    kind = "set"

    def __init__(self, rows: Iterable[tuple] = (), assume_unique: bool = False) -> None:
        super().__init__()
        self._rows: set[tuple] = set(rows)

    def __len__(self) -> int:
        return len(self._rows)

    def iter_rows(self) -> Iterator[tuple]:
        return iter(self._rows)

    def row_set(self) -> frozenset[tuple]:
        return frozenset(self._rows)

    def contains(self, row: tuple) -> bool:
        return row in self._rows

    def add(self, row: tuple) -> None:
        self._rows.add(row)

    def fork(self) -> "SetBackend":
        return SetBackend(self._rows)

    def hash_index(self, key_positions: IndexKey) -> dict[tuple, list[tuple]]:
        self._count("hash_index_builds")
        return self._compute_hash_index(key_positions)

    def key_set(self, key_positions: IndexKey) -> set[tuple]:
        self._count("key_set_builds")
        return self._compute_key_set(key_positions)

    def degree_index(self, given_positions: IndexKey,
                     target_positions: IndexKey) -> dict[tuple, int]:
        self._count("degree_index_builds")
        groups = self._compute_groups(given_positions, target_positions)
        return {key: len(values) for key, values in groups.items()}

    def group_index(self, given_positions: IndexKey,
                    target_positions: IndexKey) -> dict[tuple, tuple[tuple, ...]]:
        self._count("group_index_builds")
        groups = self._compute_groups(given_positions, target_positions)
        return {key: tuple(values) for key, values in groups.items()}

    def trie(self, positions: IndexKey) -> list[dict[tuple, set]]:
        self._count("trie_builds")
        return self._compute_trie(positions)

    def project_backend(self, positions: IndexKey) -> "SetBackend":
        self._count("project_builds")
        return SetBackend(self._compute_key_set(positions), assume_unique=True)


_dictionary_uids = itertools.count()


def _dictionary_sort_key(value) -> tuple[str, str]:
    """Deterministic value order for dictionary codes.

    Sorting distinct values by ``(type name, repr)`` makes the code
    assignment a pure function of the value *set* — independent of row
    order, process hash salting, and insertion history — which is what lets
    worker processes rebuilding a shard from an encoded payload arrive at
    exactly the parent's codes.  (Ties — distinct values sharing a repr,
    e.g. two NaN objects — keep their first-appearance order via the stable
    sort, which is still deterministic given the same row list.)
    """
    return (value.__class__.__name__, repr(value))


def _object_array(values: Sequence):
    """A 1-D object-dtype array holding ``values`` (tuples stay tuples)."""
    array = _np.empty(len(values), dtype=object)
    for index, value in enumerate(values):
        array[index] = value
    return array


class ColumnDictionary:
    """A lazily built dictionary encoding of one column.

    ``codes[r]`` is the integer code of row ``r``'s value in this column and
    ``decode[code]`` recovers the value.  Grouping and distinct-counting over
    small integer codes is cheaper than over arbitrary values, and the
    dictionary itself doubles as the column's distinct-value index.

    Codes are assigned in the deterministic :func:`_dictionary_sort_key`
    order (not first appearance), so equal column contents always produce
    equal codes — the invariant partition-parallel workers rely on.  For the
    vectorized kernels the dictionary also materialises (lazily, cached):

    * :meth:`codes_array` — the codes as an ``int64`` NumPy array;
    * :meth:`decode_array` / :meth:`object_column` — object-dtype decode
      table and the fully decoded column (fancy-indexable, zips back into
      the original Python value objects);
    * :meth:`translate_to` — a memoized ``int64`` table mapping this
      dictionary's codes into another dictionary's code space (``-1`` for
      values the other side has never seen).
    """

    __slots__ = ("decode", "uid", "_codes", "_encode", "_codes_array",
                 "_decode_array", "_column", "_translations")

    def __init__(self, values: Iterable) -> None:
        seen: dict = {}
        materialised = list(values)
        for value in materialised:
            if value not in seen:
                seen[value] = None
        decode = sorted(seen, key=_dictionary_sort_key)
        encode = {value: code for code, value in enumerate(decode)}
        self._codes: list[int] | None = [encode[value] for value in materialised]
        self.decode = decode
        self._encode = encode
        self._codes_array = None
        self._decode_array = None
        self._column = None
        self._translations: dict[int, object] = {}
        self.uid = next(_dictionary_uids)

    @classmethod
    def from_codes(cls, codes, decode_source: Sequence) -> "ColumnDictionary":
        """A dictionary for a column given as codes into ``decode_source``.

        ``decode_source`` must be canonically ordered (any existing
        dictionary's ``decode`` qualifies); the distinct codes present keep
        that order, so the child dictionary is exactly what
        ``ColumnDictionary(decoded values)`` would build — without touching a
        single Python value object.  This is how encoded shard views and
        encoded kernel outputs realise their dictionaries vectorized.
        """
        space = len(decode_source)
        if space <= max(1 << 16, 8 * codes.size):
            # Dense remap: O(rows + space) beats the sort inside np.unique.
            counts = _np.bincount(codes, minlength=space)
            present = _np.flatnonzero(counts)
            remap = _np.zeros(space, dtype=_np.int64)
            remap[present] = _np.arange(present.size, dtype=_np.int64)
            child_codes = remap[codes]
        else:
            present, child_codes = _np.unique(codes, return_inverse=True)
        self = cls.__new__(cls)
        self.decode = [decode_source[code] for code in present.tolist()]
        self._encode = {value: code for code, value in enumerate(self.decode)}
        self._codes = None
        self._codes_array = child_codes.astype(_np.int64, copy=False)
        self._decode_array = None
        self._column = None
        self._translations = {}
        self.uid = next(_dictionary_uids)
        return self

    @property
    def codes(self) -> list[int]:
        """The per-row codes as a plain Python list (lazily realised)."""
        if self._codes is None:
            self._codes = self._codes_array.tolist()
        return self._codes

    # Memoized arrays and per-process uids do not cross pickle.
    def __getstate__(self) -> tuple:
        return (self.codes, self.decode)

    def __setstate__(self, state: tuple) -> None:
        self._codes, self.decode = state
        self._encode = {value: code for code, value in enumerate(self.decode)}
        self._codes_array = None
        self._decode_array = None
        self._column = None
        self._translations = {}
        self.uid = next(_dictionary_uids)

    def codes_array(self):
        """The codes as a cached ``int64`` NumPy array."""
        if self._codes_array is None:
            self._codes_array = _np.array(self._codes, dtype=_np.int64)
        return self._codes_array

    def decode_array(self):
        """The decode table as a cached object-dtype NumPy array."""
        if self._decode_array is None:
            self._decode_array = _object_array(self.decode)
        return self._decode_array

    def object_column(self):
        """The fully decoded column (original value objects), cached."""
        if self._column is None:
            self._column = self.decode_array()[self.codes_array()]
        return self._column

    def translate_to(self, other: "ColumnDictionary"):
        """``int64`` table mapping this dictionary's codes into ``other``'s.

        Entry ``c`` is ``other``'s code for ``self.decode[c]``, or ``-1``
        when the value is absent there.  Memoized per target dictionary, so
        repeated joins against the same base relations pay the translation
        once.
        """
        table = self._translations.get(other.uid)
        if table is None:
            if other is self:
                table = _np.arange(len(self.decode), dtype=_np.int64)
            else:
                table = _np.full(len(self.decode), -1, dtype=_np.int64)
                other_encode = other._encode
                for code, value in enumerate(self.decode):
                    mapped = other_encode.get(value)
                    if mapped is not None:
                        table[code] = mapped
            self._translations[other.uid] = table
        return table


class ColumnarBackend(StorageBackend):
    """Columnar storage with cached, mutation-invalidated access structures.

    Physically the rows live once, as a duplicate-free list in insertion
    order; dictionary-encoded columns are realised lazily (per column, on
    first use by a degree/group computation) so that short-lived intermediate
    relations never pay the encoding cost.  All derived structures — hash
    indexes, key sets, degree vectors, group-bys, prefix tries and distinct
    projections — are memoized per column subset until the next mutation.
    """

    kind = "columnar"
    caches_indexes = True
    supports_kernels = True

    def __init__(self, rows: Iterable[tuple] = (), assume_unique: bool = False) -> None:
        super().__init__()
        if assume_unique:
            self._rows: list[tuple] | None = list(rows)
            self._rowset: set[tuple] | None = None
        else:
            seen: set[tuple] = set()
            unique: list[tuple] = []
            for row in rows:
                if row not in seen:
                    seen.add(row)
                    unique.append(row)
            self._rows = unique
            self._rowset = seen
        self._length = len(self._rows)
        #: Encoded-only state: ``(decode lists, int64 code arrays)`` when the
        #: backend was built by :meth:`from_encoded` and rows have not been
        #: materialised yet.
        self._encoded: tuple[list[list], list] | None = None
        self._frozen: frozenset[tuple] | None = None
        self._dictionaries: dict[int, ColumnDictionary] = {}
        self._hash_indexes: dict[IndexKey, dict[tuple, list[tuple]]] = {}
        self._key_sets: dict[IndexKey, set[tuple]] = {}
        self._degree_indexes: dict[tuple[IndexKey, IndexKey], dict[tuple, int]] = {}
        self._group_indexes: dict[tuple[IndexKey, IndexKey],
                                  dict[tuple, tuple[tuple, ...]]] = {}
        self._tries: dict[IndexKey, list[dict[tuple, set]]] = {}
        self._projections: dict[IndexKey, "ColumnarBackend"] = {}
        #: Memoized kernel access structures (packed keys, sort permutations,
        #: member sets — see :func:`repro.relational.kernels._memo`).
        self._kernel_memos: dict[tuple, object] = {}

    @classmethod
    def from_encoded(cls, decodes: Sequence[list], code_arrays: Sequence,
                     length: int) -> "ColumnarBackend":
        """A backend over dictionary-encoded columns, rows materialised lazily.

        ``decodes[p]`` is column ``p``'s decode list and ``code_arrays[p]``
        its ``int64`` codes.  The decode lists are shared by reference (a
        shard view or kernel join output costs no value copies in-process)
        and the code arrays are the compact payload shipped to process
        workers instead of Python row tuples.  ``decodes[p]`` must be
        canonically ordered (any existing dictionary's ``decode`` qualifies):
        the backend's own dictionaries are then realised vectorized through
        :meth:`ColumnDictionary.from_codes`, which re-establishes the
        deterministic-code invariant (codes cover exactly the values
        *present*) without touching the Python value objects.
        """
        backend = cls()
        backend._rows = None
        backend._rowset = None
        backend._length = int(length)
        backend._encoded = (list(decodes), list(code_arrays))
        return backend

    # -- core storage ----------------------------------------------------------
    def _row_list(self) -> list[tuple]:
        """The rows as a list, decoding the encoded columns on first use."""
        if self._rows is None:
            decodes, codes = self._encoded  # type: ignore[misc]
            pieces = [_object_array(decode)[column]
                      for decode, column in zip(decodes, codes)]
            self._rows = list(zip(*pieces)) if pieces \
                else [()] * self._length
        return self._rows

    def _column_values(self, position: int):
        """One column's values, straight off the codes when rows are lazy."""
        if self._rows is None:
            decodes, codes = self._encoded  # type: ignore[misc]
            return _object_array(decodes[position])[codes[position]]
        return [row[position] for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows) if self._rows is not None else self._length

    def iter_rows(self) -> Iterator[tuple]:
        return iter(self._row_list())

    def row_set(self) -> frozenset[tuple]:
        if self._frozen is None:
            self._frozen = frozenset(self._row_list())
        return self._frozen

    def _ensure_rowset(self) -> set[tuple]:
        if self._rowset is None:
            self._rowset = set(self._row_list())
        return self._rowset

    def contains(self, row: tuple) -> bool:
        return row in self._ensure_rowset()

    def add(self, row: tuple) -> None:
        rowset = self._ensure_rowset()
        if row in rowset:
            return
        rowset.add(row)
        self._row_list().append(row)
        self._invalidate()

    def _invalidate(self) -> None:
        self._frozen = None
        self._encoded = None
        self._dictionaries.clear()
        self._hash_indexes.clear()
        self._key_sets.clear()
        self._degree_indexes.clear()
        self._group_indexes.clear()
        self._tries.clear()
        self._projections.clear()
        self._kernel_memos.clear()

    def fork(self) -> "ColumnarBackend":
        return ColumnarBackend(self._row_list(), assume_unique=True)

    # -- dictionary encoding -----------------------------------------------------
    def dictionary(self, position: int) -> ColumnDictionary:
        """The (lazily realised) dictionary encoding of one column."""
        dictionary = self._dictionaries.get(position)
        if dictionary is None:
            self._count("dictionary_builds")
            if self._encoded is not None:
                # Encoded construction (shard view / kernel output): realise
                # the dictionary vectorized off the parent's decode table.
                decodes, codes = self._encoded
                dictionary = ColumnDictionary.from_codes(codes[position],
                                                         decodes[position])
            else:
                dictionary = ColumnDictionary(self._column_values(position))
            self._dictionaries[position] = dictionary
        else:
            self._count("dictionary_hits")
        return dictionary

    def shard_views(self, assignment, count: int,
                    width: int) -> list["ColumnarBackend"]:
        """``count`` encoded shard backends selected by ``assignment``.

        ``assignment[r]`` is row ``r``'s shard index.  Each view shares the
        parent's decode lists by reference and holds only its own sliced
        ``int64`` code arrays — no Python row tuples are built here.
        """
        dictionaries = [self.dictionary(p) for p in range(width)]
        decodes = [d.decode for d in dictionaries]
        code_columns = [d.codes_array() for d in dictionaries]
        views = []
        for index in range(count):
            mask = assignment == index
            views.append(ColumnarBackend.from_encoded(
                decodes, [column[mask] for column in code_columns],
                int(mask.sum())))
        return views

    def _code_rows(self, positions: IndexKey) -> list[tuple[int, ...]]:
        """Rows restricted to ``positions``, in dictionary-code space."""
        columns = [self.dictionary(p).codes for p in positions]
        return list(zip(*columns)) if columns else [()] * len(self)

    def _decode(self, code_key: tuple[int, ...], positions: IndexKey) -> tuple:
        return tuple(self._dictionaries[p].decode[code]
                     for p, code in zip(positions, code_key))

    # -- cached access structures ---------------------------------------------
    def hash_index(self, key_positions: IndexKey) -> dict[tuple, list[tuple]]:
        index = self._hash_indexes.get(key_positions)
        if index is None:
            self._count("hash_index_builds")
            index = self._compute_hash_index(key_positions)
            self._hash_indexes[key_positions] = index
        else:
            self._count("hash_index_hits")
        return index

    def has_cached_index(self, key_positions: IndexKey) -> bool:
        return key_positions in self._hash_indexes

    def key_set(self, key_positions: IndexKey):
        cached = self._key_sets.get(key_positions)
        if cached is not None:
            self._count("key_set_hits")
            return cached
        index = self._hash_indexes.get(key_positions)
        if index is not None:
            self._count("key_set_hits")
            return index.keys()
        self._count("key_set_builds")
        computed = self._compute_key_set(key_positions)
        self._key_sets[key_positions] = computed
        return computed

    def degree_index(self, given_positions: IndexKey,
                     target_positions: IndexKey) -> dict[tuple, int]:
        key = (given_positions, target_positions)
        cached = self._degree_indexes.get(key)
        if cached is not None:
            self._count("degree_index_hits")
            return cached
        groups = self._group_indexes.get(key)
        if groups is not None:
            degrees = {k: len(v) for k, v in groups.items()}
        else:
            self._count("degree_index_builds")
            degrees = self._degrees_via_codes(given_positions, target_positions)
        self._degree_indexes[key] = degrees
        return degrees

    def _degrees_via_codes(self, given_positions: IndexKey,
                           target_positions: IndexKey) -> dict[tuple, int]:
        """Group in dictionary-code space, decode only the distinct keys."""
        given_codes = self._code_rows(given_positions)
        target_codes = self._code_rows(target_positions)
        groups: dict[tuple, set[tuple]] = {}
        for key, value in zip(given_codes, target_codes):
            values = groups.get(key)
            if values is None:
                groups[key] = {value}
            else:
                values.add(value)
        return {self._decode(key, given_positions): len(values)
                for key, values in groups.items()}

    def group_index(self, given_positions: IndexKey,
                    target_positions: IndexKey) -> dict[tuple, tuple[tuple, ...]]:
        key = (given_positions, target_positions)
        cached = self._group_indexes.get(key)
        if cached is not None:
            self._count("group_index_hits")
            return cached
        self._count("group_index_builds")
        groups = self._compute_groups(given_positions, target_positions)
        frozen = {k: tuple(v) for k, v in groups.items()}
        self._group_indexes[key] = frozen
        self._degree_indexes.setdefault(key, {k: len(v) for k, v in frozen.items()})
        return frozen

    def trie(self, positions: IndexKey) -> list[dict[tuple, set]]:
        cached = self._tries.get(positions)
        if cached is not None:
            self._count("trie_hits")
            return cached
        self._count("trie_builds")
        levels = self._compute_trie(positions)
        self._tries[positions] = levels
        return levels

    def project_backend(self, positions: IndexKey) -> "ColumnarBackend":
        cached = self._projections.get(positions)
        if cached is not None:
            self._count("project_hits")
            return cached
        self._count("project_builds")
        backend = None
        if len(positions) == 1:
            distinct: Iterable[tuple] = [(value,)
                                         for value in self.dictionary(positions[0]).decode]
        else:
            kernel_distinct = (kernels.distinct_encoded(self, positions)
                               if kernels.kernel_ready(self) else None)
            if kernel_distinct is not None:
                backend = ColumnarBackend.from_encoded(*kernel_distinct)
            else:
                distinct = self._compute_key_set(positions)
        if backend is None:
            backend = ColumnarBackend(distinct, assume_unique=True)
        self._projections[positions] = backend
        return backend


# ---------------------------------------------------------------------------
# annotated (weighted) relation storage
# ---------------------------------------------------------------------------

class AnnotatedBackend:
    """Interface (and shared bookkeeping) for *annotated* relation storage.

    Annotated relations map duplicate-free rows to annotation values from a
    commutative semiring (or to sub-probability weights, for the PANDA
    measure tables).  The access structures mirror :class:`StorageBackend`'s,
    adapted to carry the values along:

    * *probe indexes* (``key tuple -> [(row, value), ...]``) serve joins;
    * *key sets* serve semijoins;
    * *marginal group-bys* serve ⊕-aggregation over a column subset — these
      are memoized per ``(positions, tag)`` where the tag names the addition
      operator (two different semirings must not share an aggregate);
    * *sorted groups* (``key -> [(value-tuple, weight), ...]`` by decreasing
      weight) serve PANDA's conditional measures.

    Annotated relations are immutable through their facade APIs (every
    algebra operation spawns a fresh backend), so annotated backends are
    shared structurally between facades without needing the plain backends'
    copy-on-write machinery; every cache records build/hit counters in
    :attr:`stats`.
    """

    kind: str = "abstract"
    #: Whether access structures are memoized (see :attr:`StorageBackend.caches_indexes`).
    caches_indexes: bool = False
    #: Whether the vectorized kernel path may run against this backend (see
    #: :attr:`StorageBackend.supports_kernels`).
    supports_kernels: bool = False

    def __init__(self) -> None:
        self.shared = False
        self.stats: dict[str, int] = {}
        self._stats_lock = threading.Lock()

    # -- bookkeeping ---------------------------------------------------------
    def share(self) -> "AnnotatedBackend":
        """Mark this backend as structurally shared and return it."""
        self.shared = True
        return self

    def _count(self, event: str) -> None:
        with self._stats_lock:
            self.stats[event] = self.stats.get(event, 0) + 1
        _count_process(event)

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        del state["_stats_lock"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._stats_lock = threading.Lock()

    # -- core storage (must be implemented) -----------------------------------
    def __len__(self) -> int:
        raise NotImplementedError

    def items(self) -> Iterator[tuple[tuple, object]]:
        """Iterate ``(row, value)`` pairs."""
        raise NotImplementedError

    def get(self, row: tuple, default=None):
        raise NotImplementedError

    def mapping(self) -> Mapping[tuple, object]:
        """The annotations as a mapping.  Treat the result as read-only — it
        may alias the backend's internal storage."""
        raise NotImplementedError

    def spawn(self, pairs: Iterable[tuple[tuple, object]]) -> "AnnotatedBackend":
        """A new backend of the same kind holding ``pairs`` (last write wins)."""
        return type(self)(pairs)  # type: ignore[call-arg]

    # -- access structures (may cache) -----------------------------------------
    def probe_index(self, key_positions: IndexKey) -> Mapping[tuple, Sequence[tuple]]:
        """``key tuple -> list of (row, value) pairs`` at ``key_positions``."""
        raise NotImplementedError

    def has_cached_probe(self, key_positions: IndexKey) -> bool:
        """True when :meth:`probe_index` for these positions is already built."""
        return False

    def key_set(self, key_positions: IndexKey):
        """The set of distinct key tuples at the given positions."""
        raise NotImplementedError

    def marginal(self, keep_positions: IndexKey, add, tag: str) -> dict[tuple, object]:
        """⊕-aggregate annotations grouped by ``keep_positions``.

        ``add`` is the ⊕ operator and ``tag`` a stable name for it (the
        semiring name); memoizing backends key their cache on
        ``(keep_positions, tag)``.  The returned dict is owned by the backend
        — callers must treat it as read-only.
        """
        raise NotImplementedError

    def sorted_groups(self, key_positions: IndexKey,
                      value_positions: IndexKey) -> Mapping[tuple, Sequence[tuple]]:
        """``key -> [(value tuple, weight), ...]`` sorted by decreasing weight.

        Only meaningful for numeric annotations (the PANDA measure tables).
        """
        raise NotImplementedError

    # -- shared computation helpers -------------------------------------------
    def _compute_probe_index(self, key_positions: IndexKey) -> dict[tuple, list[tuple]]:
        index: dict[tuple, list[tuple]] = {}
        for row, value in self.items():
            key = tuple(row[i] for i in key_positions)
            bucket = index.get(key)
            if bucket is None:
                index[key] = [(row, value)]
            else:
                bucket.append((row, value))
        return index

    def _compute_key_set(self, key_positions: IndexKey) -> set[tuple]:
        return {tuple(row[i] for i in key_positions) for row, _ in self.items()}

    def _compute_marginal(self, keep_positions: IndexKey, add) -> dict[tuple, object]:
        aggregated: dict[tuple, object] = {}
        for row, value in self.items():
            key = tuple(row[i] for i in keep_positions)
            if key in aggregated:
                aggregated[key] = add(aggregated[key], value)
            else:
                aggregated[key] = value
        return aggregated

    def _compute_sorted_groups(self, key_positions: IndexKey,
                               value_positions: IndexKey) -> dict[tuple, list[tuple]]:
        groups: dict[tuple, list[tuple]] = {}
        for row, weight in self.items():
            key = tuple(row[i] for i in key_positions)
            value = tuple(row[i] for i in value_positions)
            groups.setdefault(key, []).append((value, weight))
        for group in groups.values():
            group.sort(key=lambda entry: -entry[1])
        return groups


class DictAnnotatedBackend(AnnotatedBackend):
    """The reference annotated backend: a plain ``dict[tuple, value]``.

    No caching whatsoever — every access structure is recomputed on every
    request, exactly like the seed's three independent dict-of-tuples
    implementations (``AnnotatedRelation``, the FAQ factors and the PANDA
    measure tables) did inline.
    """

    kind = "dict"

    def __init__(self, pairs: Iterable[tuple[tuple, object]] = ()) -> None:
        super().__init__()
        self._annotations: dict[tuple, object] = dict(pairs)

    def __len__(self) -> int:
        return len(self._annotations)

    def items(self) -> Iterator[tuple[tuple, object]]:
        return iter(self._annotations.items())

    def get(self, row: tuple, default=None):
        return self._annotations.get(row, default)

    def mapping(self) -> Mapping[tuple, object]:
        return self._annotations

    def probe_index(self, key_positions: IndexKey) -> dict[tuple, list[tuple]]:
        self._count("probe_index_builds")
        return self._compute_probe_index(key_positions)

    def key_set(self, key_positions: IndexKey) -> set[tuple]:
        self._count("key_set_builds")
        return self._compute_key_set(key_positions)

    def marginal(self, keep_positions: IndexKey, add, tag: str) -> dict[tuple, object]:
        self._count("marginal_builds")
        return self._compute_marginal(keep_positions, add)

    def sorted_groups(self, key_positions: IndexKey,
                      value_positions: IndexKey) -> dict[tuple, list[tuple]]:
        self._count("sorted_group_builds")
        return self._compute_sorted_groups(key_positions, value_positions)


class ColumnarAnnotatedBackend(AnnotatedBackend):
    """Annotated storage with cached access structures.

    The annotated sibling of :class:`ColumnarBackend`: probe indexes, key
    sets, ⊕-marginal group-bys (per addition-operator tag) and sorted groups
    are all memoized — safely forever, because annotated facades are
    immutable (new annotations always spawn a new backend).  Repeated FAQ
    evaluation over the same database reuses the cached per-variable
    elimination indexes instead of rebuilding them, which is what
    ``benchmarks/bench_faq_backends.py`` measures.
    """

    kind = "columnar"
    caches_indexes = True
    supports_kernels = True

    def __init__(self, pairs: Iterable[tuple[tuple, object]] = ()) -> None:
        super().__init__()
        self._annotations: dict[tuple, object] = dict(pairs)
        self._probe_indexes: dict[IndexKey, dict[tuple, list[tuple]]] = {}
        self._key_sets: dict[IndexKey, set[tuple]] = {}
        self._marginals: dict[tuple[IndexKey, str], dict[tuple, object]] = {}
        self._sorted_groups: dict[tuple[IndexKey, IndexKey],
                                  dict[tuple, list[tuple]]] = {}
        self._dictionaries: dict[int, ColumnDictionary] = {}
        self._rows_list: list[tuple] | None = None
        self._values_list: list | None = None
        #: Per value-kind vetted annotation arrays; ``False`` marks a kind the
        #: values failed to vet for, so the check runs once per backend.
        self._kernel_values: dict[str, object] = {}
        #: Memoized kernel access structures (packed keys, sort permutations,
        #: member sets); annotated backends are immutable, so never cleared.
        self._kernel_memos: dict[tuple, object] = {}

    def __len__(self) -> int:
        return len(self._annotations)

    def items(self) -> Iterator[tuple[tuple, object]]:
        return iter(self._annotations.items())

    def get(self, row: tuple, default=None):
        return self._annotations.get(row, default)

    def mapping(self) -> Mapping[tuple, object]:
        return self._annotations

    # -- kernel surface -------------------------------------------------------
    # Annotated facades are immutable (every algebra operation spawns a new
    # backend), so the row/value snapshots and dictionaries are cached forever.
    def rows_list(self) -> list[tuple]:
        """The rows as a list, aligned with :meth:`values_list`."""
        if self._rows_list is None:
            self._rows_list = list(self._annotations.keys())
        return self._rows_list

    def values_list(self) -> list:
        """The annotation values as a list, aligned with :meth:`rows_list`."""
        if self._values_list is None:
            self._values_list = list(self._annotations.values())
        return self._values_list

    def dictionary(self, position: int) -> ColumnDictionary:
        """The (lazily realised) dictionary encoding of one column."""
        dictionary = self._dictionaries.get(position)
        if dictionary is None:
            self._count("dictionary_builds")
            dictionary = ColumnDictionary(row[position] for row in self.rows_list())
            self._dictionaries[position] = dictionary
        else:
            self._count("dictionary_hits")
        return dictionary

    def kernel_values(self, kind: str):
        """The annotations as a vetted kernel value array, or ``None``.

        ``kind`` is a :func:`repro.relational.kernels.vet_values` value kind
        (``"int"``/``"float"``/``"true"``).  ``None`` means the values do not
        qualify for exact vectorized arithmetic and the caller must fall back.
        """
        cached = self._kernel_values.get(kind)
        if cached is None:
            vetted = kernels.vet_values(self.values_list(), kind)
            self._kernel_values[kind] = False if vetted is None else vetted
            return vetted
        return None if cached is False else cached

    def probe_index(self, key_positions: IndexKey) -> dict[tuple, list[tuple]]:
        cached = self._probe_indexes.get(key_positions)
        if cached is not None:
            self._count("probe_index_hits")
            return cached
        self._count("probe_index_builds")
        index = self._compute_probe_index(key_positions)
        self._probe_indexes[key_positions] = index
        return index

    def has_cached_probe(self, key_positions: IndexKey) -> bool:
        return key_positions in self._probe_indexes

    def key_set(self, key_positions: IndexKey):
        cached = self._key_sets.get(key_positions)
        if cached is not None:
            self._count("key_set_hits")
            return cached
        index = self._probe_indexes.get(key_positions)
        if index is not None:
            self._count("key_set_hits")
            return index.keys()
        self._count("key_set_builds")
        computed = self._compute_key_set(key_positions)
        self._key_sets[key_positions] = computed
        return computed

    def marginal(self, keep_positions: IndexKey, add, tag: str) -> dict[tuple, object]:
        cache_key = (keep_positions, tag)
        cached = self._marginals.get(cache_key)
        if cached is not None:
            self._count("marginal_hits")
            return cached
        self._count("marginal_builds")
        aggregated = (kernels.marginal_dict(self, keep_positions, tag)
                      if kernels.kernel_ready(self) else None)
        if aggregated is None:
            aggregated = self._compute_marginal(keep_positions, add)
        self._marginals[cache_key] = aggregated
        return aggregated

    def sorted_groups(self, key_positions: IndexKey,
                      value_positions: IndexKey) -> dict[tuple, list[tuple]]:
        cache_key = (key_positions, value_positions)
        cached = self._sorted_groups.get(cache_key)
        if cached is not None:
            self._count("sorted_group_hits")
            return cached
        self._count("sorted_group_builds")
        groups = self._compute_sorted_groups(key_positions, value_positions)
        self._sorted_groups[cache_key] = groups
        return groups


ANNOTATED_BACKENDS: dict[str, type[AnnotatedBackend]] = {
    DictAnnotatedBackend.kind: DictAnnotatedBackend,
    ColumnarAnnotatedBackend.kind: ColumnarAnnotatedBackend,
}

#: Which annotated engine pairs with each set-semantics engine: the plain
#: ``set`` backend maps to the uncached ``dict`` reference, ``columnar`` to
#: the index-caching annotated engine.
_ANNOTATED_FOR_PLAIN = {
    SetBackend.kind: DictAnnotatedBackend.kind,
    ColumnarBackend.kind: ColumnarAnnotatedBackend.kind,
}


def resolve_annotated_backend(kind: str | None) -> type[AnnotatedBackend]:
    """The annotated backend class for ``kind``.

    ``kind`` may be an annotated kind (``"dict"``/``"columnar"``), a plain
    backend kind (``"set"`` maps to ``"dict"``), or ``None`` for the engine
    paired with the process-default plain backend.
    """
    if kind is None:
        kind = get_default_backend()
    kind = _ANNOTATED_FOR_PLAIN.get(kind, kind)
    try:
        return ANNOTATED_BACKENDS[kind]
    except KeyError as exc:
        raise ValueError(
            f"unknown annotated storage backend {kind!r}; "
            f"available: {sorted(ANNOTATED_BACKENDS)}") from exc


# ---------------------------------------------------------------------------
# backend registry and default selection
# ---------------------------------------------------------------------------

BACKENDS: dict[str, type[StorageBackend]] = {
    SetBackend.kind: SetBackend,
    ColumnarBackend.kind: ColumnarBackend,
}

_default_backend = SetBackend.kind


def register_backend(backend_class: type[StorageBackend]) -> None:
    """Register a third-party storage backend under its ``kind`` name."""
    BACKENDS[backend_class.kind] = backend_class


def resolve_backend(kind: str) -> type[StorageBackend]:
    try:
        return BACKENDS[kind]
    except KeyError as exc:
        raise ValueError(
            f"unknown storage backend {kind!r}; available: {sorted(BACKENDS)}"
        ) from exc


def get_default_backend() -> str:
    """The backend kind new relations use when none is specified."""
    return _default_backend


def set_default_backend(kind: str) -> None:
    """Set the process-wide default backend kind ('set' or 'columnar')."""
    global _default_backend
    resolve_backend(kind)
    _default_backend = kind


@contextmanager
def using_backend(kind: str):
    """Temporarily switch the default backend (for tests and benchmarks)."""
    global _default_backend
    resolve_backend(kind)
    previous = _default_backend
    _default_backend = kind
    try:
        yield
    finally:
        _default_backend = previous
