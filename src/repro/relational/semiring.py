"""Semirings and annotated relations (Section 9.1 of the paper).

Functional aggregate queries (FAQ) compute a sum-of-products of relation
annotations over a commutative semiring ``(K, ⊕, ⊗)``.  Depending on the
semiring the same syntactic query counts solutions, finds the minimum weight
solution, or reduces back to Boolean CQ evaluation.  The paper distinguishes
*idempotent* semirings (where PANDA's partitioning remains sound) from
non-idempotent ones such as the counting semiring.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Iterable, Mapping, Sequence, TypeVar

from repro.relational.relation import Relation

K = TypeVar("K")


@dataclass(frozen=True)
class Semiring(Generic[K]):
    """A commutative semiring ``(K, ⊕, ⊗, 0, 1)``.

    ``idempotent_add`` records whether ``a ⊕ a == a`` for all ``a``; this is
    the property PANDA's data partitioning needs (Section 9.1).
    """

    name: str
    add: Callable[[K, K], K]
    multiply: Callable[[K, K], K]
    zero: K
    one: K
    idempotent_add: bool

    def sum(self, values: Iterable[K]) -> K:
        total = self.zero
        for value in values:
            total = self.add(total, value)
        return total

    def product(self, values: Iterable[K]) -> K:
        total = self.one
        for value in values:
            total = self.multiply(total, value)
        return total


BOOLEAN_SEMIRING: Semiring[bool] = Semiring(
    name="boolean",
    add=lambda a, b: a or b,
    multiply=lambda a, b: a and b,
    zero=False,
    one=True,
    idempotent_add=True,
)

COUNTING_SEMIRING: Semiring[int] = Semiring(
    name="counting",
    add=lambda a, b: a + b,
    multiply=lambda a, b: a * b,
    zero=0,
    one=1,
    idempotent_add=False,
)

MIN_PLUS_SEMIRING: Semiring[float] = Semiring(
    name="min-plus",
    add=min,
    multiply=lambda a, b: a + b,
    zero=float("inf"),
    one=0.0,
    idempotent_add=True,
)

MAX_MIN_SEMIRING: Semiring[float] = Semiring(
    name="max-min",
    add=max,
    multiply=min,
    zero=float("-inf"),
    one=float("inf"),
    idempotent_add=True,
)


class AnnotatedRelation(Generic[K]):
    """A relation whose tuples carry annotations from a semiring.

    Internally this is a mapping from tuples (over ``columns``) to annotation
    values; tuples annotated with the semiring zero are treated as absent.
    """

    def __init__(self, name: str, columns: Sequence[str],
                 annotations: Mapping[tuple, K],
                 semiring: Semiring[K]) -> None:
        self.name = name
        self.columns = tuple(columns)
        self.semiring = semiring
        self._annotations: dict[tuple, K] = {
            tuple(row): value for row, value in annotations.items()
            if value != semiring.zero
        }

    @classmethod
    def from_relation(cls, relation: Relation, semiring: Semiring[K],
                      weight: Callable[[dict], K] | None = None) -> "AnnotatedRelation[K]":
        """Annotate every tuple of a plain relation.

        By default each tuple is annotated with the semiring's ``one`` (so the
        Boolean semiring recovers set semantics and the counting semiring
        counts tuples); ``weight`` can compute per-tuple annotations, e.g. edge
        weights for min-plus queries.
        """
        annotations: dict[tuple, K] = {}
        for row in relation:
            if weight is None:
                annotations[row] = semiring.one
            else:
                annotations[row] = weight(dict(zip(relation.columns, row)))
        return cls(relation.name, relation.columns, annotations, semiring)

    def __len__(self) -> int:
        return len(self._annotations)

    def items(self) -> Iterable[tuple[tuple, K]]:
        return self._annotations.items()

    def annotation(self, row: tuple) -> K:
        return self._annotations.get(tuple(row), self.semiring.zero)

    @property
    def column_set(self) -> frozenset[str]:
        return frozenset(self.columns)

    def support(self) -> Relation:
        """The underlying plain relation (tuples with non-zero annotation)."""
        return Relation(self.name, self.columns, self._annotations.keys())

    # --------------------------------------------------------------- algebra
    def join(self, other: "AnnotatedRelation[K]") -> "AnnotatedRelation[K]":
        """Natural join with annotations multiplied (⊗)."""
        if self.semiring is not other.semiring and self.semiring != other.semiring:
            raise ValueError("cannot join annotated relations over different semirings")
        shared = [c for c in self.columns if c in other.column_set]
        other_extra = [c for c in other.columns if c not in self.column_set]
        out_columns = self.columns + tuple(other_extra)
        index: dict[tuple, list[tuple[tuple, K]]] = {}
        shared_idx_other = [other.columns.index(c) for c in shared]
        for row, value in other.items():
            key = tuple(row[i] for i in shared_idx_other)
            index.setdefault(key, []).append((row, value))
        shared_idx_self = [self.columns.index(c) for c in shared]
        extra_idx_other = [other.columns.index(c) for c in other_extra]
        annotations: dict[tuple, K] = {}
        semiring = self.semiring
        for row, value in self.items():
            key = tuple(row[i] for i in shared_idx_self)
            for other_row, other_value in index.get(key, ()):
                combined_row = row + tuple(other_row[i] for i in extra_idx_other)
                combined_value = semiring.multiply(value, other_value)
                if combined_row in annotations:
                    annotations[combined_row] = semiring.add(
                        annotations[combined_row], combined_value)
                else:
                    annotations[combined_row] = combined_value
        return AnnotatedRelation(f"({self.name} ⋈ {other.name})", out_columns,
                                 annotations, semiring)

    def marginalize(self, keep: Sequence[str]) -> "AnnotatedRelation[K]":
        """Eliminate the columns not in ``keep`` by ⊕-aggregating annotations."""
        keep = [c for c in self.columns if c in set(keep)]
        keep_idx = [self.columns.index(c) for c in keep]
        semiring = self.semiring
        annotations: dict[tuple, K] = {}
        for row, value in self.items():
            key = tuple(row[i] for i in keep_idx)
            if key in annotations:
                annotations[key] = semiring.add(annotations[key], value)
            else:
                annotations[key] = value
        return AnnotatedRelation(f"Σ({self.name})", tuple(keep), annotations, semiring)

    def total(self) -> K:
        """⊕ of every annotation (the value of a Boolean/aggregate query)."""
        return self.semiring.sum(value for _, value in self.items())
