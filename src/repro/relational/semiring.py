"""Semirings and annotated relations (Section 9.1 of the paper).

Functional aggregate queries (FAQ) compute a sum-of-products of relation
annotations over a commutative semiring ``(K, ⊕, ⊗)``.  Depending on the
semiring the same syntactic query counts solutions, finds the minimum weight
solution, or reduces back to Boolean CQ evaluation.  The paper distinguishes
*idempotent* semirings (where PANDA's partitioning remains sound) from
non-idempotent ones such as the counting semiring.

Annotated relations are facades over pluggable
:class:`~repro.relational.storage.AnnotatedBackend` engines, mirroring how
plain relations delegate to :class:`~repro.relational.storage.StorageBackend`:
the ``dict`` reference engine recomputes every join index and marginal
group-by on demand, while the ``columnar`` engine memoizes them (annotated
facades are immutable, so backends are shared freely and caches never go
stale), and repeated FAQ runs over the same database reuse the cached
elimination indexes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generic, Iterable, Iterator, Mapping, Sequence, TypeVar

from repro.relational import kernels
from repro.relational.relation import Relation
from repro.relational.storage import AnnotatedBackend, resolve_annotated_backend

K = TypeVar("K")


@dataclass(frozen=True, eq=False)
class Semiring(Generic[K]):
    """A commutative semiring ``(K, ⊕, ⊗, 0, 1)``.

    ``idempotent_add`` records whether ``a ⊕ a == a`` for all ``a``; this is
    the property PANDA's data partitioning needs (Section 9.1).

    Semirings compare (and hash) **by name**: the operator fields are
    lambdas, and two lambdas with identical code never compare equal, so the
    generated dataclass ``__eq__`` would make two structurally identical,
    separately constructed semirings unequal — and reject perfectly legal
    joins.  The name is the semantic identity.
    """

    name: str
    add: Callable[[K, K], K]
    multiply: Callable[[K, K], K]
    zero: K
    one: K
    idempotent_add: bool

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Semiring):
            return NotImplemented
        return self.name == other.name

    def __hash__(self) -> int:
        return hash(("Semiring", self.name))

    def sum(self, values: Iterable[K]) -> K:
        total = self.zero
        for value in values:
            total = self.add(total, value)
        return total

    def product(self, values: Iterable[K]) -> K:
        total = self.one
        for value in values:
            total = self.multiply(total, value)
        return total


BOOLEAN_SEMIRING: Semiring[bool] = Semiring(
    name="boolean",
    add=lambda a, b: a or b,
    multiply=lambda a, b: a and b,
    zero=False,
    one=True,
    idempotent_add=True,
)

COUNTING_SEMIRING: Semiring[int] = Semiring(
    name="counting",
    add=lambda a, b: a + b,
    multiply=lambda a, b: a * b,
    zero=0,
    one=1,
    idempotent_add=False,
)

MIN_PLUS_SEMIRING: Semiring[float] = Semiring(
    name="min-plus",
    add=min,
    multiply=lambda a, b: a + b,
    zero=float("inf"),
    one=0.0,
    idempotent_add=True,
)

MAX_MIN_SEMIRING: Semiring[float] = Semiring(
    name="max-min",
    add=max,
    multiply=min,
    zero=float("-inf"),
    one=float("inf"),
    idempotent_add=True,
)

#: The Viterbi semiring ``([0, 1], max, ×)``: with tuples annotated by
#: probabilities, an FAQ computes the probability of the most likely
#: satisfying assignment (max-product inference).  ``max`` is idempotent, so
#: the adaptive PANDA path stays sound for it.
MAX_TIMES_SEMIRING: Semiring[float] = Semiring(
    name="max-times",
    add=max,
    multiply=lambda a, b: a * b,
    zero=0.0,
    one=1.0,
    idempotent_add=True,
)


def top_k_min_plus_semiring(k: int) -> Semiring[tuple]:
    """The k-best tropical semiring (Mohri): values are sorted tuples of the
    ``k`` smallest path costs.

    ``a ⊕ b`` merges the two cost lists and keeps the ``k`` smallest;
    ``a ⊗ b`` forms all pairwise sums and keeps the ``k`` smallest.  An FAQ
    over this semiring returns, per output tuple, the costs of its ``k``
    cheapest derivations (k-shortest-paths style).  Costs are kept as a
    multiset — two distinct derivations of the same cost both count — so for
    ``k > 1`` addition is **not** idempotent (``a ⊕ a`` duplicates every
    cost) and PANDA's partitioning must refuse it; ``k == 1`` degenerates to
    plain min-plus, which is idempotent.
    """
    if k < 1:
        raise ValueError("the top-k min-plus semiring needs k >= 1")

    def add(a: tuple, b: tuple) -> tuple:
        return tuple(sorted(a + b)[:k])

    def multiply(a: tuple, b: tuple) -> tuple:
        if not a or not b:
            return ()
        return tuple(sorted(x + y for x in a for y in b)[:k])

    return Semiring(
        name=f"top{k}-min-plus",
        add=add,
        multiply=multiply,
        zero=(),
        one=(0.0,),
        idempotent_add=(k == 1),
    )


#: All built-in (fixed) semirings, for test sweeps.
BUILTIN_SEMIRINGS: tuple[Semiring, ...] = (
    BOOLEAN_SEMIRING,
    COUNTING_SEMIRING,
    MIN_PLUS_SEMIRING,
    MAX_MIN_SEMIRING,
    MAX_TIMES_SEMIRING,
)


class AnnotatedRelation(Generic[K]):
    """A relation whose tuples carry annotations from a semiring.

    A facade over an :class:`~repro.relational.storage.AnnotatedBackend`
    mapping tuples (over ``columns``) to annotation values; tuples annotated
    with the semiring zero are treated as absent and dropped on construction.

    ``backend`` selects the storage engine: an annotated kind name (``"dict"``
    or ``"columnar"``), a plain kind name (``"set"`` maps to the uncached
    ``dict`` engine), a ready :class:`AnnotatedBackend` instance (trusted to
    hold zero-free annotations), or ``None`` for the engine paired with the
    process-default plain backend.
    """

    def __init__(self, name: str, columns: Sequence[str],
                 annotations: Mapping[tuple, K] | Iterable[tuple[tuple, K]],
                 semiring: Semiring[K],
                 backend: str | AnnotatedBackend | None = None) -> None:
        self.name = name
        self.columns = tuple(columns)
        self.semiring = semiring
        if isinstance(backend, AnnotatedBackend):
            self._backend = backend
            return
        backend_class = resolve_annotated_backend(backend)
        pairs = annotations.items() if isinstance(annotations, Mapping) \
            else annotations
        zero = semiring.zero
        self._backend = backend_class(
            (tuple(row), value) for row, value in pairs if value != zero)

    @classmethod
    def _from_backend(cls, name: str, columns: Sequence[str],
                      semiring: Semiring[K],
                      backend: AnnotatedBackend) -> "AnnotatedRelation[K]":
        """Internal fast path: wrap a ready backend without zero filtering."""
        return cls(name, columns, {}, semiring, backend=backend)

    @classmethod
    def from_relation(cls, relation: Relation, semiring: Semiring[K],
                      weight: Callable[[dict], K] | None = None,
                      backend: str | None = None) -> "AnnotatedRelation[K]":
        """Annotate every tuple of a plain relation.

        By default each tuple is annotated with the semiring's ``one`` (so the
        Boolean semiring recovers set semantics and the counting semiring
        counts tuples); ``weight`` can compute per-tuple annotations, e.g. edge
        weights for min-plus queries.  The annotated engine defaults to the
        one paired with the relation's own storage backend.
        """
        if backend is None:
            backend = relation.backend_kind
        if weight is None:
            one = semiring.one
            pairs = ((row, one) for row in relation)
        else:
            columns = relation.columns
            pairs = ((row, weight(dict(zip(columns, row)))) for row in relation)
        return cls(relation.name, relation.columns, pairs, semiring,
                   backend=backend)

    # ---------------------------------------------------------------- basics
    @property
    def backend_kind(self) -> str:
        """The annotated storage engine this relation lives on."""
        return self._backend.kind

    @property
    def storage_stats(self) -> dict[str, int]:
        """Index build/hit counters of the underlying annotated backend."""
        return dict(self._backend.stats)

    def with_backend(self, kind: str) -> "AnnotatedRelation[K]":
        """This annotated relation converted to another storage engine."""
        backend_class = resolve_annotated_backend(kind)
        if backend_class.kind == self._backend.kind:
            return self
        return AnnotatedRelation._from_backend(
            self.name, self.columns, self.semiring,
            backend_class(self._backend.items()))

    def __len__(self) -> int:
        return len(self._backend)

    def items(self) -> Iterator[tuple[tuple, K]]:
        return self._backend.items()

    def annotation(self, row: tuple) -> K:
        value = self._backend.get(tuple(row))
        return self.semiring.zero if value is None else value

    @property
    def column_set(self) -> frozenset[str]:
        return frozenset(self.columns)

    def _positions(self, columns: Iterable[str]) -> tuple[int, ...]:
        return tuple(self.columns.index(c) for c in columns)

    def support(self) -> Relation:
        """The underlying plain relation (tuples with non-zero annotation)."""
        return Relation(self.name, self.columns,
                        (row for row, _ in self._backend.items()))

    def _spawn(self, name: str, columns: Sequence[str],
               pairs: Iterable[tuple[tuple, K]]) -> "AnnotatedRelation[K]":
        """A new facade of the same backend kind; zero annotations are dropped."""
        zero = self.semiring.zero
        return AnnotatedRelation._from_backend(
            name, tuple(columns), self.semiring,
            self._backend.spawn((row, value) for row, value in pairs
                                if value != zero))

    # --------------------------------------------------------------- algebra
    def _check_semiring(self, other: "AnnotatedRelation[K]") -> None:
        if self.semiring != other.semiring:
            raise ValueError(
                f"cannot combine annotated relations over different semirings "
                f"({self.semiring.name!r} vs {other.semiring.name!r})")

    def join(self, other: "AnnotatedRelation[K]",
             name: str | None = None) -> "AnnotatedRelation[K]":
        """Natural join with annotations multiplied (⊗)."""
        return self.join_marginalize(other, drop=(), name=name)

    def join_marginalize(self, other: "AnnotatedRelation[K]",
                         drop: Iterable[str],
                         name: str | None = None) -> "AnnotatedRelation[K]":
        """Natural join ⊗, with the ``drop`` columns ⊕-eliminated on the fly.

        This is the aggregation-pushdown primitive of the FAQ evaluator: the
        full join is never materialised — each matched pair is multiplied and
        immediately ⊕-folded into the output keyed by the surviving columns.
        The probe side is the relation that already has a cached join index
        for the shared columns (else the smaller side), so repeated
        evaluation against the same base relations reuses their indexes.
        """
        self._check_semiring(other)
        drop = set(drop)
        shared = [c for c in self.columns if c in other.column_set]
        other_extra = [c for c in other.columns if c not in self.column_set]
        joined_columns = self.columns + tuple(other_extra)
        out_columns = tuple(c for c in joined_columns if c not in drop)
        out_name = name or (f"({self.name} ⋈ {other.name})" if not drop else
                            f"Σ({self.name} ⋈ {other.name})")
        self_key = self._positions(shared)
        other_key = other._positions(shared)
        if kernels.kernel_ready(self._backend, other._backend):
            out_source = [("l", self.columns.index(c))
                          if c in self.column_set
                          else ("r", other.columns.index(c))
                          for c in out_columns]
            result = kernels.join_marginalize_dict(
                self._backend, other._backend, self_key, other_key,
                out_source, self.semiring.name)
            if result is not None:
                return self._spawn(out_name, out_columns, result.items())
        # Build (or reuse) the probe index on the side that caches; iterate
        # the other.  Preferring an already-cached index keeps base-relation
        # indexes hot across repeated runs.
        probe_other = other._backend.has_cached_probe(other_key) or (
            not self._backend.has_cached_probe(self_key)
            and len(other) <= len(self))
        semiring = self.semiring
        multiply, add = semiring.multiply, semiring.add
        out_positions = tuple(joined_columns.index(c) for c in out_columns)
        identity = out_positions == tuple(range(len(joined_columns)))
        annotations: dict[tuple, K] = {}
        if probe_other:
            index = other._backend.probe_index(other_key)
            extra_idx = other._positions(other_extra)
            for row, value in self._backend.items():
                matches = index.get(tuple(row[i] for i in self_key))
                if not matches:
                    continue
                for other_row, other_value in matches:
                    combined_row = row + tuple(other_row[i] for i in extra_idx)
                    _fold(annotations, combined_row if identity else
                          tuple(combined_row[i] for i in out_positions),
                          multiply(value, other_value), add)
        else:
            index = self._backend.probe_index(self_key)
            other_extra_idx = other._positions(other_extra)
            for other_row, other_value in other._backend.items():
                matches = index.get(tuple(other_row[i] for i in other_key))
                if not matches:
                    continue
                extra = tuple(other_row[i] for i in other_extra_idx)
                for row, value in matches:
                    combined_row = row + extra
                    _fold(annotations, combined_row if identity else
                          tuple(combined_row[i] for i in out_positions),
                          multiply(value, other_value), add)
        return self._spawn(out_name, out_columns, annotations.items())

    def marginalize(self, keep: Sequence[str]) -> "AnnotatedRelation[K]":
        """Eliminate the columns not in ``keep`` by ⊕-aggregating annotations.

        The output columns are exactly ``keep``, in the caller's order (the
        seed silently kept this relation's column order, which made the FAQ
        output schema depend on the elimination order).  Served by the
        backend's memoized marginal group-by (keyed by the semiring name), so
        repeated marginalizations of a cached base factor cost a dictionary
        lookup.
        """
        own = self.column_set
        keep = [c for c in keep if c in own]
        keep_idx = self._positions(keep)
        semiring = self.semiring
        aggregated = self._backend.marginal(keep_idx, semiring.add,
                                            tag=semiring.name)
        # The backend owns the aggregated dict (it may be a shared cache
        # entry); spawn copies it into a fresh backend.
        return self._spawn(f"Σ({self.name})", tuple(keep), aggregated.items())

    def semijoin(self, other: "AnnotatedRelation[K]",
                 name: str | None = None) -> "AnnotatedRelation[K]":
        """``self ⋉ other``: keep rows whose shared columns match ``other``.

        Annotations of ``self`` pass through unchanged — this is junk
        removal, not multiplication.  Served by ``other``'s cached key set.
        """
        self._check_semiring(other)
        shared = [c for c in self.columns if c in other.column_set]
        if not shared:
            if len(other) == 0:
                return self._spawn(name or self.name, self.columns, [])
            return self
        self_key = self._positions(shared)
        if kernels.kernel_ready(self._backend, other._backend):
            kept = kernels.semijoin_keep(self._backend, other._backend,
                                         self_key, other._positions(shared))
            if kept is not None:
                if kept.size == len(self):
                    return self
                rows = self._backend.rows_list()
                values = self._backend.values_list()
                return self._spawn(name or self.name, self.columns,
                                   [(rows[i], values[i])
                                    for i in kept.tolist()])
        other_keys = other._backend.key_set(other._positions(shared))
        pairs = [(row, value) for row, value in self._backend.items()
                 if tuple(row[i] for i in self_key) in other_keys]
        if len(pairs) == len(self):
            return self
        return self._spawn(name or self.name, self.columns, pairs)

    def total(self) -> K:
        """⊕ of every annotation (the value of a Boolean/aggregate query)."""
        return self.semiring.sum(value for _, value in self.items())


def _fold(annotations: dict, key: tuple, value, add) -> None:
    """⊕-accumulate ``value`` into ``annotations[key]``."""
    if key in annotations:
        annotations[key] = add(annotations[key], value)
    else:
        annotations[key] = value
