"""In-memory relations: the storage substrate for query evaluation.

A :class:`Relation` is a named, set-semantics table: a schema (ordered column
names, which play the role of the paper's variables once an atom binds them)
and a set of tuples.  Relations support the handful of operations the
algorithms in this library need — projection, selection, semijoin, hash join,
degree computation and degree-based partitioning — and nothing more.

Physical storage is delegated to a pluggable
:class:`~repro.relational.storage.StorageBackend` (see that module for the
set-of-tuples reference backend and the index-caching columnar backend).  The
facade shares backends structurally: ``rename``/``copy`` and no-op algebra
results reuse the same backend object, so an index built once — e.g. while
collecting degree statistics — is hit again by every later consumer.  Sharing
is made safe by copy-on-write: mutating a shared backend forks it first.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping, Sequence

from repro.relational import kernels
from repro.relational.storage import (
    ColumnarBackend,
    StorageBackend,
    get_default_backend,
    resolve_backend,
    stable_row_hash,
)


class Relation:
    """A finite relation with set semantics.

    Parameters
    ----------
    name:
        The relation's name (used for error messages and display).
    columns:
        Ordered column names.
    rows:
        An iterable of tuples; each tuple must have ``len(columns)`` entries.
        Duplicates are removed (set semantics).
    backend:
        Storage engine selection: a backend kind name (``"set"`` or
        ``"columnar"``), a ready :class:`StorageBackend` instance (trusted to
        hold rows of the right arity), or ``None`` for the process default
        (see :func:`~repro.relational.storage.set_default_backend`).
    """

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[tuple] = (),
                 backend: str | StorageBackend | None = None) -> None:
        if len(set(columns)) != len(columns):
            raise ValueError(f"relation {name!r} has duplicate column names: {columns}")
        self.name = name
        self.columns: tuple[str, ...] = tuple(columns)
        if isinstance(backend, StorageBackend):
            if rows:
                raise ValueError(
                    f"relation {name!r}: pass either rows or a ready backend "
                    "instance, not both (the backend already holds its rows)")
            self._backend = backend
            return
        arity = len(self.columns)
        checked: list[tuple] = []
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise ValueError(
                    f"row {row!r} has {len(row)} values but relation {name!r} "
                    f"has {arity} columns"
                )
            checked.append(row)
        backend_class = resolve_backend(backend or get_default_backend())
        self._backend = backend_class(checked)

    @classmethod
    def _from_backend(cls, name: str, columns: Sequence[str],
                      backend: StorageBackend) -> "Relation":
        """Internal fast path: wrap a ready backend without row validation."""
        return cls(name, columns, backend=backend)

    def _derive(self, name: str, columns: Sequence[str], rows: Iterable[tuple],
                unique: bool = False) -> "Relation":
        """A new relation of the same backend kind from trusted-arity rows."""
        return Relation._from_backend(
            name, columns, self._backend.spawn(rows, assume_unique=unique))

    # ---------------------------------------------------------------- basics
    @property
    def backend_kind(self) -> str:
        """The storage engine this relation lives on ('set', 'columnar', ...)."""
        return self._backend.kind

    @property
    def storage_stats(self) -> dict[str, int]:
        """Index build/hit counters of the underlying backend."""
        return dict(self._backend.stats)

    def with_backend(self, kind: str) -> "Relation":
        """This relation converted to another storage backend (same rows)."""
        if kind == self._backend.kind:
            return self
        backend_class = resolve_backend(kind)
        return Relation._from_backend(
            self.name, self.columns,
            backend_class(self._backend.iter_rows(), assume_unique=True))

    def __len__(self) -> int:
        return len(self._backend)

    def __iter__(self) -> Iterator[tuple]:
        return self._backend.iter_rows()

    def __contains__(self, row: tuple) -> bool:
        return self._backend.contains(tuple(row))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self._backend.row_set() == other._backend.row_set()

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable-ish
        raise TypeError("Relation objects are not hashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, {self.columns}, {len(self)} rows)"

    @property
    def rows(self) -> frozenset[tuple]:
        """An immutable view of the rows."""
        return self._backend.row_set()

    @property
    def column_set(self) -> frozenset[str]:
        return frozenset(self.columns)

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError as exc:
            raise KeyError(f"relation {self.name!r} has no column {column!r}") from exc

    def add(self, row: tuple) -> None:
        """Insert one row (idempotent under set semantics).

        Mutation is copy-on-write: when the backend is structurally shared
        with another facade (via :meth:`copy`, :meth:`rename` or a cached
        bind), it is forked first so the other facade keeps its snapshot.
        """
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row {row!r} does not match the arity of relation {self.name!r}"
            )
        if self._backend.shared:
            self._backend = self._backend.fork()
        self._backend.add(row)

    def copy(self, name: str | None = None) -> "Relation":
        return Relation._from_backend(name or self.name, self.columns,
                                      self._backend.share())

    # --------------------------------------------------------------- algebra
    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        """Rename columns according to ``mapping`` (missing columns unchanged).

        The result shares this relation's backend (copy-on-write), so indexes
        built against either facade serve both.
        """
        new_columns = tuple(mapping.get(column, column) for column in self.columns)
        if len(set(new_columns)) != len(new_columns):
            raise ValueError(
                f"relation {self.name!r} has duplicate column names: {new_columns}")
        return Relation._from_backend(name or self.name, new_columns,
                                      self._backend.share())

    def project(self, columns: Sequence[str], name: str | None = None) -> "Relation":
        """Project (with duplicate elimination) onto ``columns``."""
        indices = tuple(self.column_index(column) for column in columns)
        if indices == tuple(range(len(self.columns))):
            return Relation._from_backend(name or f"π({self.name})",
                                          tuple(columns), self._backend.share())
        projected = self._backend.project_backend(indices)
        return Relation._from_backend(name or f"π({self.name})", tuple(columns),
                                      projected.share())

    def select(self, predicate: Callable[[dict], bool],
               name: str | None = None) -> "Relation":
        """Keep the rows for which ``predicate(row_as_dict)`` is true."""
        rows = [row for row in self._backend.iter_rows()
                if predicate(dict(zip(self.columns, row)))]
        return self._derive(name or f"σ({self.name})", self.columns, rows, unique=True)

    def select_equal(self, column: str, value, name: str | None = None) -> "Relation":
        """Equality selection ``σ_{column = value}``."""
        index = self.column_index(column)
        rows = [row for row in self._backend.iter_rows() if row[index] == value]
        return self._derive(name or f"σ({self.name})", self.columns, rows, unique=True)

    # --------------------------------------------------------------- degrees
    def _split_positions(self, target: Iterable[str],
                         given: Iterable[str]) -> tuple[tuple[int, ...], tuple[int, ...]]:
        """Column positions of ``given``/``target`` in ascending position order."""
        target_set = set(target)
        given_set = set(given)
        target_idx = tuple(i for i, c in enumerate(self.columns) if c in target_set)
        given_idx = tuple(i for i, c in enumerate(self.columns) if c in given_set)
        return given_idx, target_idx

    def degree(self, target: Iterable[str], given: Iterable[str]) -> int:
        """``deg_R(target | given)``: the maximum, over assignments to
        ``given``, of the number of distinct ``target`` values co-occurring
        with it (Section 3.2).  ``given`` may be empty, in which case the
        degree is simply ``|π_target(R)|``.
        """
        missing = (set(target) | set(given)) - self.column_set
        if missing:
            raise KeyError(
                f"columns {sorted(missing)} are not part of relation {self.name!r}"
            )
        given_idx, target_idx = self._split_positions(target, given)
        degrees = self._backend.degree_index(given_idx, target_idx)
        if not degrees:
            return 0
        return max(degrees.values())

    def degree_vector(self, target: Iterable[str],
                      given: Iterable[str]) -> dict[tuple, int]:
        """The full degree vector ``x -> deg_R(target | given = x)``.

        Keys are ``given`` values in column order.  The vector is served from
        the backend's cached group-by structure when available; the returned
        dict is a copy, safe for callers to mutate.
        """
        given_idx, target_idx = self._split_positions(target, given)
        return dict(self._backend.degree_index(given_idx, target_idx))

    def grouped_values(self, target: Iterable[str],
                       given: Iterable[str]) -> Mapping[tuple, tuple[tuple, ...]]:
        """``given values -> distinct target values`` (both in column order).

        This is the cached group-by structure behind :meth:`degree_vector`;
        PANDA's measure initialisation uses it directly so that statistics
        collection and execution share one index.  Treat the result as
        read-only — it may alias the backend's cache.
        """
        given_idx, target_idx = self._split_positions(target, given)
        return self._backend.group_index(given_idx, target_idx)

    def lp_norm_of_degrees(self, target: Iterable[str], given: Iterable[str],
                           order: float) -> float:
        """The ℓ_order norm of the degree vector (Section 9.2).

        ``order = float('inf')`` returns the maximum degree.
        """
        vector = list(self.degree_vector(target, given).values())
        if not vector:
            return 0.0
        if order == float("inf"):
            return float(max(vector))
        return float(sum(d ** order for d in vector) ** (1.0 / order))

    def partition_by_degree(self, given: Sequence[str], target: Sequence[str],
                            threshold: float) -> tuple["Relation", "Relation"]:
        """Split into (light, heavy) parts by the degree of ``given`` values.

        A row goes to the *light* part when the number of distinct ``target``
        values for its ``given`` value is at most ``threshold``, and to the
        *heavy* part otherwise.  This is the partitioning primitive used by
        adaptive (PANDA-style) plans, cf. Section 8.2.
        """
        given_idx, target_idx = self._split_positions(target, given)
        degrees = self._backend.degree_index(given_idx, target_idx)
        light_rows, heavy_rows = [], []
        for row in self._backend.iter_rows():
            key = tuple(row[i] for i in given_idx)
            if degrees.get(key, 0) <= threshold:
                light_rows.append(row)
            else:
                heavy_rows.append(row)
        light = self._derive(f"{self.name}_light", self.columns, light_rows, unique=True)
        heavy = self._derive(f"{self.name}_heavy", self.columns, heavy_rows, unique=True)
        return light, heavy

    def hash_shards(self, count: int) -> list["Relation"]:
        """Partition into ``count`` disjoint relations by a stable row hash.

        The shards cover the relation exactly (every row lands in one shard),
        and the assignment uses :func:`~repro.relational.storage.stable_row_hash`
        so it is identical across worker processes — the invariant the
        engine's partition-parallel execution relies on to merge shard
        answers into exactly the serial result.  ``count == 1`` returns a
        backend-sharing copy (no repartitioning cost).
        """
        if count < 1:
            raise ValueError("the shard count must be at least 1")
        if count == 1:
            return [self.copy()]
        assignment = kernels.shard_assignments(self._backend,
                                               len(self.columns), count)
        if assignment is not None:
            # Zero-copy shard views: each shard shares the parent's decode
            # tables and holds only sliced int64 code arrays.  Sharding always
            # happens in the parent (workers receive ready shards), so any
            # deterministic assignment preserves the merge identity.
            views = self._backend.shard_views(assignment, count,
                                              len(self.columns))
            return [Relation._from_backend(f"{self.name}[{index}/{count}]",
                                           self.columns, view)
                    for index, view in enumerate(views)]
        buckets: list[list[tuple]] = [[] for _ in range(count)]
        for row in self._backend.iter_rows():
            buckets[stable_row_hash(row) % count].append(row)
        return [self._derive(f"{self.name}[{index}/{count}]", self.columns,
                             bucket, unique=True)
                for index, bucket in enumerate(buckets)]

    def encoded_payload(self):
        """Compact dictionary-encoded form for process-worker transport.

        Returns ``(decode lists, int64 code arrays, row count)`` — the
        arguments of :meth:`ColumnarBackend.from_encoded` — or ``None`` when
        the backend cannot serve the kernel path.  Shipping codes instead of
        Python row tuples is what keeps partition-parallel serialization
        proportional to the data, not to the number of Python objects.
        """
        backend = self._backend
        if not kernels.kernel_ready(backend):
            return None
        width = len(self.columns)
        dictionaries = [backend.dictionary(p) for p in range(width)]
        return ([d.decode for d in dictionaries],
                [d.codes_array() for d in dictionaries],
                len(backend))

    # ------------------------------------------------------------------ joins
    def prefix_trie(self, positions: Sequence[int]) -> list[dict[tuple, set]]:
        """The backend's (possibly cached) prefix trie over ``positions``.

        Used by the generic worst-case-optimal join: level ``d`` of the trie
        maps a prefix of values at ``positions[:d]`` to the distinct values at
        ``positions[d]`` compatible with it.
        """
        return self._backend.trie(tuple(positions))

    def hash_join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join on the shared columns.

        The output schema is a deterministic function of the two input
        schemas — ``self.columns`` followed by the remaining columns of
        ``other`` in their order — regardless of which side ends up being
        hashed (the build side is the one with a cached index, else the
        smaller one).
        """
        shared = [c for c in self.columns if c in other.column_set]
        self_key = tuple(self.column_index(c) for c in shared)
        other_key = tuple(other.column_index(c) for c in shared)
        other_extra = [c for c in other.columns if c not in self.column_set]
        other_extra_idx = tuple(other.column_index(c) for c in other_extra)
        out_columns = self.columns + tuple(other_extra)
        out_name = name or f"({self.name} ⋈ {other.name})"
        if kernels.kernel_ready(self._backend, other._backend):
            encoded = kernels.join_encoded(
                self._backend, other._backend, self_key, other_key,
                other_extra_idx, len(self.columns))
            if encoded is not None:
                # The output stays dictionary-encoded: downstream kernels
                # (and their dictionaries) build straight off these arrays,
                # and rows decode lazily only if something reads them.
                return Relation._from_backend(
                    out_name, out_columns, ColumnarBackend.from_encoded(*encoded))
        build_self = self._backend.has_cached_index(self_key) or (
            not other._backend.has_cached_index(other_key)
            and len(self) <= len(other))
        out_rows: list[tuple] = []
        if build_self:
            index = self._backend.hash_index(self_key)
            for row in other._backend.iter_rows():
                matches = index.get(tuple(row[i] for i in other_key))
                if matches:
                    extra = tuple(row[i] for i in other_extra_idx)
                    for match in matches:
                        out_rows.append(match + extra)
        else:
            index = other._backend.hash_index(other_key)
            for row in self._backend.iter_rows():
                matches = index.get(tuple(row[i] for i in self_key))
                if matches:
                    for match in matches:
                        out_rows.append(row + tuple(match[i] for i in other_extra_idx))
        # Rows are unique: inputs are duplicate-free and the output carries
        # every column of both sides.
        return self._derive(out_name, out_columns, out_rows, unique=True)

    def semijoin(self, other: "Relation", name: str | None = None) -> "Relation":
        """``self ⋉ other``: keep rows of ``self`` that join with ``other``."""
        shared = [c for c in self.columns if c in other.column_set]
        if not shared:
            if len(other) == 0:
                return self._derive(name or self.name, self.columns, [], unique=True)
            return self.copy(name)
        self_key = tuple(self.column_index(c) for c in shared)
        other_key = tuple(other.column_index(c) for c in shared)
        if kernels.kernel_ready(self._backend, other._backend):
            kept = kernels.semijoin_keep(self._backend, other._backend,
                                         self_key, other_key)
            if kept is not None:
                if kept.size == len(self):
                    # Nothing was filtered: share the backend, keep indexes warm.
                    return self.copy(name)
                encoded = kernels.gather_encoded(self._backend, kept,
                                                 len(self.columns))
                return Relation._from_backend(
                    name or self.name, self.columns,
                    ColumnarBackend.from_encoded(*encoded))
        other_keys = other._backend.key_set(other_key)
        # On a caching backend, probing bucket-by-bucket through the hash
        # index costs the same as a row scan the first time (the index build
        # is one pass) and O(distinct keys + output) on every later call.
        if self._backend.caches_indexes or self._backend.has_cached_index(self_key):
            rows = []
            for key, bucket in self._backend.hash_index(self_key).items():
                if key in other_keys:
                    rows.extend(bucket)
        else:
            rows = [row for row in self._backend.iter_rows()
                    if tuple(row[i] for i in self_key) in other_keys]
        if len(rows) == len(self):
            # Nothing was filtered: share the backend so its indexes stay warm.
            return self.copy(name)
        return self._derive(name or self.name, self.columns, rows, unique=True)

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set union (schemas must agree up to column order)."""
        if set(self.columns) != set(other.columns):
            raise ValueError(
                f"cannot union {self.name!r} and {other.name!r}: different schemas"
            )
        out_name = name or f"({self.name} ∪ {other.name})"
        if len(other) == 0:
            return self.copy(out_name)
        reordered = other.project(self.columns)
        if len(self) == 0:
            return reordered.copy(out_name)
        rows = list(self._backend.iter_rows())
        rows.extend(reordered._backend.iter_rows())
        return self._derive(out_name, self.columns, rows, unique=False)

    def to_dicts(self) -> list[dict]:
        """The rows as dictionaries, sorted for deterministic display."""
        return [dict(zip(self.columns, row))
                for row in sorted(self._backend.iter_rows(), key=repr)]


def relation_from_pairs(name: str, columns: Sequence[str],
                        pairs: Iterable[tuple]) -> Relation:
    """Convenience constructor used heavily by tests and data generators."""
    return Relation(name, columns, pairs)
