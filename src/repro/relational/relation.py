"""In-memory relations: the storage substrate for query evaluation.

A :class:`Relation` is a named, set-semantics table: a schema (ordered column
names, which play the role of the paper's variables once an atom binds them)
and a set of tuples.  Relations support the handful of operations the
algorithms in this library need — projection, selection, semijoin, hash join,
degree computation and degree-based partitioning — and nothing more.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Callable, Iterable, Iterator, Mapping, Sequence


class Relation:
    """A finite relation with set semantics.

    Parameters
    ----------
    name:
        The relation's name (used for error messages and display).
    columns:
        Ordered column names.
    rows:
        An iterable of tuples; each tuple must have ``len(columns)`` entries.
        Duplicates are removed (set semantics).
    """

    def __init__(self, name: str, columns: Sequence[str],
                 rows: Iterable[tuple] = ()) -> None:
        if len(set(columns)) != len(columns):
            raise ValueError(f"relation {name!r} has duplicate column names: {columns}")
        self.name = name
        self.columns: tuple[str, ...] = tuple(columns)
        self._rows: set[tuple] = set()
        arity = len(self.columns)
        for row in rows:
            row = tuple(row)
            if len(row) != arity:
                raise ValueError(
                    f"row {row!r} has {len(row)} values but relation {name!r} "
                    f"has {arity} columns"
                )
            self._rows.add(row)

    # ---------------------------------------------------------------- basics
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple]:
        return iter(self._rows)

    def __contains__(self, row: tuple) -> bool:
        return tuple(row) in self._rows

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self.columns == other.columns and self._rows == other._rows

    def __hash__(self) -> int:  # pragma: no cover - relations are mutable-ish
        raise TypeError("Relation objects are not hashable")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Relation({self.name!r}, {self.columns}, {len(self)} rows)"

    @property
    def rows(self) -> frozenset[tuple]:
        """An immutable view of the rows."""
        return frozenset(self._rows)

    @property
    def column_set(self) -> frozenset[str]:
        return frozenset(self.columns)

    def column_index(self, column: str) -> int:
        try:
            return self.columns.index(column)
        except ValueError as exc:
            raise KeyError(f"relation {self.name!r} has no column {column!r}") from exc

    def add(self, row: tuple) -> None:
        """Insert one row (idempotent under set semantics)."""
        row = tuple(row)
        if len(row) != len(self.columns):
            raise ValueError(
                f"row {row!r} does not match the arity of relation {self.name!r}"
            )
        self._rows.add(row)

    def copy(self, name: str | None = None) -> "Relation":
        return Relation(name or self.name, self.columns, self._rows)

    # --------------------------------------------------------------- algebra
    def rename(self, mapping: Mapping[str, str], name: str | None = None) -> "Relation":
        """Rename columns according to ``mapping`` (missing columns unchanged)."""
        new_columns = tuple(mapping.get(column, column) for column in self.columns)
        return Relation(name or self.name, new_columns, self._rows)

    def project(self, columns: Sequence[str], name: str | None = None) -> "Relation":
        """Project (with duplicate elimination) onto ``columns``."""
        indices = [self.column_index(column) for column in columns]
        rows = {tuple(row[i] for i in indices) for row in self._rows}
        return Relation(name or f"π({self.name})", tuple(columns), rows)

    def select(self, predicate: Callable[[dict], bool],
               name: str | None = None) -> "Relation":
        """Keep the rows for which ``predicate(row_as_dict)`` is true."""
        rows = [row for row in self._rows
                if predicate(dict(zip(self.columns, row)))]
        return Relation(name or f"σ({self.name})", self.columns, rows)

    def select_equal(self, column: str, value, name: str | None = None) -> "Relation":
        """Equality selection ``σ_{column = value}``."""
        index = self.column_index(column)
        rows = [row for row in self._rows if row[index] == value]
        return Relation(name or f"σ({self.name})", self.columns, rows)

    # --------------------------------------------------------------- degrees
    def degree(self, target: Iterable[str], given: Iterable[str]) -> int:
        """``deg_R(target | given)``: the maximum, over assignments to
        ``given``, of the number of distinct ``target`` values co-occurring
        with it (Section 3.2).  ``given`` may be empty, in which case the
        degree is simply ``|π_target(R)|``.
        """
        target_cols = [c for c in self.columns if c in set(target)]
        given_cols = [c for c in self.columns if c in set(given)]
        missing = (set(target) | set(given)) - self.column_set
        if missing:
            raise KeyError(
                f"columns {sorted(missing)} are not part of relation {self.name!r}"
            )
        target_idx = [self.column_index(c) for c in target_cols]
        given_idx = [self.column_index(c) for c in given_cols]
        groups: dict[tuple, set[tuple]] = defaultdict(set)
        for row in self._rows:
            key = tuple(row[i] for i in given_idx)
            value = tuple(row[i] for i in target_idx)
            groups[key].add(value)
        if not groups:
            return 0
        return max(len(values) for values in groups.values())

    def degree_vector(self, target: Iterable[str],
                      given: Iterable[str]) -> dict[tuple, int]:
        """The full degree vector ``x -> deg_R(target | given = x)``."""
        target_idx = [self.column_index(c) for c in self.columns if c in set(target)]
        given_idx = [self.column_index(c) for c in self.columns if c in set(given)]
        groups: dict[tuple, set[tuple]] = defaultdict(set)
        for row in self._rows:
            key = tuple(row[i] for i in given_idx)
            value = tuple(row[i] for i in target_idx)
            groups[key].add(value)
        return {key: len(values) for key, values in groups.items()}

    def lp_norm_of_degrees(self, target: Iterable[str], given: Iterable[str],
                           order: float) -> float:
        """The ℓ_order norm of the degree vector (Section 9.2).

        ``order = float('inf')`` returns the maximum degree.
        """
        vector = list(self.degree_vector(target, given).values())
        if not vector:
            return 0.0
        if order == float("inf"):
            return float(max(vector))
        return float(sum(d ** order for d in vector) ** (1.0 / order))

    def partition_by_degree(self, given: Sequence[str], target: Sequence[str],
                            threshold: float) -> tuple["Relation", "Relation"]:
        """Split into (light, heavy) parts by the degree of ``given`` values.

        A row goes to the *light* part when the number of distinct ``target``
        values for its ``given`` value is at most ``threshold``, and to the
        *heavy* part otherwise.  This is the partitioning primitive used by
        adaptive (PANDA-style) plans, cf. Section 8.2.
        """
        degrees = self.degree_vector(target, given)
        given_idx = [self.column_index(c) for c in self.columns if c in set(given)]
        light_rows, heavy_rows = [], []
        for row in self._rows:
            key = tuple(row[i] for i in given_idx)
            if degrees.get(key, 0) <= threshold:
                light_rows.append(row)
            else:
                heavy_rows.append(row)
        light = Relation(f"{self.name}_light", self.columns, light_rows)
        heavy = Relation(f"{self.name}_heavy", self.columns, heavy_rows)
        return light, heavy

    # ------------------------------------------------------------------ joins
    def hash_join(self, other: "Relation", name: str | None = None) -> "Relation":
        """Natural join on the shared columns, via hashing the smaller input."""
        shared = [c for c in self.columns if c in other.column_set]
        left, right = self, other
        if len(left) > len(right):
            left, right = right, left
        left_idx = [left.column_index(c) for c in shared]
        right_idx = [right.column_index(c) for c in shared]
        right_extra = [c for c in right.columns if c not in left.column_set]
        right_extra_idx = [right.column_index(c) for c in right_extra]
        index: dict[tuple, list[tuple]] = defaultdict(list)
        for row in left:
            index[tuple(row[i] for i in left_idx)].append(row)
        out_columns = left.columns + tuple(right_extra)
        out_rows = []
        for row in right:
            key = tuple(row[i] for i in right_idx)
            for match in index.get(key, ()):
                out_rows.append(match + tuple(row[i] for i in right_extra_idx))
        return Relation(name or f"({left.name} ⋈ {right.name})", out_columns, out_rows)

    def semijoin(self, other: "Relation", name: str | None = None) -> "Relation":
        """``self ⋉ other``: keep rows of ``self`` that join with ``other``."""
        shared = [c for c in self.columns if c in other.column_set]
        if not shared:
            if len(other) == 0:
                return Relation(name or self.name, self.columns, [])
            return self.copy(name)
        other_keys = {tuple(row[other.column_index(c)] for c in shared)
                      for row in other}
        self_idx = [self.column_index(c) for c in shared]
        rows = [row for row in self._rows
                if tuple(row[i] for i in self_idx) in other_keys]
        return Relation(name or self.name, self.columns, rows)

    def union(self, other: "Relation", name: str | None = None) -> "Relation":
        """Set union (schemas must agree up to column order)."""
        if set(self.columns) != set(other.columns):
            raise ValueError(
                f"cannot union {self.name!r} and {other.name!r}: different schemas"
            )
        reordered = other.project(self.columns)
        return Relation(name or f"({self.name} ∪ {other.name})", self.columns,
                        set(self._rows) | set(reordered.rows))

    def to_dicts(self) -> list[dict]:
        """The rows as dictionaries, sorted for deterministic display."""
        return [dict(zip(self.columns, row)) for row in sorted(self._rows, key=repr)]


def relation_from_pairs(name: str, columns: Sequence[str],
                        pairs: Iterable[tuple]) -> Relation:
    """Convenience constructor used heavily by tests and data generators."""
    return Relation(name, columns, pairs)
