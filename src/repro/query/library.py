"""A library of standard conjunctive queries used throughout the paper.

These factories cover the queries that recur in the tutorial (the 4-cycle
``Q□`` and its full / Boolean variants), as well as the classic families used
by the surrounding literature: k-cycles, k-cliques, k-paths, stars, triangles
and the Loomis–Whitney queries.
"""

from __future__ import annotations

from repro.query.cq import Atom, ConjunctiveQuery


def _cycle_variables(length: int) -> list[str]:
    """Variable names for a cycle: X1..Xk, or the paper's X,Y,Z,W for k=4."""
    if length == 4:
        return ["X", "Y", "Z", "W"]
    if length == 3:
        return ["X", "Y", "Z"]
    return [f"X{i}" for i in range(1, length + 1)]


def _cycle_relations(length: int) -> list[str]:
    """Relation names for a cycle: the paper's R,S,T,U for k=4."""
    if length == 4:
        return ["R", "S", "T", "U"]
    if length == 3:
        return ["R", "S", "T"]
    return [f"R{i}" for i in range(1, length + 1)]


def cycle_query(length: int,
                free_variables=None,
                name: str | None = None) -> ConjunctiveQuery:
    """The ``k``-cycle query over ``k`` binary relations.

    For ``length == 4`` this is exactly the paper's query family
    (Eq. (1)/(2)): atoms ``R(X,Y), S(Y,Z), T(Z,W), U(W,X)``.
    """
    if length < 3:
        raise ValueError("a cycle needs at least 3 edges")
    variables = _cycle_variables(length)
    relations = _cycle_relations(length)
    atoms = []
    for index in range(length):
        pair = (variables[index], variables[(index + 1) % length])
        atoms.append(Atom(relations[index], pair))
    return ConjunctiveQuery(atoms, free_variables=free_variables,
                            name=name or f"C{length}")


def four_cycle_full() -> ConjunctiveQuery:
    """``Q□full(X,Y,Z,W) :- R(X,Y) ∧ S(Y,Z) ∧ T(Z,W) ∧ U(W,X)`` (Eq. (1))."""
    return cycle_query(4, free_variables=None, name="Q_full")


def four_cycle_projected() -> ConjunctiveQuery:
    """``Q□(X,Y) :- R(X,Y) ∧ S(Y,Z) ∧ T(Z,W) ∧ U(W,X)`` (Eq. (2))."""
    return cycle_query(4, free_variables=("X", "Y"), name="Q_box")


def four_cycle_boolean() -> ConjunctiveQuery:
    """``Q□bool() :- R(X,Y) ∧ S(Y,Z) ∧ T(Z,W) ∧ U(W,X)`` (Eq. (76))."""
    return cycle_query(4, free_variables=(), name="Q_bool")


def triangle_query(free_variables=None) -> ConjunctiveQuery:
    """The triangle query ``R(X,Y) ∧ S(Y,Z) ∧ T(Z,X)``."""
    atoms = (Atom("R", ("X", "Y")), Atom("S", ("Y", "Z")), Atom("T", ("Z", "X")))
    return ConjunctiveQuery(atoms, free_variables=free_variables, name="Triangle")


def path_query(length: int, free_variables=None) -> ConjunctiveQuery:
    """The ``k``-path query ``R1(X1,X2) ∧ ... ∧ Rk(Xk, Xk+1)`` (acyclic)."""
    if length < 1:
        raise ValueError("a path needs at least one edge")
    atoms = []
    for index in range(1, length + 1):
        atoms.append(Atom(f"R{index}", (f"X{index}", f"X{index + 1}")))
    return ConjunctiveQuery(atoms, free_variables=free_variables, name=f"P{length}")


def star_query(arms: int, free_variables=None) -> ConjunctiveQuery:
    """The star query with a center ``X0`` and ``arms`` binary atoms."""
    if arms < 1:
        raise ValueError("a star needs at least one arm")
    atoms = [Atom(f"R{index}", ("X0", f"X{index}")) for index in range(1, arms + 1)]
    return ConjunctiveQuery(atoms, free_variables=free_variables, name=f"Star{arms}")


def clique_query(size: int, free_variables=None) -> ConjunctiveQuery:
    """The ``k``-clique query with one binary atom per vertex pair."""
    if size < 3:
        raise ValueError("a clique query needs at least 3 vertices")
    variables = [f"X{i}" for i in range(1, size + 1)]
    atoms = []
    for i in range(size):
        for j in range(i + 1, size):
            atoms.append(Atom(f"E{i + 1}{j + 1}", (variables[i], variables[j])))
    return ConjunctiveQuery(atoms, free_variables=free_variables, name=f"K{size}")


def loomis_whitney_query(dimension: int, free_variables=None) -> ConjunctiveQuery:
    """The Loomis–Whitney query LW_n.

    The query has ``n`` variables and ``n`` atoms; atom ``i`` contains every
    variable except ``Xi``.  LW_3 is the triangle query up to renaming.
    """
    if dimension < 3:
        raise ValueError("Loomis-Whitney queries need dimension >= 3")
    variables = [f"X{i}" for i in range(1, dimension + 1)]
    atoms = []
    for skip in range(dimension):
        kept = tuple(v for index, v in enumerate(variables) if index != skip)
        atoms.append(Atom(f"R{skip + 1}", kept))
    return ConjunctiveQuery(atoms, free_variables=free_variables,
                            name=f"LW{dimension}")


def two_path_projected() -> ConjunctiveQuery:
    """``Q(X1, X3) :- R1(X1, X2) ∧ R2(X2, X3)``: the matrix-product pattern."""
    return path_query(2, free_variables=("X1", "X3"))


def bowtie_query(free_variables=None) -> ConjunctiveQuery:
    """Two triangles sharing one vertex (a classic cyclic, non-acyclic query)."""
    atoms = (
        Atom("A", ("X", "Y")), Atom("B", ("Y", "Z")), Atom("C", ("Z", "X")),
        Atom("D", ("X", "U")), Atom("E", ("U", "V")), Atom("F", ("V", "X")),
    )
    return ConjunctiveQuery(atoms, free_variables=free_variables, name="Bowtie")
