"""Conjunctive queries and atoms (Section 3.1 of the paper).

A conjunctive query (CQ) is a join query

    Q(F) :- R1(X1) ∧ R2(X2) ∧ ... ∧ Rm(Xm)

where each *atom* ``Ri(Xi)`` pairs a relation symbol with a set of variables,
and ``F`` is the set of *free* variables onto which the result is projected.
A CQ with ``F = ∅`` is *Boolean*; a CQ with ``F = V`` (all variables) is
*full*.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.utils.varsets import format_varset, varset


@dataclass(frozen=True)
class Atom:
    """A single atom ``R(X1, ..., Xk)`` of a conjunctive query.

    Attributes
    ----------
    relation:
        The relation symbol, e.g. ``"R"``.
    variables:
        The tuple of variable names in the order they appear in the atom.
        The order matters for binding columns of a stored relation; the
        *set* of variables is what the information-theoretic machinery uses.
    """

    relation: str
    variables: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(set(self.variables)) != len(self.variables):
            raise ValueError(
                f"atom {self.relation}({', '.join(self.variables)}) repeats a variable; "
                "repeated variables are not supported (rename and add an equality atom)"
            )

    @property
    def varset(self) -> frozenset[str]:
        """The set of variables of the atom."""
        return frozenset(self.variables)

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(self.variables)})"


class ConjunctiveQuery:
    """A conjunctive query ``Q(F) :- ∧ atoms``.

    Parameters
    ----------
    atoms:
        The atoms of the body.
    free_variables:
        The free (output) variables ``F``.  ``None`` (the default) means the
        query is *full*: every variable is free.  Pass an empty iterable for a
        Boolean query.
    name:
        Optional name used when printing the query (defaults to ``"Q"``).
    """

    def __init__(self,
                 atoms: Sequence[Atom],
                 free_variables: Iterable[str] | None = None,
                 name: str = "Q") -> None:
        if not atoms:
            raise ValueError("a conjunctive query needs at least one atom")
        self.atoms: tuple[Atom, ...] = tuple(atoms)
        self.name = name
        all_vars: set[str] = set()
        for atom in self.atoms:
            all_vars.update(atom.variables)
        self._variables = frozenset(all_vars)
        if free_variables is None:
            self._free = self._variables
        else:
            free = varset(free_variables)
            unknown = free - self._variables
            if unknown:
                raise ValueError(
                    f"free variables {format_varset(unknown)} do not appear in any atom"
                )
            self._free = free

    # ------------------------------------------------------------------ views
    @property
    def variables(self) -> frozenset[str]:
        """All variables ``V`` appearing in the query."""
        return self._variables

    @property
    def free_variables(self) -> frozenset[str]:
        """The free variables ``F``."""
        return self._free

    @property
    def bound_variables(self) -> frozenset[str]:
        """The existentially quantified variables ``V \\ F``."""
        return self._variables - self._free

    @property
    def relation_names(self) -> tuple[str, ...]:
        """Relation symbols in atom order (duplicates preserved for self-joins)."""
        return tuple(atom.relation for atom in self.atoms)

    @property
    def is_full(self) -> bool:
        """True when every variable is free."""
        return self._free == self._variables

    @property
    def is_boolean(self) -> bool:
        """True when the query has no free variables."""
        return not self._free

    @property
    def has_self_join(self) -> bool:
        """True when the same relation symbol appears in more than one atom."""
        names = self.relation_names
        return len(set(names)) != len(names)

    # ------------------------------------------------------------- derivation
    def with_free_variables(self, free_variables: Iterable[str]) -> "ConjunctiveQuery":
        """Return a copy of the query with a different set of free variables."""
        return ConjunctiveQuery(self.atoms, free_variables, name=self.name)

    def boolean_version(self) -> "ConjunctiveQuery":
        """The Boolean version of this query (no free variables)."""
        return self.with_free_variables(())

    def full_version(self) -> "ConjunctiveQuery":
        """The full version of this query (all variables free)."""
        return self.with_free_variables(self._variables)

    def atoms_for_relation(self, relation: str) -> tuple[Atom, ...]:
        """All atoms over a given relation symbol."""
        return tuple(atom for atom in self.atoms if atom.relation == relation)

    def atom_varsets(self) -> tuple[frozenset[str], ...]:
        """The variable sets of the atoms, in atom order."""
        return tuple(atom.varset for atom in self.atoms)

    def canonicalize(self) -> tuple["ConjunctiveQuery", dict[str, str]]:
        """A variable-renaming-invariant canonical form, plus the renaming.

        Returns ``(canonical_query, renaming)`` where ``renaming`` maps this
        query's variable names onto the canonical names ``v0, v1, ...``.
        Atoms are ordered by ``(relation, arity, structural signature)`` —
        the signature (:func:`~repro.query.hypergraph.vertex_signatures`)
        describes how each variable position is shared between atoms without
        mentioning variable names — and canonical names are assigned in first
        occurrence order over that ordering.  Consequently two queries that
        differ only by a variable renaming (or by reordering atoms with
        distinct signatures) canonicalize to *equal* queries, which is what
        the engine's plan cache keys on; self-join atoms with identical
        signatures keep their relative order, so the form stays deterministic
        for them too.
        """
        from repro.query.hypergraph import vertex_signatures

        signatures = vertex_signatures(
            [(atom.relation, atom.variables) for atom in self.atoms])

        def atom_key(atom: Atom) -> tuple:
            return (atom.relation, len(atom.variables),
                    tuple(signatures[v] for v in atom.variables))

        ordered = sorted(self.atoms, key=atom_key)
        renaming: dict[str, str] = {}
        for atom in ordered:
            for variable in atom.variables:
                if variable not in renaming:
                    renaming[variable] = f"v{len(renaming)}"
        canonical_atoms = [Atom(atom.relation,
                                tuple(renaming[v] for v in atom.variables))
                           for atom in ordered]
        canonical_free = sorted(renaming[v] for v in self._free)
        canonical = ConjunctiveQuery(canonical_atoms,
                                     free_variables=canonical_free,
                                     name="Q_canonical")
        return canonical, renaming

    # -------------------------------------------------------------- rendering
    def __str__(self) -> str:
        head = f"{self.name}({', '.join(sorted(self._free))})"
        body = " ∧ ".join(str(atom) for atom in self.atoms)
        return f"{head} :- {body}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ConjunctiveQuery({self!s})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return (self.atoms == other.atoms
                and self._free == other._free)

    def __hash__(self) -> int:
        return hash((self.atoms, self._free))


def make_atom(relation: str, variables: Iterable[str] | str) -> Atom:
    """Convenience constructor accepting ``"XY"`` shorthand for variables."""
    if isinstance(variables, str):
        if all(ch.isalpha() and ch.isupper() for ch in variables):
            return Atom(relation, tuple(variables))
        return Atom(relation, (variables,))
    return Atom(relation, tuple(variables))
