"""A small parser for datalog-style conjunctive query strings.

The accepted syntax mirrors the paper's notation::

    Q(X, Y) :- R(X, Y), S(Y, Z), T(Z, W), U(W, X)

* the head names the query and lists its free variables (an empty list, as in
  ``Q() :- ...``, yields a Boolean query);
* the body is a comma- (or ``∧``/``&``-) separated list of atoms;
* whitespace is ignored.

The parser is intentionally tiny: it exists so that examples, tests and
benchmarks can state queries in the same form the paper does.
"""

from __future__ import annotations

import re

from repro.query.cq import Atom, ConjunctiveQuery

_ATOM_PATTERN = re.compile(r"\s*([A-Za-z_][A-Za-z_0-9]*)\s*\(([^()]*)\)\s*")
_RULE_SEPARATOR = ":-"


class QueryParseError(ValueError):
    """Raised when a query string cannot be parsed."""


def _parse_atom(text: str) -> tuple[str, tuple[str, ...]]:
    match = _ATOM_PATTERN.fullmatch(text)
    if match is None:
        raise QueryParseError(f"cannot parse atom: {text!r}")
    name = match.group(1)
    arguments = match.group(2).strip()
    if not arguments:
        return name, ()
    variables = tuple(part.strip() for part in arguments.split(","))
    if any(not variable for variable in variables):
        raise QueryParseError(f"empty variable name in atom: {text!r}")
    return name, variables


def _split_body(body: str) -> list[str]:
    # Split on commas that are not inside parentheses, then strip conjunction
    # symbols that the paper uses.
    normalized = body.replace("∧", ",").replace("&&", ",").replace("&", ",")
    parts: list[str] = []
    depth = 0
    current: list[str] = []
    for char in normalized:
        if char == "(":
            depth += 1
        elif char == ")":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(char)
    if current:
        parts.append("".join(current))
    return [part for part in (piece.strip() for piece in parts) if part]


def parse_query(text: str) -> ConjunctiveQuery:
    """Parse a datalog-style rule into a :class:`ConjunctiveQuery`."""
    if _RULE_SEPARATOR not in text:
        raise QueryParseError(f"missing ':-' separator in query: {text!r}")
    head_text, body_text = text.split(_RULE_SEPARATOR, 1)
    head_name, head_variables = _parse_atom(head_text)
    atom_texts = _split_body(body_text)
    if not atom_texts:
        raise QueryParseError("query body is empty")
    atoms = []
    for atom_text in atom_texts:
        relation, variables = _parse_atom(atom_text)
        atoms.append(Atom(relation, variables))
    body_variables = {variable for atom in atoms for variable in atom.variables}
    unknown = set(head_variables) - body_variables
    if unknown:
        raise QueryParseError(
            f"head variables {sorted(unknown)} do not occur in the body"
        )
    return ConjunctiveQuery(atoms, free_variables=head_variables, name=head_name)
