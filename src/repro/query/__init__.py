"""Conjunctive queries, hypergraphs and a small query library (Section 3.1, 3.4)."""

from repro.query.cq import Atom, ConjunctiveQuery, make_atom
from repro.query.hypergraph import (
    Hypergraph,
    JoinTree,
    gyo_reduction,
    is_acyclic,
    is_free_connex,
    query_hypergraph,
)
from repro.query.parser import QueryParseError, parse_query
from repro.query.library import (
    bowtie_query,
    clique_query,
    cycle_query,
    four_cycle_boolean,
    four_cycle_full,
    four_cycle_projected,
    loomis_whitney_query,
    path_query,
    star_query,
    triangle_query,
    two_path_projected,
)

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "make_atom",
    "Hypergraph",
    "JoinTree",
    "gyo_reduction",
    "is_acyclic",
    "is_free_connex",
    "query_hypergraph",
    "parse_query",
    "QueryParseError",
    "cycle_query",
    "four_cycle_full",
    "four_cycle_projected",
    "four_cycle_boolean",
    "triangle_query",
    "path_query",
    "star_query",
    "clique_query",
    "loomis_whitney_query",
    "two_path_projected",
    "bowtie_query",
]
