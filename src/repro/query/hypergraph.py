"""Query hypergraphs, acyclicity testing and join trees (Section 3.4).

A conjunctive query induces a hypergraph whose vertices are the query's
variables and whose hyperedges are the variable sets of the atoms.  The
classical GYO (Graham / Yu–Ozsoyoglu) reduction decides *alpha-acyclicity* and,
as a by-product, yields a join tree, which is what the Yannakakis algorithm
and the tree-decomposition machinery consume.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from repro.utils.varsets import format_varset


class Hypergraph:
    """A multi-hypergraph over named vertices.

    Hyperedges keep their identity (an integer index) because queries may
    contain several atoms with the same variable set (self-joins).
    """

    def __init__(self, edges: Sequence[Iterable[str]]) -> None:
        self._edges: tuple[frozenset[str], ...] = tuple(frozenset(edge) for edge in edges)
        vertices: set[str] = set()
        for edge in self._edges:
            vertices.update(edge)
        self._vertices = frozenset(vertices)

    @property
    def vertices(self) -> frozenset[str]:
        return self._vertices

    @property
    def edges(self) -> tuple[frozenset[str], ...]:
        return self._edges

    def edges_containing(self, vertex: str) -> list[int]:
        """Indices of the hyperedges that contain ``vertex``."""
        return [index for index, edge in enumerate(self._edges) if vertex in edge]

    def neighbors(self, vertex: str) -> frozenset[str]:
        """Vertices sharing at least one hyperedge with ``vertex`` (excluding it)."""
        seen: set[str] = set()
        for edge in self._edges:
            if vertex in edge:
                seen.update(edge)
        seen.discard(vertex)
        return frozenset(seen)

    def induced(self, vertices: Iterable[str]) -> "Hypergraph":
        """The hypergraph induced on a subset of the vertices.

        Each edge is intersected with the subset; empty intersections are
        dropped.
        """
        keep = frozenset(vertices)
        edges = [edge & keep for edge in self._edges if edge & keep]
        return Hypergraph(edges)

    def __str__(self) -> str:
        rendered = ", ".join(format_varset(edge) for edge in self._edges)
        return f"Hypergraph[{rendered}]"


@dataclass(frozen=True)
class JoinTree:
    """A join tree over a sequence of hyperedges.

    ``nodes`` lists the hyperedges (bags); ``parent`` maps a node index to its
    parent index (the root maps to ``None``).  The running-intersection
    property is guaranteed by construction in :func:`gyo_reduction`.
    """

    nodes: tuple[frozenset[str], ...]
    parent: tuple[int | None, ...]

    @property
    def root(self) -> int:
        for index, par in enumerate(self.parent):
            if par is None:
                return index
        raise ValueError("join tree has no root")

    def children(self, index: int) -> list[int]:
        return [child for child, par in enumerate(self.parent) if par == index]

    def edges(self) -> list[tuple[int, int]]:
        """(child, parent) pairs of the tree."""
        return [(child, par) for child, par in enumerate(self.parent) if par is not None]

    def bottom_up_order(self) -> list[int]:
        """Node indices ordered so every node appears before its parent."""
        order: list[int] = []
        visited: set[int] = set()

        def visit(index: int) -> None:
            if index in visited:
                return
            visited.add(index)
            for child in self.children(index):
                visit(child)
            order.append(index)

        visit(self.root)
        # Disconnected forests: visit any leftovers (treated as extra roots).
        for index in range(len(self.nodes)):
            visit(index)
        return order


def gyo_reduction(edges: Sequence[Iterable[str]]) -> JoinTree | None:
    """Run the GYO ear-removal algorithm.

    Returns a :class:`JoinTree` over the input hyperedges if the hypergraph is
    alpha-acyclic, and ``None`` otherwise.

    An *ear* is a hyperedge ``E`` such that every vertex of ``E`` is either
    exclusive to ``E`` or contained in some other hyperedge ``W`` (the
    *witness*); removing ears one by one empties an acyclic hypergraph.
    """
    edge_sets = [frozenset(edge) for edge in edges]
    count = len(edge_sets)
    if count == 0:
        return JoinTree(nodes=(), parent=())
    alive = set(range(count))
    parent: list[int | None] = [None] * count

    def vertex_occurrences() -> dict[str, set[int]]:
        occurrences: dict[str, set[int]] = {}
        for index in alive:
            for vertex in edge_sets[index]:
                occurrences.setdefault(vertex, set()).add(index)
        return occurrences

    progress = True
    while len(alive) > 1 and progress:
        progress = False
        occurrences = vertex_occurrences()
        for index in sorted(alive):
            edge = edge_sets[index]
            exclusive = {v for v in edge if occurrences[v] == {index}}
            shared = edge - exclusive
            if not shared:
                # Isolated edge: it can be attached anywhere; pick any survivor.
                witness = next(iter(sorted(alive - {index})))
                parent[index] = witness
                alive.remove(index)
                progress = True
                break
            witness = _find_witness(index, shared, alive, edge_sets)
            if witness is not None:
                parent[index] = witness
                alive.remove(index)
                progress = True
                break
    if len(alive) > 1:
        return None
    return JoinTree(nodes=tuple(edge_sets), parent=tuple(parent))


def _find_witness(index: int,
                  shared: frozenset[str] | set[str],
                  alive: set[int],
                  edge_sets: Sequence[frozenset[str]]) -> int | None:
    """Find a hyperedge (other than ``index``) containing all ``shared`` vertices."""
    for candidate in sorted(alive):
        if candidate == index:
            continue
        if shared <= edge_sets[candidate]:
            return candidate
    return None


def is_acyclic(edges: Sequence[Iterable[str]]) -> bool:
    """True when the hypergraph given by ``edges`` is alpha-acyclic."""
    return gyo_reduction(edges) is not None


def is_free_connex(edges: Sequence[Iterable[str]], free: Iterable[str]) -> bool:
    """Free-connex acyclicity test.

    A query with hyperedges ``edges`` and free variables ``free`` is
    free-connex if it is acyclic *and* remains acyclic after adding an extra
    hyperedge over the free variables (Section 3.4 of the paper).
    """
    free_set = frozenset(free)
    if not is_acyclic(edges):
        return False
    if not free_set:
        return True
    extended = list(edges) + [free_set]
    return is_acyclic(extended)


def query_hypergraph(query) -> Hypergraph:
    """The hypergraph of a :class:`~repro.query.cq.ConjunctiveQuery`."""
    return Hypergraph([atom.varset for atom in query.atoms])


def vertex_signatures(labeled_edges: Sequence[tuple[str, Sequence[str]]],
                      ) -> dict[str, tuple[tuple[str, int], ...]]:
    """Renaming-invariant structural signatures of the vertices.

    ``labeled_edges`` is a sequence of ``(label, ordered vertices)`` pairs —
    for a query, ``(relation symbol, atom variables)``.  A vertex's signature
    is the sorted multiset of its ``(label, position)`` occurrences, which
    mentions no vertex names: two edge lists that differ only by a vertex
    renaming assign equal signatures to corresponding vertices.

    :meth:`~repro.query.cq.ConjunctiveQuery.canonicalize` sorts atoms by
    these signatures so that the canonical variable numbering (and therefore
    the engine's plan-cache fingerprint) does not depend on the names the
    query author picked.
    """
    occurrences: dict[str, list[tuple[str, int]]] = {}
    for label, vertices in labeled_edges:
        for position, vertex in enumerate(vertices):
            occurrences.setdefault(vertex, []).append((label, position))
    return {vertex: tuple(sorted(entries))
            for vertex, entries in occurrences.items()}
