"""Tests for the evaluation algorithms: brute force, generic join, Yannakakis,
binary plans, static TD plans, FAQ/semiring evaluation and matrix multiplication."""

import pytest

from repro.algorithms import (
    CyclicQueryError,
    best_binary_plan,
    boolean_answer,
    count_answers,
    count_four_cycles,
    count_query_answers,
    count_triangles,
    count_two_paths,
    evaluate_binary_plan,
    evaluate_bruteforce,
    evaluate_faq,
    evaluate_static_plan,
    evaluate_yannakakis,
    four_cycle_exists,
    generic_join,
    generic_join_full,
    greedy_atom_order,
    greedy_elimination_order,
    matrix_multiplication_cost,
    relation_to_matrix,
)
from repro.datagen import hard_four_cycle_instance, random_graph_database
from repro.decompositions import TreeDecomposition, enumerate_tree_decompositions
from repro.paperdata import figure2_database, figure2_expected_output
from repro.query import (
    four_cycle_boolean,
    four_cycle_full,
    four_cycle_projected,
    parse_query,
    path_query,
    star_query,
    triangle_query,
)
from repro.relational import (
    BOOLEAN_SEMIRING,
    COUNTING_SEMIRING,
    MIN_PLUS_SEMIRING,
    Relation,
    WorkCounter,
)
from repro.utils.varsets import varset


# ---------------------------------------------------------------------------
# brute force (ground truth) on Figure 2
# ---------------------------------------------------------------------------

def test_bruteforce_reproduces_figure2_output():
    database = figure2_database()
    output = evaluate_bruteforce(four_cycle_full(), database)
    assert output.project(["X", "Y", "Z", "W"]).rows == frozenset(figure2_expected_output())
    projected = evaluate_bruteforce(four_cycle_projected(), database)
    assert projected.rows == frozenset({(1, "p"), (1, "q")})
    assert boolean_answer(four_cycle_projected(), database)
    assert count_answers(four_cycle_full(), database) == 3


def test_bruteforce_boolean_query():
    database = figure2_database()
    result = evaluate_bruteforce(four_cycle_boolean(), database)
    assert result.columns == ()
    assert len(result) == 1


# ---------------------------------------------------------------------------
# generic (worst-case optimal) join
# ---------------------------------------------------------------------------

def test_generic_join_matches_bruteforce_on_cyclic_queries():
    for query in (triangle_query(), four_cycle_full(), four_cycle_projected()):
        database = random_graph_database(query, 40, 9, seed=3)
        assert generic_join(query, database).rows == evaluate_bruteforce(query, database).rows


def test_generic_join_respects_variable_order_and_counts_work():
    query = triangle_query()
    database = random_graph_database(query, 30, 8, seed=1)
    counter = WorkCounter()
    result = generic_join(query, database, variable_order=["Z", "X", "Y"], counter=counter)
    assert result.rows == evaluate_bruteforce(query, database).rows
    assert counter.intermediate_tuples > 0
    with pytest.raises(ValueError):
        generic_join(query, database, variable_order=["X", "Y"])


def test_generic_join_full_helper():
    query = four_cycle_projected()
    database = figure2_database()
    full = generic_join_full(query, database)
    assert full.rows == evaluate_bruteforce(four_cycle_full(), database).rows


# ---------------------------------------------------------------------------
# Yannakakis
# ---------------------------------------------------------------------------

def test_yannakakis_matches_bruteforce_on_acyclic_queries():
    cases = [
        path_query(3, free_variables=("X1", "X4")),
        path_query(2),
        star_query(3, free_variables=("X0",)),
        parse_query("Q(X1, X2, X3) :- R1(X1, X2), R2(X2, X3)"),
    ]
    for query in cases:
        database = random_graph_database(query, 60, 12, seed=7)
        assert evaluate_yannakakis(query, database).rows == \
            evaluate_bruteforce(query, database).rows


def test_yannakakis_boolean_acyclic():
    query = path_query(2, free_variables=())
    database = random_graph_database(query, 30, 10, seed=2)
    answer = evaluate_yannakakis(query, database)
    assert (len(answer) == 1) == (len(evaluate_bruteforce(query, database)) == 1)


def test_yannakakis_rejects_cyclic_queries():
    with pytest.raises(CyclicQueryError):
        evaluate_yannakakis(triangle_query(), random_graph_database(triangle_query(), 10, 5, seed=0))


def test_yannakakis_work_is_near_linear_on_free_connex_paths():
    # Free variables inside a single atom keep the query free-connex, so the
    # join phase's intermediates stay proportional to the input plus output.
    query = path_query(2, free_variables=("X1", "X2"))
    database = random_graph_database(query, 200, 40, seed=9)
    counter = WorkCounter()
    output = evaluate_yannakakis(query, database, counter=counter)
    per_relation = database.max_relation_size()
    assert counter.max_intermediate <= 2 * per_relation + len(output) + 10


# ---------------------------------------------------------------------------
# binary join plans
# ---------------------------------------------------------------------------

def test_binary_plan_matches_bruteforce_and_reports_work():
    query = four_cycle_projected()
    database = random_graph_database(query, 40, 9, seed=5)
    answer, report = evaluate_binary_plan(query, database)
    assert answer.rows == evaluate_bruteforce(query, database).rows
    assert report.counter.max_intermediate > 0
    assert "left-deep plan" in report.describe(query)
    with pytest.raises(ValueError):
        evaluate_binary_plan(query, database, atom_order=[0, 1])


def test_greedy_atom_order_is_a_permutation():
    query = four_cycle_projected()
    database = figure2_database()
    order = greedy_atom_order(query, database)
    assert sorted(order) == [0, 1, 2, 3]


def test_best_binary_plan_is_no_worse_than_default():
    query = triangle_query()
    database = random_graph_database(query, 40, 8, seed=8)
    _, default_report = evaluate_binary_plan(query, database)
    _, best_report = best_binary_plan(query, database)
    assert best_report.counter.max_intermediate <= default_report.counter.max_intermediate


# ---------------------------------------------------------------------------
# static tree-decomposition plans
# ---------------------------------------------------------------------------

def test_static_plan_matches_bruteforce_on_every_decomposition():
    query = four_cycle_projected()
    database = random_graph_database(query, 40, 9, seed=6)
    truth = evaluate_bruteforce(query, database)
    for decomposition in enumerate_tree_decompositions(query):
        answer, report = evaluate_static_plan(query, database, decomposition)
        assert answer.rows == truth.rows
        assert set(report.bag_sizes) == set(decomposition.bags)
        assert "static plan" in report.describe()


def test_static_plan_boolean_and_validation():
    query = four_cycle_boolean()
    database = hard_four_cycle_instance(10)
    decomposition = enumerate_tree_decompositions(query)[0]
    answer, _ = evaluate_static_plan(query, database, decomposition)
    assert len(answer) == 1
    bad = TreeDecomposition([varset("XY")])
    with pytest.raises(ValueError):
        evaluate_static_plan(query, database, bad)


def test_static_plan_materialises_quadratic_bags_on_hard_instances():
    query = four_cycle_projected()
    size = 40
    database = hard_four_cycle_instance(size)
    decomposition = enumerate_tree_decompositions(query)[0]
    _, report = evaluate_static_plan(query, database, decomposition)
    assert report.max_bag_size >= (size / 2) ** 2


# ---------------------------------------------------------------------------
# FAQ / semiring evaluation
# ---------------------------------------------------------------------------

def test_faq_counting_matches_bruteforce_assignment_count():
    query = four_cycle_full()
    database = figure2_database()
    assert count_query_answers(query, database) == 3
    result = evaluate_faq(four_cycle_boolean(), database, COUNTING_SEMIRING)
    assert result.scalar() == 3


def test_faq_boolean_semiring_answers_boolean_queries():
    database = figure2_database()
    result = evaluate_faq(four_cycle_boolean(), database, BOOLEAN_SEMIRING)
    assert result.scalar() is True


def test_faq_projected_query_counts_witnesses():
    database = figure2_database()
    result = evaluate_faq(four_cycle_projected(), database, COUNTING_SEMIRING)
    counts = {row: value for row, value in result.output.items()}
    columns = result.output.columns
    as_xy = {tuple(dict(zip(columns, row))[v] for v in ("X", "Y")): value
             for row, value in counts.items()}
    assert as_xy == {(1, "p"): 1, (1, "q"): 2}


def test_faq_min_plus_finds_minimum_weight_cycle():
    database = figure2_database()

    def weight(relation_name, row):
        return 1.0 if relation_name == "R" else 0.0

    result = evaluate_faq(four_cycle_boolean(), database, MIN_PLUS_SEMIRING, weight=weight)
    assert result.scalar() == pytest.approx(1.0)


def test_faq_respects_explicit_elimination_order_and_validates_it():
    query = four_cycle_projected()
    database = figure2_database()
    result = evaluate_faq(query, database, COUNTING_SEMIRING, elimination_order=["W", "Z"])
    assert result.max_intermediate > 0
    with pytest.raises(ValueError):
        evaluate_faq(query, database, COUNTING_SEMIRING, elimination_order=["X"])


def test_greedy_elimination_order_covers_bound_variables():
    query = four_cycle_projected()
    assert set(greedy_elimination_order(query)) == {"Z", "W"}


# ---------------------------------------------------------------------------
# matrix-multiplication evaluation
# ---------------------------------------------------------------------------

def test_matmul_counts_match_faq_on_figure2():
    database = figure2_database()
    r, s, t, u = (database.bind_atom(atom) for atom in four_cycle_full().atoms)
    assert count_four_cycles(r, s, t, u) == 3
    assert four_cycle_exists(r, s, t, u)


def test_matmul_counts_match_faq_on_random_data():
    query = four_cycle_full()
    database = random_graph_database(query, 30, 7, seed=11)
    r, s, t, u = (database.bind_atom(atom) for atom in query.atoms)
    assert count_four_cycles(r, s, t, u) == count_query_answers(query, database)


def test_matmul_triangles_and_two_paths():
    query = triangle_query()
    database = random_graph_database(query, 25, 6, seed=12)
    r, s, t = (database.bind_atom(atom) for atom in query.atoms)
    assert count_triangles(r, s, t) == count_query_answers(query, database)
    two_path = path_query(2)
    db2 = random_graph_database(two_path, 30, 8, seed=13)
    r1, r2 = (db2.bind_atom(atom) for atom in two_path.atoms)
    assert count_two_paths(r1, r2, "X2", "X1", "X3") == count_query_answers(two_path, db2)


def test_relation_to_matrix_and_cost_model():
    relation = Relation("R", ("X", "Y"), [(1, "a"), (2, "b")])
    matrix, index = relation_to_matrix(relation, "X", "Y")
    assert matrix.shape == index.shape == (2, 2)
    assert matrix.sum() == 2
    assert matrix_multiplication_cost(10, 10, 10, omega=3.0) == pytest.approx(1000.0)
    assert matrix_multiplication_cost(10, 10, 10, omega=2.0) == pytest.approx(100.0)
