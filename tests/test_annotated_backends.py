"""Annotated-backend parity and cache behaviour (mirrors test_backend_parity).

The annotated storage engine is only pluggable if it is unobservable through
results: FAQ evaluation and direct annotated-relation algebra must give
identical answers on the ``dict`` reference engine and the index-caching
``columnar`` engine.  The cache layer itself must be observable through the
build/hit counters, shared across repeated evaluations via the database's
memoized annotated bindings, and dropped on mutation.
"""

import pytest

from repro.algorithms import evaluate_faq
from repro.datagen import random_graph_database, weighted_four_cycle_workload
from repro.query import four_cycle_projected, path_query, triangle_query
from repro.relational import (
    ANNOTATED_BACKENDS,
    BUILTIN_SEMIRINGS,
    COUNTING_SEMIRING,
    MIN_PLUS_SEMIRING,
    AnnotatedRelation,
    Relation,
    Semiring,
    resolve_annotated_backend,
    using_kernels,
)

ANNOTATED_KINDS = sorted(ANNOTATED_BACKENDS)
PLAIN_KINDS = ("set", "columnar")
SEEDS = (3, 17, 92)


@pytest.fixture(autouse=True, params=[True, False],
                ids=["kernels-on", "kernels-off"])
def _kernel_modes(request):
    """Run every annotated parity/cache case under both the vectorized-kernel
    and the tuple-at-a-time path (the dict engine ignores the toggle)."""
    with using_kernels(request.param):
        yield


def _assert_same_output(outputs):
    reference_kind = PLAIN_KINDS[0]
    reference = outputs[reference_kind]
    for kind, output in outputs.items():
        assert output.columns == reference.columns, (
            f"backend {kind} produced schema {output.columns}")
        assert dict(output.items()) == dict(reference.items()), (
            f"backend {kind} disagrees with {reference_kind}")


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("semiring", BUILTIN_SEMIRINGS,
                         ids=[s.name for s in BUILTIN_SEMIRINGS])
@pytest.mark.parametrize("make_query", [triangle_query, four_cycle_projected,
                                        lambda: path_query(3, free_variables=("X1", "X4"))],
                         ids=["triangle", "four-cycle", "path3"])
def test_faq_cross_backend_parity(make_query, semiring, seed):
    query = make_query()
    outputs = {}
    for kind in PLAIN_KINDS:
        database = random_graph_database(query, size=30, domain=8, seed=seed,
                                         backend=kind)
        outputs[kind] = evaluate_faq(query, database, semiring).output
    _assert_same_output(outputs)


@pytest.mark.parametrize("seed", SEEDS[:2])
def test_weighted_faq_cross_backend_parity(seed):
    outputs = {}
    for kind in PLAIN_KINDS:
        workload = weighted_four_cycle_workload(24, seed=seed, backend=kind)
        outputs[kind] = evaluate_faq(
            workload.query, workload.database, MIN_PLUS_SEMIRING,
            weight=workload.weight, weight_key=workload.weight_key).output
    _assert_same_output(outputs)


@pytest.mark.parametrize("kind", ANNOTATED_KINDS)
def test_annotated_algebra_on_each_backend(kind):
    r = AnnotatedRelation("R", ("x", "y"), {(1, "a"): 2, (2, "b"): 3},
                          COUNTING_SEMIRING, backend=kind)
    s = AnnotatedRelation("S", ("y", "z"), {("a", 10): 5, ("b", 20): 7},
                          COUNTING_SEMIRING, backend=kind)
    assert r.backend_kind == kind
    joined = r.join(s)
    assert joined.backend_kind == kind
    assert joined.annotation((1, "a", 10)) == 10
    assert joined.annotation((2, "b", 20)) == 21
    marginal = joined.marginalize(["y"])
    assert dict(marginal.items()) == {("a",): 10, ("b",): 21}
    semi = r.semijoin(AnnotatedRelation("F", ("y",), {("a",): 1},
                                        COUNTING_SEMIRING, backend=kind))
    assert dict(semi.items()) == {(1, "a"): 2}
    # Fused join+eliminate matches join-then-marginalize.
    fused = r.join_marginalize(s, drop=("y",))
    staged = r.join(s).marginalize([c for c in r.join(s).columns if c != "y"])
    assert dict(fused.items()) == dict(staged.items())


def test_annotated_with_backend_round_trip():
    r = AnnotatedRelation("R", ("x",), {(1,): 4, (2,): 5}, COUNTING_SEMIRING,
                          backend="dict")
    converted = r.with_backend("columnar")
    assert converted.backend_kind == "columnar"
    assert dict(converted.items()) == dict(r.items())
    assert converted.with_backend("columnar") is converted


def test_plain_kind_maps_to_paired_annotated_engine():
    assert resolve_annotated_backend("set").kind == "dict"
    assert resolve_annotated_backend("columnar").kind == "columnar"
    base = Relation("R", ("x",), [(1,)], backend="columnar")
    annotated = AnnotatedRelation.from_relation(base, COUNTING_SEMIRING)
    assert annotated.backend_kind == "columnar"


def test_columnar_annotated_backend_counters_and_reuse():
    r = AnnotatedRelation("R", ("x", "y"), {(1, 2): 1.0, (1, 3): 2.0, (4, 5): 3.0},
                          MIN_PLUS_SEMIRING, backend="columnar")
    first = r.marginalize(["x"])
    second = r.marginalize(["x"])
    assert dict(first.items()) == dict(second.items()) == {(1,): 1.0, (4,): 3.0}
    stats = r.storage_stats
    assert stats["marginal_builds"] == 1
    assert stats["marginal_hits"] == 1


def test_marginal_cache_is_keyed_by_semiring_tag():
    counting = AnnotatedRelation("R", ("x", "y"), {(1, 2): 2, (1, 3): 3},
                                 COUNTING_SEMIRING, backend="columnar")
    # Re-wrap the same backend under a different semiring: the aggregate must
    # not be served from the counting cache entry.
    reinterpreted = AnnotatedRelation("R", ("x", "y"), dict(counting.items()),
                                      Semiring("max-int", max, lambda a, b: a * b,
                                               0, 1, True),
                                      backend=counting._backend)
    assert dict(counting.marginalize(["x"]).items()) == {(1,): 5}
    assert dict(reinterpreted.marginalize(["x"]).items()) == {(1,): 3}


def test_database_memoizes_annotated_bindings_only_on_caching_engines():
    query = triangle_query()
    columnar = random_graph_database(query, 20, 6, seed=1, backend="columnar")
    atom = query.atoms[0]
    first = columnar.annotated_atom(atom, COUNTING_SEMIRING)
    second = columnar.annotated_atom(atom, COUNTING_SEMIRING)
    assert first is second
    plain = random_graph_database(query, 20, 6, seed=1, backend="set")
    assert plain.annotated_atom(atom, COUNTING_SEMIRING) is not \
        plain.annotated_atom(atom, COUNTING_SEMIRING)
    # Different semirings never share a cache entry.
    assert columnar.annotated_atom(atom, MIN_PLUS_SEMIRING) is not first


def test_annotated_binding_cache_drops_on_mutation():
    query = triangle_query()
    database = random_graph_database(query, 15, 6, seed=2, backend="columnar")
    atom = query.atoms[0]
    before = database.annotated_atom(atom, COUNTING_SEMIRING)
    database[atom.relation].add((99, 98))
    after = database.annotated_atom(atom, COUNTING_SEMIRING)
    assert after is not before
    assert len(after) == len(before) + 1


def test_repeated_faq_runs_reuse_cached_indexes():
    query = four_cycle_projected()
    database = random_graph_database(query, 40, 10, seed=7, backend="columnar")
    evaluate_faq(query, database, COUNTING_SEMIRING)
    builds_after_first = sum(c for e, c in database.cache_stats().items()
                             if e.endswith("_builds"))
    for _ in range(3):
        evaluate_faq(query, database, COUNTING_SEMIRING)
    stats = database.cache_stats()
    builds_after_all = sum(c for e, c in stats.items() if e.endswith("_builds"))
    assert builds_after_all == builds_after_first, (
        "warm FAQ evaluations rebuilt base-factor indexes")
    assert sum(c for e, c in stats.items() if e.endswith("_hits")) > 0
