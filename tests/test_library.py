"""Unit tests for the query library."""

import pytest

from repro.query import (
    bowtie_query,
    clique_query,
    cycle_query,
    four_cycle_boolean,
    four_cycle_full,
    four_cycle_projected,
    is_acyclic,
    loomis_whitney_query,
    path_query,
    star_query,
    triangle_query,
    two_path_projected,
)


def test_four_cycle_variants_match_paper():
    full = four_cycle_full()
    assert full.is_full
    assert full.variables == frozenset("XYZW")
    assert [a.relation for a in full.atoms] == ["R", "S", "T", "U"]

    projected = four_cycle_projected()
    assert projected.free_variables == frozenset({"X", "Y"})
    assert projected.bound_variables == frozenset({"Z", "W"})

    boolean = four_cycle_boolean()
    assert boolean.is_boolean


def test_cycle_query_general_lengths():
    c5 = cycle_query(5)
    assert len(c5.atoms) == 5
    assert len(c5.variables) == 5
    assert not is_acyclic([a.varset for a in c5.atoms])
    with pytest.raises(ValueError):
        cycle_query(2)


def test_triangle_and_loomis_whitney():
    triangle = triangle_query()
    assert len(triangle.atoms) == 3
    lw3 = loomis_whitney_query(3)
    assert len(lw3.atoms) == 3
    assert all(len(a.variables) == 2 for a in lw3.atoms)
    lw4 = loomis_whitney_query(4)
    assert all(len(a.variables) == 3 for a in lw4.atoms)
    with pytest.raises(ValueError):
        loomis_whitney_query(2)


def test_path_and_star_are_acyclic():
    assert is_acyclic([a.varset for a in path_query(4).atoms])
    assert is_acyclic([a.varset for a in star_query(5).atoms])
    with pytest.raises(ValueError):
        path_query(0)
    with pytest.raises(ValueError):
        star_query(0)


def test_clique_query_structure():
    k4 = clique_query(4)
    assert len(k4.atoms) == 6
    assert len(k4.variables) == 4
    with pytest.raises(ValueError):
        clique_query(2)


def test_two_path_projected_is_matrix_pattern():
    query = two_path_projected()
    assert query.free_variables == frozenset({"X1", "X3"})


def test_bowtie_is_cyclic_with_six_atoms():
    bowtie = bowtie_query()
    assert len(bowtie.atoms) == 6
    assert not is_acyclic([a.varset for a in bowtie.atoms])
