"""Unit tests for the compiled LP front end and the exact rational simplex."""

from fractions import Fraction

import pytest

from repro.lp import (
    ExactLPError,
    InfeasibleProgramError,
    LinearProgram,
    UnboundedProgramError,
    lp_cache_stats,
    solve_max,
    solve_min_with_inequalities,
    solve_standard_form,
)


def test_linear_program_maximize():
    program = LinearProgram("toy")
    program.add_le({"x": 1.0, "y": 1.0}, 4.0)
    program.add_le({"x": 1.0}, 3.0)
    program.set_objective({"x": 1.0, "y": 2.0}, maximize=True)
    solution = program.solve()
    assert solution.objective == pytest.approx(8.0)
    assert solution.value("y") == pytest.approx(4.0)
    assert solution.nonzero() == pytest.approx({"y": 4.0})


def test_linear_program_minimize_with_equality():
    program = LinearProgram()
    program.add_eq({"x": 1.0, "y": 1.0}, 2.0)
    program.add_ge({"x": 1.0}, 0.5)
    program.set_objective({"x": 3.0, "y": 1.0}, maximize=False)
    solution = program.solve()
    assert solution.objective == pytest.approx(0.5 * 3 + 1.5)


def test_linear_program_infeasible_and_unbounded():
    infeasible = LinearProgram()
    infeasible.add_le({"x": 1.0}, 1.0)
    infeasible.add_ge({"x": 1.0}, 2.0)
    infeasible.set_objective({"x": 1.0})
    with pytest.raises(InfeasibleProgramError):
        infeasible.solve()

    unbounded = LinearProgram()
    unbounded.add_variable("x", lower=0.0)
    unbounded.set_objective({"x": 1.0}, maximize=True)
    with pytest.raises(UnboundedProgramError):
        unbounded.solve()


def test_empty_program_and_describe():
    program = LinearProgram("empty")
    assert program.solve().objective == 0.0
    program.add_le({"x": 1.0}, 1.0)
    assert "1 constraints" in program.describe()
    assert program.num_variables == 1


def test_solve_max_helper():
    solution = solve_max({"x": 1.0}, [({"x": 2.0}, 3.0)])
    assert solution.objective == pytest.approx(1.5)


# ---------------------------------------------------------------------------
# the compiled substrate
# ---------------------------------------------------------------------------

def test_add_variable_redeclaration_intersects_bounds():
    # Regression: re-declaring a variable used to be silently ignored, so a
    # later, tighter declaration had no effect on the solve.
    program = LinearProgram("bounds")
    program.add_variable("x", lower=0.0, upper=5.0)
    program.add_variable("x", lower=3.0)
    assert program.variable_bounds("x") == (3.0, 5.0)
    program.set_objective({"x": 1.0}, maximize=False)
    assert program.solve().objective == pytest.approx(3.0)

    program.add_variable("x", upper=4.0)
    assert program.variable_bounds("x") == (3.0, 4.0)
    program.set_objective({"x": 1.0}, maximize=True)
    assert program.solve().objective == pytest.approx(4.0)


def test_add_variable_conflicting_bounds_raise():
    program = LinearProgram("conflict")
    program.add_variable("x", lower=0.0, upper=2.0)
    with pytest.raises(InfeasibleProgramError):
        program.add_variable("x", lower=3.0)


def test_add_variable_none_bounds_do_not_tighten():
    program = LinearProgram("none-bounds")
    program.add_variable("t", lower=None)
    program.add_variable("t", lower=None, upper=None)
    assert program.variable_bounds("t") == (None, None)


def test_duplicate_constraint_names_rejected():
    # Names address RHS overrides; reusing one would make them ambiguous.
    program = LinearProgram("names")
    program.add_le({"x": 1.0}, 3.0, name="cap")
    with pytest.raises(ValueError):
        program.add_le({"y": 1.0}, 7.0, name="cap")
    with pytest.raises(ValueError):
        program.add_ge({"y": 1.0}, 1.0, name="cap")
    with pytest.raises(ValueError):
        program.add_eq({"y": 1.0}, 1.0, name="cap")


def test_compile_dedupes_identical_rows():
    program = LinearProgram("dupes")
    program.add_le({"x": 1.0, "y": 1.0}, 4.0)
    program.add_le({"y": 1.0, "x": 1.0}, 4.0)   # identical, different key order
    program.add_le({"x": 1.0, "y": 1.0}, 3.0)   # same row, tighter rhs
    program.add_eq({"x": 1.0}, 1.0)
    program.add_eq({"x": 1.0}, 1.0)             # identical equality
    compiled = program.compile()
    assert compiled.dropped_duplicates == 3
    assert compiled.a_ub.shape[0] == 1
    assert compiled.b_ub[0] == pytest.approx(3.0)  # tightest rhs survives
    assert compiled.a_eq.shape[0] == 1
    program.set_objective({"x": 1.0, "y": 1.0}, maximize=True)
    assert program.solve().objective == pytest.approx(3.0)
    assert "duplicate rows dropped" in program.describe()


def test_solve_many_reuses_compiled_matrices():
    program = LinearProgram("many")
    program.add_le({"x": 1.0, "y": 1.0}, 4.0)
    program.add_le({"x": 1.0}, 3.0)
    before = lp_cache_stats()
    solutions = program.solve_many([{"x": 1.0}, {"y": 1.0}, {"x": 1.0, "y": 2.0}],
                                   maximize=True)
    after = lp_cache_stats()
    assert [s.objective for s in solutions] == pytest.approx([3.0, 4.0, 8.0])
    assert after.get("compile_builds", 0) - before.get("compile_builds", 0) == 1
    assert after.get("compile_hits", 0) - before.get("compile_hits", 0) >= 3


def test_repeated_solves_memoize_the_optimum():
    program = LinearProgram("memo")
    program.add_le({"x": 1.0}, 3.0)
    program.set_objective({"x": 1.0}, maximize=True)
    first = program.solve()
    before = lp_cache_stats()
    second = program.solve()
    after = lp_cache_stats()
    assert second.objective == first.objective
    assert after.get("solution_hits", 0) - before.get("solution_hits", 0) == 1
    # memoized results are independent copies
    second.values["x"] = 99.0
    assert program.solve().value("x") == pytest.approx(3.0)
    # structural mutation invalidates the memo
    program.add_le({"x": 1.0}, 2.0)
    assert program.solve().objective == pytest.approx(2.0)


def test_structural_change_invalidates_compiled_matrices():
    program = LinearProgram("invalidate")
    program.add_le({"x": 1.0}, 3.0)
    program.set_objective({"x": 1.0}, maximize=True)
    assert program.solve().objective == pytest.approx(3.0)
    first = program.fingerprint()
    program.add_le({"x": 1.0}, 2.0)
    assert program.solve().objective == pytest.approx(2.0)
    assert program.fingerprint() != first


def test_resolve_rhs_updates_are_per_solve():
    program = LinearProgram("rhs")
    program.add_le({"x": 1.0}, 3.0, name="cap")
    program.set_objective({"x": 1.0}, maximize=True)
    assert program.resolve(rhs_updates={"cap": 5.0}).objective == pytest.approx(5.0)
    # the override did not stick
    assert program.solve().objective == pytest.approx(3.0)
    with pytest.raises(KeyError):
        program.resolve(rhs_updates={"missing": 1.0})


def test_resolve_rhs_updates_respect_dedup_siblings():
    # Relaxing one of two deduplicated rows must keep the sibling enforced.
    program = LinearProgram("dedup-rhs")
    program.add_le({"x": 1.0}, 4.0, name="a")
    program.add_le({"x": 1.0}, 3.0, name="b")  # deduped into one row
    program.set_objective({"x": 1.0}, maximize=True)
    assert program.resolve(rhs_updates={"a": 5.0}).objective == pytest.approx(3.0)
    assert program.resolve(rhs_updates={"b": 5.0}).objective == pytest.approx(4.0)
    assert program.resolve(rhs_updates={"a": 5.0, "b": 6.0}).objective \
        == pytest.approx(5.0)
    assert program.resolve(rhs_updates={"b": 1.0}).objective == pytest.approx(1.0)


def test_resolve_rhs_updates_on_shared_equality_conflict():
    program = LinearProgram("eq-rhs")
    program.add_eq({"x": 1.0}, 2.0, name="a")
    program.add_eq({"x": 1.0}, 2.0, name="b")  # deduped into one row
    program.set_objective({"x": 1.0})
    assert program.resolve(rhs_updates={"a": 3.0, "b": 3.0}).objective \
        == pytest.approx(3.0)
    # diverging one sibling from the other is infeasible, not a silent merge
    with pytest.raises(InfeasibleProgramError):
        program.resolve(rhs_updates={"a": 3.0})


def test_resolve_rhs_updates_keep_ge_orientation():
    # Updating an add_ge row takes the new >= bound, not the negated internal RHS.
    program = LinearProgram("ge-rhs")
    program.add_variable("x", lower=0.0, upper=10.0)
    program.add_ge({"x": 1.0}, 1.0, name="floor")
    program.set_objective({"x": 1.0}, maximize=False)
    assert program.solve().objective == pytest.approx(1.0)
    assert program.resolve(rhs_updates={"floor": 2.0}).objective == pytest.approx(2.0)


def test_resolve_extra_rows_and_variables_are_ephemeral():
    program = LinearProgram("extra")
    program.add_variable("x", lower=0.0, upper=4.0)
    program.add_variable("y", lower=0.0, upper=7.0)
    # max t  s.t.  t <= x-ish caps: the max-min gadget used by the DDR bound.
    solution = program.resolve(
        objective={"t": 1.0}, maximize=True,
        extra_variables={"t": (None, None)},
        extra_le=[({"t": 1.0, "x": -1.0}, 0.0), ({"t": 1.0, "y": -1.0}, 0.0)])
    assert solution.objective == pytest.approx(4.0)
    assert solution.value("t") == pytest.approx(4.0)
    # the gadget left the program untouched
    assert program.variable_names() == ["x", "y"]
    program.set_objective({"x": 1.0, "y": 1.0}, maximize=True)
    assert program.solve().objective == pytest.approx(11.0)
    with pytest.raises(ValueError):
        program.resolve(objective={"x": 1.0}, extra_variables={"x": (0.0, 1.0)})


def test_exact_standard_form():
    # min -x - y  s.t.  x + y + s = 2  (i.e. x + y <= 2)
    solution = solve_standard_form([-1, -1, 0], [[1, 1, 1]], [2])
    assert solution.objective == Fraction(-2)


def test_exact_with_inequalities_matches_scipy():
    # max x + 2y  s.t.  x + y <= 4, x <= 3  ==  min -(x + 2y)
    solution = solve_min_with_inequalities([-1, -2], [[1, 1], [1, 0]], [4, 3])
    assert solution.objective == Fraction(-8)
    assert solution.values[1] == Fraction(4)


def test_exact_equality_constraints():
    # min x + y  s.t.  x + 2y = 4, x >= 0, y >= 0
    solution = solve_min_with_inequalities([1, 1], [], [], [[1, 2]], [4])
    assert solution.objective == Fraction(2)
    assert solution.values == [Fraction(0), Fraction(2)]


def test_exact_infeasible_raises():
    with pytest.raises(ExactLPError):
        solve_min_with_inequalities([1], [[1]], [1], [[1]], [5])


def test_exact_unbounded_raises():
    with pytest.raises(ExactLPError):
        solve_standard_form([-1, 0], [[0, 1]], [1])


def test_exact_fractional_solution_is_exact():
    # min x  s.t.  3x = 1  ->  x = 1/3 exactly.
    solution = solve_min_with_inequalities([1], [], [], [[3]], [1])
    assert solution.values[0] == Fraction(1, 3)
