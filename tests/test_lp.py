"""Unit tests for the LP front end and the exact rational simplex."""

from fractions import Fraction

import pytest

from repro.lp import (
    ExactLPError,
    InfeasibleProgramError,
    LinearProgram,
    UnboundedProgramError,
    solve_max,
    solve_min_with_inequalities,
    solve_standard_form,
)


def test_linear_program_maximize():
    program = LinearProgram("toy")
    program.add_le({"x": 1.0, "y": 1.0}, 4.0)
    program.add_le({"x": 1.0}, 3.0)
    program.set_objective({"x": 1.0, "y": 2.0}, maximize=True)
    solution = program.solve()
    assert solution.objective == pytest.approx(8.0)
    assert solution.value("y") == pytest.approx(4.0)
    assert solution.nonzero() == pytest.approx({"y": 4.0})


def test_linear_program_minimize_with_equality():
    program = LinearProgram()
    program.add_eq({"x": 1.0, "y": 1.0}, 2.0)
    program.add_ge({"x": 1.0}, 0.5)
    program.set_objective({"x": 3.0, "y": 1.0}, maximize=False)
    solution = program.solve()
    assert solution.objective == pytest.approx(0.5 * 3 + 1.5)


def test_linear_program_infeasible_and_unbounded():
    infeasible = LinearProgram()
    infeasible.add_le({"x": 1.0}, 1.0)
    infeasible.add_ge({"x": 1.0}, 2.0)
    infeasible.set_objective({"x": 1.0})
    with pytest.raises(InfeasibleProgramError):
        infeasible.solve()

    unbounded = LinearProgram()
    unbounded.add_variable("x", lower=0.0)
    unbounded.set_objective({"x": 1.0}, maximize=True)
    with pytest.raises(UnboundedProgramError):
        unbounded.solve()


def test_empty_program_and_describe():
    program = LinearProgram("empty")
    assert program.solve().objective == 0.0
    program.add_le({"x": 1.0}, 1.0)
    assert "1 constraints" in program.describe()
    assert program.num_variables == 1


def test_solve_max_helper():
    solution = solve_max({"x": 1.0}, [({"x": 2.0}, 3.0)])
    assert solution.objective == pytest.approx(1.5)


def test_exact_standard_form():
    # min -x - y  s.t.  x + y + s = 2  (i.e. x + y <= 2)
    solution = solve_standard_form([-1, -1, 0], [[1, 1, 1]], [2])
    assert solution.objective == Fraction(-2)


def test_exact_with_inequalities_matches_scipy():
    # max x + 2y  s.t.  x + y <= 4, x <= 3  ==  min -(x + 2y)
    solution = solve_min_with_inequalities([-1, -2], [[1, 1], [1, 0]], [4, 3])
    assert solution.objective == Fraction(-8)
    assert solution.values[1] == Fraction(4)


def test_exact_equality_constraints():
    # min x + y  s.t.  x + 2y = 4, x >= 0, y >= 0
    solution = solve_min_with_inequalities([1, 1], [], [], [[1, 2]], [4])
    assert solution.objective == Fraction(2)
    assert solution.values == [Fraction(0), Fraction(2)]


def test_exact_infeasible_raises():
    with pytest.raises(ExactLPError):
        solve_min_with_inequalities([1], [[1]], [1], [[1]], [5])


def test_exact_unbounded_raises():
    with pytest.raises(ExactLPError):
        solve_standard_form([-1, 0], [[0, 1]], [1])


def test_exact_fractional_solution_is_exact():
    # min x  s.t.  3x = 1  ->  x = 1/3 exactly.
    solution = solve_min_with_inequalities([1], [], [], [[3]], [1])
    assert solution.values[0] == Fraction(1, 3)
