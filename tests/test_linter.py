"""Fixture tests for the invariant linter: every rule catches its seeded
violation and stays quiet on the matching clean counterexample.

Each rule encodes a historical bug class (see :mod:`repro.analysis.rules`);
the seeded fixtures here are miniature reproductions of those bugs, so a
rule that regresses loses exactly the protection it was built for.  The
suppression-hygiene tests pin the contract that keeps the CI gate honest:
justifications are mandatory, stale suppressions are findings, and
suppression syntax inside string literals is inert.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis import lint_paths, lint_source
from repro.analysis.cli import main
from repro.analysis.linter import HYGIENE_RULE, registered_rules
from repro.analysis.rules import (
    ALL_RULES,
    REP101,
    REP102,
    REP103,
    REP104,
    REP105,
    REP106,
    REP107,
    REP108,
)
from repro.relational import WorkCounter


def _lint(source: str, path: str = "src/repro/example.py", rules=None):
    return lint_source(textwrap.dedent(source), path, rules=rules)


def _hits(findings, rule_id: str):
    return [f for f in findings if f.rule == rule_id and not f.suppressed]


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------

def test_every_repo_rule_is_registered():
    ids = [rule.id for rule in registered_rules()]
    assert ids == sorted(ids)
    assert {rule.id for rule in ALL_RULES} <= set(ids)
    for rule in ALL_RULES:
        assert rule.summary and rule.hint and rule.history


# ---------------------------------------------------------------------------
# REP101: unlocked counter mutation
# ---------------------------------------------------------------------------

def test_rep101_flags_unlocked_counter_increment():
    findings = _lint("""
        class EngineStats:
            def note_finish(self):
                self.executions += 1
    """, rules=[REP101])
    (finding,) = _hits(findings, "REP101")
    assert finding.line == 4
    assert "executions" in finding.message
    assert "bump" in finding.hint


def test_rep101_flags_the_historical_planner_fold():
    # The exact shape of the PR 7 true positive in optimizer/planner.py.
    findings = _lint("""
        def _run_adaptive(counter, report):
            counter.max_intermediate = max(counter.max_intermediate,
                                           report.max_intermediate)
    """, rules=[REP101])
    assert _hits(findings, "REP101")


def test_rep101_flags_unlocked_stats_container_write():
    findings = _lint("""
        class Backend:
            def lookup(self, key):
                self.stats["index_misses"] += 1
    """, rules=[REP101])
    assert _hits(findings, "REP101")


def test_rep101_clean_under_lock_and_in_setup():
    findings = _lint("""
        class EngineStats:
            def __init__(self):
                self.executions = 0

            def note_finish(self):
                with self._lock:
                    self.executions += 1

            def restore(self):
                with self._stats_lock:
                    self.stats["index_misses"] += 1
    """, rules=[REP101])
    assert not _hits(findings, "REP101")


def test_observe_max_regression_never_lowers_the_peak():
    # The locked replacement for the planner's raw fold: monotone and atomic.
    counter = WorkCounter()
    counter.observe_max(7)
    assert counter.max_intermediate == 7
    counter.observe_max(3)
    assert counter.max_intermediate == 7
    counter.tally(1, 5)
    assert counter.max_intermediate == 7
    counter.observe_max(11)
    assert counter.max_intermediate == 11


# ---------------------------------------------------------------------------
# REP102: blocking calls inside async def
# ---------------------------------------------------------------------------

def test_rep102_flags_blocking_sleep_in_async_def():
    findings = _lint("""
        import time

        async def handle(request):
            time.sleep(0.1)
            return request
    """, rules=[REP102])
    (finding,) = _hits(findings, "REP102")
    assert "time.sleep" in finding.message
    assert "handle" in finding.message


def test_rep102_flags_subprocess_in_async_def():
    findings = _lint("""
        import subprocess

        async def snapshot(self):
            subprocess.run(["sync"])
    """, rules=[REP102])
    assert _hits(findings, "REP102")


def test_rep102_clean_await_and_sync_context():
    findings = _lint("""
        import asyncio
        import time

        async def handle(request):
            await asyncio.sleep(0.1)
            return request

        def sync_path():
            time.sleep(0.1)
    """, rules=[REP102])
    assert not _hits(findings, "REP102")


# ---------------------------------------------------------------------------
# REP103: cache-invalidation discipline
# ---------------------------------------------------------------------------

def test_rep103_flags_mutation_without_invalidate():
    findings = _lint("""
        class Backend:
            def _invalidate(self):
                self._index_cache.clear()
                self._kernel_memo = None

            def add_row(self, row):
                self._rows.append(row)
    """, rules=[REP103])
    (finding,) = _hits(findings, "REP103")
    assert "add_row" in finding.message
    assert "_rows" in finding.message


def test_rep103_clean_when_mutation_invalidates():
    findings = _lint("""
        class Backend:
            def _invalidate(self):
                self._index_cache.clear()
                self._kernel_memo = None

            def add_row(self, row):
                self._rows.append(row)
                self._invalidate()

            def warm(self):
                # Touching only memo attributes needs no invalidation.
                self._kernel_memo = self._build()
    """, rules=[REP103])
    assert not _hits(findings, "REP103")


def test_rep103_flags_database_mutation_without_revision_bump():
    findings = _lint("""
        class Database:
            def add(self, relation, name):
                self._relations[name] = relation
    """, rules=[REP103])
    (finding,) = _hits(findings, "REP103")
    assert "_revision" in finding.message


def test_rep103_clean_database_mutation_with_revision_bump():
    findings = _lint("""
        class Database:
            def add(self, relation, name):
                self._relations[name] = relation
                self._revision += 1
    """, rules=[REP103])
    assert not _hits(findings, "REP103")


# ---------------------------------------------------------------------------
# REP104: pickle safety of process-pool dispatch
# ---------------------------------------------------------------------------

def test_rep104_flags_lambda_submitted_to_process_pool():
    findings = _lint("""
        from concurrent.futures import ProcessPoolExecutor

        def run(items):
            with ProcessPoolExecutor() as pool:
                return list(pool.map(lambda item: item + 1, items))
    """, rules=[REP104])
    (finding,) = _hits(findings, "REP104")
    assert "lambda" in finding.message


def test_rep104_flags_closure_submitted_to_process_pool():
    findings = _lint("""
        from concurrent.futures import ProcessPoolExecutor

        def run(items):
            def worker(item):
                return item + 1
            with ProcessPoolExecutor() as pool:
                return list(pool.map(worker, items))
    """, rules=[REP104])
    (finding,) = _hits(findings, "REP104")
    assert "worker" in finding.message


def test_rep104_flags_lambda_inside_payload_builder():
    findings = _lint("""
        def _shard_payload(plan):
            return {"rebuild": lambda: plan}
    """, rules=[REP104])
    (finding,) = _hits(findings, "REP104")
    assert "payload" in finding.message


def test_rep104_clean_thread_pool_lambda_and_module_worker():
    # The exact shape of engine/parallel.py: the same name `pool` binds a
    # thread pool (lambda fine) in one branch and a process pool (module
    # worker fine) in the other.
    findings = _lint("""
        from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor

        def _execute_shard(payload):
            return payload

        def run(payloads, executor):
            if executor == "process":
                with ProcessPoolExecutor() as pool:
                    return list(pool.map(_execute_shard, payloads))
            with ThreadPoolExecutor() as pool:
                return list(pool.map(lambda p: p, payloads))
    """, rules=[REP104])
    assert not _hits(findings, "REP104")


# ---------------------------------------------------------------------------
# REP105: cancellation discipline in the evaluation algorithms
# ---------------------------------------------------------------------------

_UNBOUNDED_LOOP = """
    def reduce_to_fixpoint(counter, pending):
        while True:
            if not pending:
                break
            pending.pop()
"""


def test_rep105_flags_unbounded_loop_without_check():
    findings = _lint(_UNBOUNDED_LOOP,
                     path="src/repro/algorithms/example.py", rules=[REP105])
    (finding,) = _hits(findings, "REP105")
    assert "check()" in finding.message


def test_rep105_clean_when_loop_consults_check():
    findings = _lint("""
        def reduce_to_fixpoint(counter, pending):
            while True:
                counter.check()
                if not pending:
                    break
                pending.pop()
    """, path="src/repro/panda/example.py", rules=[REP105])
    assert not _hits(findings, "REP105")


def test_rep105_only_applies_to_evaluation_modules():
    findings = _lint(_UNBOUNDED_LOOP,
                     path="src/repro/service/example.py", rules=[REP105])
    assert not _hits(findings, "REP105")


# ---------------------------------------------------------------------------
# REP106: raw float comparison against LP objectives
# ---------------------------------------------------------------------------

def test_rep106_flags_raw_objective_threshold():
    findings = _lint("""
        def truncate(solution, threshold):
            if solution.objective >= threshold:
                return []
    """, rules=[REP106])
    (finding,) = _hits(findings, "REP106")
    assert "objective" in finding.message
    assert "1e-9" in finding.message


def test_rep106_flags_lp_value_equality():
    findings = _lint("""
        def agrees(lp_value, expected):
            return lp_value == expected
    """, rules=[REP106])
    assert _hits(findings, "REP106")


def test_rep106_clean_with_named_slack_or_epsilon_literal():
    findings = _lint("""
        TRUNCATION_SLACK = 1e-6

        def truncate(solution, threshold):
            if solution.objective >= threshold - TRUNCATION_SLACK:
                return []
            if solution.objective >= threshold - 1e-6:
                return []
    """, rules=[REP106])
    assert not _hits(findings, "REP106")


# ---------------------------------------------------------------------------
# REP107: swallowed exceptions in dispatch/worker paths
# ---------------------------------------------------------------------------

def test_rep107_flags_swallowed_exception_in_engine_path():
    findings = _lint("""
        def submit(task):
            try:
                send(task)
            except Exception:
                pass
    """, path="src/repro/engine/cluster.py", rules=[REP107])
    (finding,) = _hits(findings, "REP107")
    assert "except Exception" in finding.message
    assert "observable sink" in finding.hint


def test_rep107_flags_bare_except_in_worker_function_anywhere():
    # Outside engine/, the scope is keyed on the function name.
    findings = _lint("""
        def run_worker(tasks):
            for task in tasks:
                try:
                    task()
                except:
                    continue
    """, path="src/repro/service/helpers.py", rules=[REP107])
    (finding,) = _hits(findings, "REP107")
    assert "bare" in finding.message


def test_rep107_clean_when_failure_is_recorded_or_reraised():
    findings = _lint("""
        def dispatch_shard(task, stats, result_queue, run):
            try:
                task()
            except Exception as exc:
                result_queue.put(("err", str(exc)))
            try:
                task()
            except Exception:
                stats.bump(task_failures=1)
            try:
                task()
            except Exception:
                run["task_failures"] += 1
            try:
                task()
            except Exception:
                cleanup()
                raise
    """, path="src/repro/engine/cluster.py", rules=[REP107])
    assert not _hits(findings, "REP107")


def test_rep107_ignores_typed_handlers_and_non_dispatch_scopes():
    findings = _lint("""
        def submit(task):
            try:
                task()
            except ValueError:
                pass

        def parse(document):
            try:
                return loads(document)
            except Exception:
                return None
    """, path="src/repro/service/helpers.py", rules=[REP107])
    assert not _hits(findings, "REP107")


def test_rep107_keeps_the_shipped_dispatch_paths_clean():
    report = lint_paths(["src/repro/engine/"], rules=[REP107])
    assert not [f for f in report.findings if not f.suppressed]


# ---------------------------------------------------------------------------
# REP108: counter dicts bypassing the metrics registry
# ---------------------------------------------------------------------------

def test_rep108_flags_unlocked_counter_dict_increment():
    findings = _lint("""
        _CACHE_STATS = {"hits": 0}

        def note_hit():
            _CACHE_STATS["hits"] = _CACHE_STATS.get("hits", 0) + 1
    """, rules=[REP108])
    assert len(_hits(findings, "REP108")) == 1


def test_rep108_flags_stats_counters_attribute_write():
    findings = _lint("""
        class Admission:
            def admit(self):
                self.stats_counters["admitted"] += 1
    """, rules=[REP108])
    assert len(_hits(findings, "REP108")) == 1


def test_rep108_clean_under_lock_and_in_setup():
    findings = _lint("""
        import threading

        _CACHE_STATS = {"hits": 0}
        _STATS_LOCK = threading.Lock()

        def note_hit():
            with _STATS_LOCK:
                _CACHE_STATS["hits"] += 1

        class Admission:
            def __init__(self):
                self.stats_counters = {"admitted": 0}
                self.stats_counters["admitted"] = 0
    """, rules=[REP108])
    assert not _hits(findings, "REP108")


def test_rep108_leaves_rep101_containers_alone():
    # The exact `stats`/`_stats` names are REP101's beat: double-reporting
    # the same mutation under two rules would make every legacy suppression
    # stale.
    findings = _lint("""
        class Backend:
            def note(self):
                self.stats["index_misses"] += 1
    """, rules=[REP108])
    assert not _hits(findings, "REP108")


def test_rep108_keeps_the_shipped_tree_clean():
    report = lint_paths(["src/repro/"], rules=[REP108])
    assert not [f for f in report.findings if not f.suppressed]
    # The admission controller's event-loop counters are the one sanctioned
    # bypass — present, suppressed, and justified.
    suppressed = [f for f in report.findings if f.suppressed]
    assert suppressed
    assert all(f.justification for f in suppressed)


# ---------------------------------------------------------------------------
# suppressions
# ---------------------------------------------------------------------------

def test_justified_suppression_silences_and_is_reported():
    findings = _lint("""
        class EngineStats:
            def note(self):
                self.executions += 1  # repro-analysis: allow[REP101] -- single-threaded bootstrap
    """)
    (finding,) = [f for f in findings if f.rule == "REP101"]
    assert finding.suppressed
    assert finding.justification == "single-threaded bootstrap"
    assert not [f for f in findings if not f.suppressed]


def test_comment_only_line_shields_the_next_line():
    findings = _lint("""
        class EngineStats:
            def note(self):
                # repro-analysis: allow[REP101] -- single-threaded bootstrap
                self.executions += 1
    """)
    (finding,) = [f for f in findings if f.rule == "REP101"]
    assert finding.suppressed


def test_wildcard_suppression_covers_any_rule():
    findings = _lint("""
        class EngineStats:
            def note(self):
                self.executions += 1  # repro-analysis: allow[*] -- fixture exercising the wildcard
    """)
    (finding,) = [f for f in findings if f.rule == "REP101"]
    assert finding.suppressed


def test_unjustified_suppression_is_a_finding_and_does_not_suppress():
    findings = _lint("""
        class EngineStats:
            def note(self):
                self.executions += 1  # repro-analysis: allow[REP101]
    """)
    assert _hits(findings, "REP101"), "bare allow must not suppress"
    (hygiene,) = _hits(findings, HYGIENE_RULE)
    assert "justification" in hygiene.message


def test_unused_suppression_is_a_finding_under_the_full_rule_set():
    findings = _lint("""
        def quiet():
            return 0  # repro-analysis: allow[REP101] -- nothing here anymore
    """)
    (hygiene,) = _hits(findings, HYGIENE_RULE)
    assert "matches no finding" in hygiene.message


def test_unused_suppression_is_legal_under_a_partial_rule_set():
    findings = _lint("""
        def quiet():
            return 0  # repro-analysis: allow[REP106] -- epsilon handled upstream
    """, rules=[REP101])
    assert not findings


def test_suppression_syntax_inside_strings_is_inert():
    findings = _lint('''
        EXAMPLE = "# repro-analysis: allow[REP101] -- not a real comment"

        def doc():
            """Docs may show `# repro-analysis: allow[REP101]` verbatim."""
            return EXAMPLE
    ''')
    assert not findings


def test_unparseable_file_is_a_hygiene_finding():
    findings = lint_source("def broken(:\n", "src/repro/broken.py")
    (finding,) = findings
    assert finding.rule == HYGIENE_RULE
    assert "does not parse" in finding.message


# ---------------------------------------------------------------------------
# report shape, file walking and the CLI
# ---------------------------------------------------------------------------

VIOLATION_MODULE = textwrap.dedent("""
    class EngineStats:
        def note(self):
            self.executions += 1
""")

CLEAN_MODULE = textwrap.dedent("""
    class EngineStats:
        def __init__(self):
            self.executions = 0
""")


def test_lint_paths_walks_directories(tmp_path):
    (tmp_path / "bad.py").write_text(VIOLATION_MODULE)
    nested = tmp_path / "pkg"
    nested.mkdir()
    (nested / "good.py").write_text(CLEAN_MODULE)
    report = lint_paths([tmp_path])
    assert not report.clean
    assert [f.rule for f in report.unsuppressed] == ["REP101"]
    assert report.unsuppressed[0].path.endswith("bad.py")


def test_report_json_shape(tmp_path):
    (tmp_path / "bad.py").write_text(VIOLATION_MODULE)
    payload = json.loads(lint_paths([tmp_path]).to_json())
    assert payload["summary"]["findings"] == 1
    assert payload["summary"]["clean"] is False
    assert payload["summary"]["by_rule"] == {"REP101": 1}
    (finding,) = payload["findings"]
    assert finding["rule"] == "REP101"
    assert finding["line"] == 4
    assert finding["hint"]
    assert finding["suppressed"] is False


def test_cli_exit_codes_and_json(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(VIOLATION_MODULE)
    good = tmp_path / "good.py"
    good.write_text(CLEAN_MODULE)

    assert main([str(good)]) == 0
    assert "no findings" in capsys.readouterr().out

    assert main([str(bad), "--format=json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["summary"]["by_rule"] == {"REP101": 1}

    assert main([str(bad), "--rule", "REP102"]) == 0
    capsys.readouterr()


def test_cli_rejects_unknown_rule_ids(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--rule", "REP999"])
    assert excinfo.value.code == 2


def test_cli_lists_rules(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ALL_RULES:
        assert rule.id in out
        assert rule.history.splitlines()[0][:20] in out
