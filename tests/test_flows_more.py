"""Additional Shannon-flow / proof-sequence coverage beyond the running example.

These tests exercise the certificate machinery on other query families
(triangle with degree constraints, Loomis–Whitney, longer cycles) and check
the structural invariants the paper states: flows match the primal bounds,
integral forms scale correctly, proof sequences never increase the value under
any polymatroid, and the Reset lemma composes with all of it.
"""

from collections import Counter

import pytest

from repro.bounds import ddr_polymatroid_bound
from repro.entropy import entropy_vector, modular_function
from repro.flows import (
    Term,
    construct_proof_sequence,
    find_shannon_flow,
    reset,
)
from repro.paperdata import figure2_database
from repro.query import cycle_query, loomis_whitney_query, triangle_query
from repro.stats import ConstraintSet, collect_statistics, statistics_for_query
from repro.utils.varsets import varset


def _total_value(terms: Counter, h) -> float:
    return sum(count * term.evaluate(h) for term, count in terms.items())


def _check_sequence_never_increases(sequence, h) -> None:
    """Replaying the steps can only decrease Σ h over the current terms."""
    terms = Counter(sequence.initial_sources)
    previous = _total_value(terms, h)
    for step in sequence.steps:
        step.apply(terms)
        current = _total_value(terms, h)
        assert current <= previous + 1e-9
        previous = current


def test_proof_sequence_is_monotone_under_concrete_entropy_vectors(s_box):
    flow = find_shannon_flow([varset("XYZ"), varset("YZW")], s_box,
                             variables=varset("XYZW"))
    sequence = construct_proof_sequence(flow.to_integral())
    # A real entropy vector (from the Figure 2 output) and a modular polymatroid.
    database = figure2_database()
    from repro.algorithms import evaluate_bruteforce
    from repro.query import four_cycle_full

    output = evaluate_bruteforce(four_cycle_full(), database).project(["X", "Y", "Z", "W"])
    empirical = entropy_vector(output)
    modular = modular_function({"X": 0.5, "Y": 1.0, "Z": 0.25, "W": 2.0})
    for h in (empirical, modular):
        _check_sequence_never_increases(sequence, h)


def test_flow_for_triangle_with_degree_constraints_matches_primal():
    query = triangle_query()
    stats = ConstraintSet(base=1000)
    stats.add_cardinality("XY", 1000, guard="R")
    stats.add_cardinality("YZ", 1000, guard="S")
    stats.add_cardinality("XZ", 1000, guard="T")
    stats.add_degree("Y", "X", 10, guard="R")
    flow = find_shannon_flow([varset("XYZ")], stats)
    primal = ddr_polymatroid_bound([varset("XYZ")], stats, variables=varset("XYZ"))
    assert float(flow.bound_exponent()) == pytest.approx(primal.exponent, abs=1e-6)
    assert flow.verify()
    sequence = construct_proof_sequence(flow.to_integral())
    assert sequence.verify()


def test_flow_for_loomis_whitney_is_shearers_bound():
    query = loomis_whitney_query(3)
    stats = statistics_for_query(query, 1000)
    flow = find_shannon_flow([query.variables], stats)
    assert float(flow.bound_exponent()) == pytest.approx(1.5, abs=1e-6)
    sequence = construct_proof_sequence(flow.to_integral())
    assert sequence.verify()


def test_flow_for_five_cycle_selector():
    query = cycle_query(5)
    stats = statistics_for_query(query, 1000)
    # One bag from each of the two "natural" decompositions of the 5-cycle.
    targets = [frozenset({"X1", "X2", "X3"}), frozenset({"X3", "X4", "X5"})]
    flow = find_shannon_flow(targets, stats, variables=query.variables)
    primal = ddr_polymatroid_bound(targets, stats, variables=query.variables)
    assert float(flow.bound_exponent()) == pytest.approx(primal.exponent, abs=1e-6)
    sequence = construct_proof_sequence(flow.to_integral())
    assert sequence.verify()


def test_flow_with_functional_dependency_only(s_box):
    stats = ConstraintSet(base=1000)
    stats.add_cardinality("XY", 1000, guard="R")
    stats.add_cardinality("YZ", 1000, guard="S")
    stats.add_functional_dependency("Y", "Z", guard="S")
    flow = find_shannon_flow([varset("XYZ")], stats)
    # With the FD Y→Z, h(XYZ) <= h(XY) + h(Z|Y) <= 1, so the bound is N.
    assert float(flow.bound_exponent()) == pytest.approx(1.0, abs=1e-6)
    sequence = construct_proof_sequence(flow.to_integral())
    assert sequence.verify()
    # The certificate must use the FD's conditional term.
    assert any(constraint.is_functional_dependency for constraint in flow.sources)


def test_reset_then_proof_sequence_still_works(s_box):
    integral = find_shannon_flow([varset("XYZ"), varset("YZW")], s_box,
                                 variables=varset("XYZW")).to_integral()
    dropped = reset(integral, Term(varset("YZ")))
    assert not dropped.identity_defect()
    if sum(dropped.targets.values()) > 0:
        sequence = construct_proof_sequence(dropped)
        assert sequence.verify()


def test_reset_repeatedly_until_no_sources_left(s_box):
    integral = find_shannon_flow([varset("XYZ"), varset("YZW")], s_box,
                                 variables=varset("XYZW")).to_integral()
    current = integral
    for _ in range(10):
        unconditional_sources = [term for term, count in current.sources.items()
                                 if count > 0 and term.is_unconditional]
        if not unconditional_sources or sum(current.targets.values()) == 0:
            break
        current = reset(current, unconditional_sources[0])
        assert not current.identity_defect()
    # Each reset loses at most one target, and we started with two.
    assert sum(current.targets.values()) >= 0


def test_collected_statistics_flow_on_figure2():
    from repro.query import four_cycle_projected

    database = figure2_database()
    query = four_cycle_projected()
    stats = collect_statistics(database, query, include_degrees=True)
    flow = find_shannon_flow([varset("XYZ"), varset("YZW")], stats,
                             variables=query.variables)
    assert flow.verify()
    sequence = construct_proof_sequence(flow.to_integral())
    assert sequence.verify()
    # Figure 2's relations have maximum degree 2, so the bound is far below N^{3/2}
    # computed from cardinalities alone... but never below the actual DDR need (1).
    assert 0 < flow.size_bound() <= 3 ** 1.5 + 1e-9
