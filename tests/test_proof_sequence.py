"""Tests for proof steps, proof-sequence construction (Table 1) and the Reset lemma."""

from collections import Counter
from fractions import Fraction

import pytest

from repro.entropy import elemental_inequalities, submodularity
from repro.flows import (
    CompositionStep,
    DecompositionStep,
    MonotonicityStep,
    ProofStepError,
    ProofSequence,
    ResetError,
    SubmodularityStep,
    Term,
    construct_proof_sequence,
    find_shannon_flow,
    reset,
    unconditional,
)
from repro.flows.shannon_flow import IntegralShannonFlow, ShannonFlowInequality
from repro.paperdata import four_cycle_cardinality_statistics, four_cycle_full_statistics
from repro.stats import statistics_for_query
from repro.query import triangle_query
from repro.utils.varsets import varset


# ---------------------------------------------------------------------------
# terms and steps
# ---------------------------------------------------------------------------

def test_term_basics():
    term = Term(varset("Z"), varset("XY"))
    assert term.union == varset("XYZ")
    assert not term.is_unconditional
    assert term.coefficients() == {varset("XYZ"): 1, varset("XY"): -1}
    assert str(term) == "h({Z}|{X,Y})"
    assert str(unconditional("XY")) == "h{X,Y}"
    with pytest.raises(ValueError):
        Term(frozenset())
    with pytest.raises(ValueError):
        Term(varset("X"), varset("X"))


def test_term_evaluate_on_set_function():
    from repro.entropy import modular_function

    h = modular_function({"X": 1.0, "Y": 2.0})
    assert Term(varset("Y"), varset("X")).evaluate(h) == pytest.approx(2.0)
    assert Term(varset("XY")).evaluate(h) == pytest.approx(3.0)


def test_steps_apply_and_describe():
    terms = Counter({Term(varset("YZ")): 1})
    DecompositionStep(varset("YZ"), varset("Y")).apply(terms)
    assert terms == Counter({Term(varset("Y")): 1, Term(varset("Z"), varset("Y")): 1})
    SubmodularityStep(varset("Z"), varset("Y"), varset("X")).apply(terms)
    assert Term(varset("Z"), varset("XY")) in terms
    terms[Term(varset("XY"))] += 1
    CompositionStep(varset("XY"), varset("Z")).apply(terms)
    assert Term(varset("XYZ")) in terms
    MonotonicityStep(varset("XYZ"), varset("X")).apply(terms)
    assert Term(varset("X")) in terms
    step = DecompositionStep(varset("YZ"), varset("Y"))
    assert "→" in step.describe()


def test_step_preconditions_enforced():
    with pytest.raises(ProofStepError):
        CompositionStep(varset("X"), varset("Y")).apply(Counter())
    with pytest.raises(ValueError):
        DecompositionStep(varset("X"), varset("XY"))
    with pytest.raises(ValueError):
        MonotonicityStep(varset("X"), varset("X"))
    with pytest.raises(ValueError):
        SubmodularityStep(varset("Z"), varset("Y"), frozenset())
    with pytest.raises(ValueError):
        CompositionStep(frozenset(), varset("Y"))


# ---------------------------------------------------------------------------
# proof-sequence construction (Table 1)
# ---------------------------------------------------------------------------

def _paper_integral_flow():
    """The integral inequality (62) with its identity form (63), built by hand."""
    statistics = four_cycle_cardinality_statistics(1000)
    constraints = {c.target: c for c in statistics.degree_constraints}
    sources = {constraints[varset("XY")]: Fraction(1, 2),
               constraints[varset("YZ")]: Fraction(1, 2),
               constraints[varset("ZW")]: Fraction(1, 2)}
    witness = {submodularity({"X"}, {"Z"}, {"Y"}): Fraction(1, 2),
               submodularity({"Y"}, {"W", "Z"}): Fraction(1, 2)}
    flow = ShannonFlowInequality(
        targets={varset("XYZ"): Fraction(1, 2), varset("YZW"): Fraction(1, 2)},
        sources=sources, witness=witness, statistics=statistics)
    assert flow.verify()
    return flow.to_integral()


def test_paper_identity_form_is_valid_and_yields_a_proof_sequence():
    """Table 1: a proof sequence exists for h(XYZ)+h(YZW) <= h(XY)+h(YZ)+h(ZW)."""
    integral = _paper_integral_flow()
    assert integral.verify()
    sequence = construct_proof_sequence(integral)
    assert sequence.verify()
    assert len(sequence) >= 4
    final = sequence.replay()
    assert final[Term(varset("XYZ"))] >= 1
    assert final[Term(varset("YZW"))] >= 1
    assert "proof sequence" in sequence.describe()


def test_proof_sequence_for_lp_derived_flows(s_box, s_box_full):
    for targets, stats in [
        ([varset("XYZ"), varset("YZW")], s_box),
        ([varset("XZW"), varset("WXY")], s_box),
        ([varset("XYZW")], s_box_full),
    ]:
        flow = find_shannon_flow(targets, stats, variables=varset("XYZW"))
        sequence = construct_proof_sequence(flow.to_integral())
        assert sequence.verify()


def test_proof_sequence_for_shearer_triangle():
    stats = statistics_for_query(triangle_query(), 1000)
    flow = find_shannon_flow([varset("XYZ")], stats)
    sequence = construct_proof_sequence(flow.to_integral())
    assert sequence.verify()
    # The triangle certificate needs a genuine submodularity (not just composition).
    assert any(isinstance(step, SubmodularityStep) for step in sequence.steps)


def test_proof_sequence_rejects_invalid_identity(s_box):
    flow = find_shannon_flow([varset("XYZ"), varset("YZW")], s_box,
                             variables=varset("XYZW"))
    integral = flow.to_integral()
    integral.targets[varset("XYZ")] += 5
    with pytest.raises(Exception):
        construct_proof_sequence(integral)


def test_proof_sequence_verify_fails_for_wrong_steps():
    sequence = ProofSequence(
        initial_sources=Counter({Term(varset("XY")): 1}),
        targets=Counter({varset("XYZ"): 1}),
        steps=[CompositionStep(varset("XY"), varset("Z"))],
    )
    assert not sequence.verify()


# ---------------------------------------------------------------------------
# Reset lemma (Section 7.2)
# ---------------------------------------------------------------------------

def test_reset_lemma_on_the_paper_inequality():
    """Dropping h(XY) from Eq. (62) loses at most one of the two targets."""
    integral = _paper_integral_flow()
    result = reset(integral, unconditional("XY"))
    assert result.sources.get(Term(varset("XY")), 0) == 0
    remaining_targets = sum(result.targets.values())
    assert remaining_targets >= sum(integral.targets.values()) - 1
    assert not result.identity_defect()


def test_reset_lemma_preserves_validity_for_every_droppable_source(s_box, s_box_full):
    for targets, stats in [
        ([varset("XYZ"), varset("YZW")], s_box),
        ([varset("XYZW")], s_box_full),
    ]:
        integral = find_shannon_flow(targets, stats, variables=varset("XYZW")).to_integral()
        for term in list(integral.sources):
            if not term.is_unconditional:
                continue
            result = reset(integral, term)
            assert not result.identity_defect()
            assert sum(result.targets.values()) >= sum(integral.targets.values()) - 1


def test_reset_rejects_invalid_requests(s_box):
    integral = find_shannon_flow([varset("XYZ"), varset("YZW")], s_box,
                                 variables=varset("XYZW")).to_integral()
    with pytest.raises(ResetError):
        reset(integral, Term(varset("Z"), varset("Y")))
    with pytest.raises(ResetError):
        reset(integral, unconditional("WX"))   # h(WX) is not a source (w4 = 0)
