"""Tests for the PANDA measures, the DDR executor and adaptive evaluation (Section 8)."""

import pytest

from repro.algorithms import evaluate_bruteforce
from repro.datagen import hard_four_cycle_instance, random_graph_database
from repro.ddr import DisjunctiveDatalogRule, bag_selectors
from repro.decompositions import enumerate_tree_decompositions
from repro.paperdata import (
    figure2_database,
    four_cycle_cardinality_statistics,
)
from repro.panda import (
    ConditionalMeasure,
    UnconditionalMeasure,
    compose,
    evaluate_adaptive,
    evaluate_ddr,
)
from repro.panda.executor import PandaExecutionError
from repro.query import four_cycle_boolean, four_cycle_projected, triangle_query
from repro.relational import Database, Relation
from repro.stats import collect_statistics, statistics_for_query
from repro.utils.varsets import varset


# ---------------------------------------------------------------------------
# measures
# ---------------------------------------------------------------------------

def test_uniform_measure_from_relation():
    relation = Relation("R", ("X", "Y"), [(1, "a"), (2, "b")])
    measure = UnconditionalMeasure.uniform_from_relation(relation, {"X", "Y"}, 4)
    assert len(measure) == 2
    assert measure.total_mass() == pytest.approx(0.5)
    assert measure.truncate(0.2).weights == measure.weights
    assert len(measure.truncate(0.5)) == 0
    support = measure.support_relation("S")
    assert support.rows == relation.rows
    assignments = list(measure.as_assignments())
    assert len(assignments) == 2
    assert all(set(assignment) == {"X", "Y"} for assignment, _ in assignments)


def test_marginal_and_conditional_decomposition_is_consistent():
    relation = Relation("R", ("X", "Y"), [(1, "a"), (1, "b"), (2, "a")])
    joint = UnconditionalMeasure.uniform_from_relation(relation, {"X", "Y"}, 3)
    marginal = joint.marginal({"X"})
    assert marginal.weights[(1,)] == pytest.approx(2 / 3)
    conditional = joint.conditional_on({"X"})
    assert conditional.key_variables == ("X",)
    group = conditional.group_for({"X": 1})
    assert sorted(weight for _, weight in group) == pytest.approx([0.5, 0.5])
    # Recomposition recovers the joint measure exactly (threshold 0 keeps all).
    recomposed = compose(marginal, conditional, threshold=0.0)
    for row, weight in joint.weights.items():
        assert recomposed.weights[row] == pytest.approx(weight)


def test_per_group_uniform_conditional_measure():
    relation = Relation("S", ("Y", "Z"), [("a", 1), ("a", 2), ("b", 3)])
    conditional = ConditionalMeasure.per_group_uniform(relation, {"Z"}, {"Y"})
    assert conditional.max_group_size() == 2
    assert len(conditional) == 3
    assert conditional.group_for({"Y": "a"})[0][1] == pytest.approx(0.5)
    assert conditional.group_for({"Y": "b"})[0][1] == pytest.approx(1.0)
    assert conditional.group_for({"Y": "missing"}) == []


def test_compose_truncates_at_threshold():
    marginal = UnconditionalMeasure(("X",), {(1,): 0.5, (2,): 0.01})
    conditional = ConditionalMeasure(("Y",), ("X",),
                                     {(1,): [(("a",), 0.9), (("b",), 0.05)],
                                      (2,): [(("c",), 1.0)]})
    combined = compose(marginal, conditional, threshold=0.1)
    assert set(combined.weights) == {(1, "a")}
    assert combined.weights[(1, "a")] == pytest.approx(0.45)
    with pytest.raises(ValueError):
        compose(UnconditionalMeasure(("Z",), {(1,): 1.0}), conditional, 0.0)


# ---------------------------------------------------------------------------
# DDR executor
# ---------------------------------------------------------------------------

def _check_ddr_execution(query, database, statistics, targets):
    ddr = DisjunctiveDatalogRule(query, tuple(targets))
    heads, report = evaluate_ddr(ddr, database, statistics)
    assert ddr.is_model(database, heads), "PANDA output is not a model of the DDR"
    for relation in heads.values():
        assert len(relation) <= report.size_bound * (1 + 1e-6)
    assert report.max_table_size <= 4 * report.size_bound + len(database.relations()) * 4
    return heads, report


def test_panda_ddr_on_figure2(four_cycle):
    database = figure2_database()
    statistics = four_cycle_cardinality_statistics(3)
    heads, report = _check_ddr_execution(four_cycle, database, statistics,
                                         [varset("XYZ"), varset("YZW")])
    assert report.bound_exponent == pytest.approx(1.5)
    assert "PANDA execution" in report.describe()


def test_panda_ddr_on_the_hard_instance(four_cycle):
    size = 60
    database = hard_four_cycle_instance(size)
    statistics = four_cycle_cardinality_statistics(size)
    heads, report = _check_ddr_execution(four_cycle, database, statistics,
                                         [varset("XYZ"), varset("YZW")])
    # The crucial property: every materialised table stays well below N², in
    # fact within the N^{3/2} bound (plus the inputs themselves).
    assert report.max_table_size <= size ** 1.5 + size
    assert report.size_bound == pytest.approx(size ** 1.5, rel=1e-9)


def test_panda_ddr_all_selectors_on_random_data(four_cycle):
    database = random_graph_database(four_cycle, 40, 10, seed=5)
    statistics = collect_statistics(database, four_cycle, include_degrees=False)
    decompositions = enumerate_tree_decompositions(four_cycle)
    for selector in bag_selectors(decompositions):
        _check_ddr_execution(four_cycle, database, statistics, selector)


def test_panda_ddr_with_degree_constraints(four_cycle):
    database = figure2_database()
    statistics = collect_statistics(database, four_cycle_projected(), include_degrees=True)
    _check_ddr_execution(four_cycle, database, statistics,
                         [varset("XYZ"), varset("YZW")])


def test_panda_single_target_ddr_is_a_join_bound(triangle):
    database = random_graph_database(triangle, 30, 8, seed=2)
    statistics = collect_statistics(database, triangle, include_degrees=False)
    heads, report = _check_ddr_execution(triangle, database, statistics, [varset("XYZ")])
    # A single-target DDR must cover every body tuple in that one target.
    truth = evaluate_bruteforce(triangle.full_version(), database)
    head = heads[varset("XYZ")]
    assert truth.project(head.columns).rows <= head.rows


def test_panda_requires_a_guard_relation(four_cycle):
    database = figure2_database()
    statistics = statistics_for_query(four_cycle, 3)
    # Rename a guard to something that is not an atom of the query.
    broken = type(statistics)(base=3)
    broken.add_cardinality("XY", 3, guard="NOPE")
    broken.add_cardinality("YZ", 3, guard="S")
    broken.add_cardinality("ZW", 3, guard="T")
    broken.add_cardinality("WX", 3, guard="U")
    ddr = DisjunctiveDatalogRule(four_cycle, (varset("XYZ"), varset("YZW")))
    with pytest.raises(PandaExecutionError):
        evaluate_ddr(ddr, database, broken)


# ---------------------------------------------------------------------------
# adaptive evaluation (rules (28)-(29))
# ---------------------------------------------------------------------------

def test_adaptive_matches_bruteforce_on_figure2(four_cycle):
    database = figure2_database()
    answer, report = evaluate_adaptive(four_cycle, database)
    truth = evaluate_bruteforce(four_cycle, database)
    assert answer.rows == truth.rows
    assert report.subw_exponent == pytest.approx(1.5)


def test_adaptive_matches_bruteforce_on_random_instances(four_cycle):
    for seed in range(3):
        database = random_graph_database(four_cycle, 50, 11, seed=seed)
        answer, _ = evaluate_adaptive(four_cycle, database)
        truth = evaluate_bruteforce(four_cycle, database)
        assert answer.rows == truth.rows


def test_adaptive_boolean_four_cycle():
    query = four_cycle_boolean()
    positive = hard_four_cycle_instance(20)
    answer, _ = evaluate_adaptive(query, positive)
    assert len(answer) == 1
    empty_db = random_graph_database(query, 5, 50, seed=1)
    answer_neg, _ = evaluate_adaptive(query, empty_db)
    truth = evaluate_bruteforce(query, empty_db)
    assert (len(answer_neg) > 0) == (len(truth) > 0)


def test_adaptive_full_four_cycle_matches_bruteforce():
    query = four_cycle_projected().full_version()
    database = random_graph_database(query, 40, 9, seed=4)
    answer, _ = evaluate_adaptive(query, database)
    truth = evaluate_bruteforce(query, database)
    assert answer.rows == truth.rows


def test_adaptive_keeps_intermediates_small_on_hard_instances(four_cycle):
    size = 80
    database = hard_four_cycle_instance(size)
    statistics = four_cycle_cardinality_statistics(size)
    answer, report = evaluate_adaptive(four_cycle, database, statistics=statistics)
    truth = evaluate_bruteforce(four_cycle, database)
    assert answer.rows == truth.rows
    assert report.max_intermediate <= 4 * size ** 1.5
    assert report.max_intermediate < (size / 2) ** 2
    assert "adaptive PANDA plan" in report.describe()


def test_adaptive_uses_all_four_ddrs(four_cycle, hard_instance):
    _, report = evaluate_adaptive(four_cycle, hard_instance)
    assert len(report.ddr_reports) == 4
    assert len(report.decompositions) == 2
    assert report.max_bag_size > 0


def test_adaptive_regression_threshold_above_true_one_over_b(four_cycle):
    """Frozen hypothesis counterexample: the dropped-answer soundness bug.

    On this database the tightest DDR bound is ``B = 10^{log10 7} = 7`` and
    the answer tuple's measure weight is exactly ``1/7``.  The seed computed
    the truncation threshold as ``(1/10^{LP exponent}) * (1 - 1e-9)``; the
    floating-point LP undershoots ``log10 7`` by ~1e-9, so the threshold
    landed *above* the true ``1/7`` and the answer ``(0, 0)`` was silently
    truncated out of the W-containing bags (seed-independent regression for
    ``test_adaptive_panda_matches_bruteforce_on_random_four_cycles``).
    """
    database = Database([
        Relation("R", ("a", "b"), [(0, 0)]),
        Relation("S", ("a", "b"), [(0, 0)]),
        Relation("T", ("a", "b"),
                 [(0, 4), (5, 0), (0, 3), (0, 0), (3, 0), (2, 0), (0, 1)]),
        Relation("U", ("a", "b"),
                 [(1, 2), (0, 0), (2, 5), (0, 5), (0, 4), (4, 0), (4, 5),
                  (0, 2), (1, 0), (5, 0)]),
    ])
    truth = evaluate_bruteforce(four_cycle, database)
    assert truth.rows == frozenset({(0, 0)})
    answer, report = evaluate_adaptive(four_cycle, database)
    assert answer.rows == truth.rows
    # Every bag of some decomposition must cover the body tuple (0,0,0,0).
    assert any(all(report.bag_sizes[bag] >= 1 for bag in decomposition.bags)
               for decomposition in report.decompositions)
