"""Concurrency battery for the multi-tenant query service.

The core guarantees under concurrent load:

* **correctness** — N async clients hammering ≥3 tenants with a mixed
  workload get *bit-identical* answers to a serial engine run per tenant;
* **isolation** — each tenant's plan cache sees only that tenant's query
  shapes (no cross-tenant hits, builds equal distinct shapes);
* **accounting** — admission counters balance exactly and
  :class:`~repro.engine.core.EngineStats` loses no increments when two
  executions finish simultaneously (the historical read-modify-write race).
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.datagen import random_graph_database
from repro.engine import Engine
from repro.engine.core import EngineStats
from repro.query import (
    four_cycle_projected,
    path_query,
    triangle_query,
    two_path_projected,
)
from repro.service import (
    AdmissionRejectedError,
    QueryService,
    ServiceConfig,
)

#: The mixed workload: a cyclic WCOJ/adaptive shape, an acyclic Yannakakis
#: shape, and another cyclic shape — three distinct plan-cache entries.
WORKLOAD = (four_cycle_projected(), path_query(3), triangle_query())


def _tenant_databases(backend: str | None = None):
    """Three tenants over structurally different random databases."""
    databases = {}
    for index, name in enumerate(("acme", "globex", "initech")):
        databases[name] = random_graph_database(
            four_cycle_projected(), size=60 + 10 * index, domain=14 + index,
            seed=7 + index, backend=backend)
        # The path query needs R1..R3; reuse the same edge sets under the
        # names every workload query mentions.
        db = databases[name]
        for i, source in enumerate(("R", "S", "T"), start=1):
            db.add(db[source].copy(), name=f"R{i}")
    return databases


def _serial_answers(databases):
    """Ground truth: one fresh serial engine per tenant, same workload."""
    answers = {}
    for name, db in databases.items():
        engine = Engine(db.copy())
        for query in WORKLOAD:
            result = engine.execute(query)
            answers[name, query.name] = (result.answer.columns,
                                         result.answer.rows)
    return answers


def test_mixed_workload_matches_serial_engine_bit_for_bit():
    databases = _tenant_databases(backend="columnar")
    expected = _serial_answers(databases)
    clients, rounds = 8, 3

    async def main():
        service = QueryService(ServiceConfig(max_concurrent=6, max_per_tenant=4,
                                             queue_depth=200,
                                             tenant_queue_depth=100))
        for name, db in databases.items():
            service.create_tenant(name, db)

        async def client(client_id: int):
            received = []
            names = sorted(databases)
            for round_no in range(rounds):
                tenant = names[(client_id + round_no) % len(names)]
                query = WORKLOAD[(client_id + round_no) % len(WORKLOAD)]
                result = await service.query(tenant, query)
                received.append((tenant, query.name,
                                 result.answer.columns, result.answer.rows))
            return received

        results = await asyncio.gather(*(client(i) for i in range(clients)))
        await service.shutdown()
        return service, [item for batch in results for item in batch]

    service, observed = asyncio.run(main())
    assert len(observed) == clients * rounds
    for tenant, query_name, columns, rows in observed:
        exp_columns, exp_rows = expected[tenant, query_name]
        assert columns == exp_columns
        assert rows == exp_rows


def test_plan_caches_are_tenant_isolated():
    databases = _tenant_databases()

    async def main():
        service = QueryService(ServiceConfig(max_concurrent=4))
        for name, db in databases.items():
            service.create_tenant(name, db)
        # acme sees all three shapes twice; globex sees one shape four times;
        # initech sees two shapes once each.
        jobs = []
        for query in WORKLOAD * 2:
            jobs.append(service.query("acme", query))
        for _ in range(4):
            jobs.append(service.query("globex", triangle_query()))
        jobs.append(service.query("initech", path_query(3)))
        jobs.append(service.query("initech", two_path_projected()))
        await asyncio.gather(*jobs)
        await service.shutdown()
        return service

    service = asyncio.run(main())
    caches = {name: service.registry.get(name).engine.plan_cache.cache_stats()
              for name in databases}
    # builds == the number of distinct shapes *that tenant* submitted: a
    # shape another tenant already planned still builds here (no sharing).
    assert caches["acme"]["plan_builds"] == 3
    assert caches["acme"]["plan_hits"] == 3
    assert caches["globex"]["plan_builds"] == 1
    assert caches["globex"]["plan_hits"] == 3
    assert caches["initech"]["plan_builds"] == 2
    assert caches["initech"]["plan_hits"] == 0
    # Engine-level stats agree with the cache counters.
    for name, cache in caches.items():
        stats = service.registry.get(name).engine.stats
        assert stats.plans_built == cache["plan_builds"]
        assert stats.plans_reused == cache["plan_hits"]


def test_admission_counters_balance_after_mixed_outcomes():
    databases = _tenant_databases()

    async def main():
        service = QueryService(ServiceConfig(
            max_concurrent=2, max_per_tenant=1,
            queue_depth=3, tenant_queue_depth=2))
        for name, db in databases.items():
            service.create_tenant(name, db)

        async def one(tenant, query):
            try:
                await service.query(tenant, query)
                return "ok"
            except AdmissionRejectedError as exc:
                return f"rejected-{exc.scope}"

        names = sorted(databases)
        outcomes = await asyncio.gather(
            *(one(names[i % 3], WORKLOAD[i % 3]) for i in range(24)))
        await service.shutdown()
        return service, outcomes

    service, outcomes = asyncio.run(main())
    stats = service.admission.stats()
    assert stats["submitted"] == 24
    assert (stats["submitted"]
            == stats["admitted"] + stats["rejected_global"]
            + stats["rejected_tenant"])
    assert stats["completed"] == stats["admitted"] == outcomes.count("ok")
    assert stats["in_flight"] == 0 and stats["waiting"] == 0
    assert 0 < stats["peak_in_flight"] <= 2
    rejected = [o for o in outcomes if o.startswith("rejected")]
    assert stats["rejected_global"] + stats["rejected_tenant"] == len(rejected)
    # Tenant-level outcome counters agree with what clients observed.
    totals = service.stats()["totals"]
    assert totals["completed"] == outcomes.count("ok")
    assert totals["rejected"] == len(rejected)


def test_admission_fast_rejects_past_queue_depth():
    async def main():
        service = QueryService(ServiceConfig(
            max_concurrent=1, max_per_tenant=1,
            queue_depth=1, tenant_queue_depth=1))
        service.create_tenant(
            "acme", random_graph_database(triangle_query(), size=200,
                                          domain=25, seed=3))
        results = await asyncio.gather(
            *(service.query("acme", triangle_query()) for _ in range(6)),
            return_exceptions=True)
        await service.shutdown()
        return results

    results = asyncio.run(main())
    rejections = [r for r in results if isinstance(r, AdmissionRejectedError)]
    completions = [r for r in results if not isinstance(r, Exception)]
    assert completions, "at least one query must be admitted"
    assert rejections, "a queue of depth 1 must fast-reject a burst of 6"
    assert len(completions) + len(rejections) == 6
    for exc in rejections:
        assert exc.scope in ("global", "tenant")


# ---------------------------------------------------------------------------
# the EngineStats aggregation race (regression)
# ---------------------------------------------------------------------------

def test_engine_stats_double_finish_is_atomic():
    """Two executions finishing at the same instant must both be counted.

    Before stats updates went through :meth:`EngineStats.bump`, the
    ``executions += 1`` read-modify-write could lose one of two simultaneous
    finishes.  A barrier forces maximal interleaving every iteration; the
    totals must come out exact.
    """
    stats = EngineStats()
    iterations, workers = 300, 2
    barrier = threading.Barrier(workers)

    def finisher():
        for _ in range(iterations):
            barrier.wait()
            stats.bump(executions=1, serial_executions=1,
                       wall_time_seconds=0.25)
            stats.absorb_events("storage_cache_events", {"index_builds": 1})

    threads = [threading.Thread(target=finisher) for _ in range(workers)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    snapshot = stats.as_dict()
    assert snapshot["executions"] == iterations * workers
    assert snapshot["serial_executions"] == iterations * workers
    assert snapshot["wall_time_seconds"] == pytest.approx(0.25 * iterations * workers)
    assert snapshot["storage_cache_events"]["index_builds"] == iterations * workers


def test_engine_stats_snapshot_is_consistent_under_writers():
    """``as_dict`` snapshots under the same lock writers use: every snapshot
    must show the paired counters equal (they only ever move together)."""
    stats = EngineStats()
    stop = threading.Event()
    inconsistencies = []

    def writer():
        while not stop.is_set():
            stats.bump(executions=1, serial_executions=1)

    def reader():
        for _ in range(2000):
            snap = stats.as_dict()
            if snap["executions"] != snap["serial_executions"]:
                inconsistencies.append(snap)

    writer_thread = threading.Thread(target=writer)
    reader_thread = threading.Thread(target=reader)
    writer_thread.start()
    reader_thread.start()
    reader_thread.join()
    stop.set()
    writer_thread.join()
    assert not inconsistencies
