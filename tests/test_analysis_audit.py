"""The analysis gate over the real tree, plus the plan-verifier smoke.

Two promises ride on this module:

* the shipped source is lint-clean — zero unsuppressed findings, every
  suppression justified — which is exactly the CI gate
  (``python -m repro.analysis src/ --format=json``), run here so a local
  ``pytest`` catches a violation before CI does;
* every query in the library builds a plan that passes static verification
  under both storage backends, including the partition-parallel dispatch
  check — the verifier must never reject a plan the engine legitimately
  builds (no false positives on the happy path).
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import lint_paths, verify_plan
from repro.datagen import random_graph_database
from repro.engine import Engine
from repro.query.library import (
    bowtie_query,
    clique_query,
    cycle_query,
    four_cycle_boolean,
    four_cycle_full,
    four_cycle_projected,
    loomis_whitney_query,
    path_query,
    star_query,
    triangle_query,
    two_path_projected,
)
from repro.stats import collect_statistics

SRC = Path(__file__).resolve().parents[1] / "src" / "repro"


# ---------------------------------------------------------------------------
# the lint gate
# ---------------------------------------------------------------------------

def test_source_tree_has_zero_unsuppressed_findings():
    report = lint_paths([SRC])
    assert report.clean, "\n" + report.render()


def test_every_suppression_in_the_tree_is_justified():
    report = lint_paths([SRC])
    for finding in report.suppressed:
        assert finding.justification, finding.render()


def test_gate_actually_covers_the_tree():
    # A gate that silently lints zero files passes vacuously; pin the
    # corpus so a path typo cannot hollow the check out.
    from repro.analysis.linter import iter_python_files

    files = iter_python_files([SRC])
    assert len(files) > 40
    names = {path.name for path in files}
    assert {"core.py", "parallel.py", "kernels.py", "planner.py"} <= names


# ---------------------------------------------------------------------------
# plan-verifier smoke: the full query library x both backends
# ---------------------------------------------------------------------------

SMOKE_CASES = [
    ("triangle", triangle_query(), 30, 8),
    ("four-cycle-projected", four_cycle_projected(), 24, 7),
    ("four-cycle-full", four_cycle_full(), 24, 7),
    ("four-cycle-boolean", four_cycle_boolean(), 24, 7),
    ("three-cycle", cycle_query(3), 24, 7),
    ("path-3", path_query(3, free_variables=("X1", "X4")), 30, 8),
    ("two-path-projected", two_path_projected(), 30, 8),
    ("star-3", star_query(3), 30, 8),
    ("clique-4", clique_query(4), 20, 6),
    ("loomis-whitney-3", loomis_whitney_query(3), 20, 6),
    ("bowtie", bowtie_query(free_variables=("X",)), 20, 6),
]


@pytest.mark.parametrize("backend", ["set", "columnar"])
@pytest.mark.parametrize(
    "query,size,domain",
    [case[1:] for case in SMOKE_CASES],
    ids=[case[0] for case in SMOKE_CASES])
def test_library_plans_pass_static_verification(query, size, domain, backend):
    database = random_graph_database(query, size, domain, seed=23,
                                     backend=backend)
    statistics = collect_statistics(database, query, include_degrees=False)
    engine = Engine(database)
    prepared = engine.prepare(query, statistics=statistics)
    # Every freshly built plan was verified on its way into the cache ...
    assert engine.stats.plans_built == 1
    assert engine.stats.plans_verified == 1
    # ... the rebuilt executable plan is clean in the original space too ...
    assert verify_plan(prepared.plan) == []
    # ... and the sharded path's dispatch-time verification accepts it
    # (queries without a partitionable atom fall back to the serial path).
    result = engine.execute(query, statistics=statistics, shards=2)
    assert result is not None
