"""Fixture tests for the static plan verifier.

The corrupted-recipe classes here are the attack surface the verifier
guards: the engine rebuilds cached :class:`PlanRecipe` objects with
``validate=False`` and ships bare bag tuples to shard workers, so each
corruption below would otherwise execute silently and return wrong
answers.  Every rejection must carry an actionable message — the assertion
style checks the *explanation*, not just the refusal.
"""

from __future__ import annotations

import dataclasses
from collections import Counter

import pytest

from repro.analysis import (
    PlanVerificationError,
    WIDTH_SLACK,
    assert_valid,
    verify_bags,
    verify_dispatch,
    verify_plan,
    verify_proof_sequence,
    verify_recipe,
    verify_semijoin_order,
    verify_semiring_kernel_compatibility,
    verify_shard_payload,
)
from repro.datagen import random_graph_database
from repro.decompositions.treedecomp import TreeDecomposition
from repro.engine import Engine, query_fingerprint
from repro.engine.plan_cache import PlanRecipe
from repro.flows import construct_proof_sequence, find_shannon_flow
from repro.flows.proof_sequence import ProofSequence
from repro.optimizer import PlanKind
from repro.optimizer.planner import realize_plan
from repro.query.library import (
    triangle_query,
    two_path_projected,
)
from repro.relational.semiring import (
    BUILTIN_SEMIRINGS,
    Semiring,
    top_k_min_plus_semiring,
)
from repro.stats import collect_statistics
from repro.utils.varsets import varset


def _canonical(query):
    digest, renaming = query_fingerprint(query)
    return digest, renaming


def _valid_triangle_recipe():
    query = triangle_query()
    digest, renaming = _canonical(query)
    bag = frozenset(renaming.values())
    return query, renaming, PlanRecipe(
        kind=PlanKind.STATIC_TD, reason="fixture",
        fhtw_width=1.5, subw_width=1.5,
        is_acyclic=False, is_free_connex=False,
        best_bags=(bag,), decomposition_bags=(),
        fingerprint=f"{digest}x0000")


def _problems(recipe, query, renaming):
    return verify_recipe(recipe, query=query, renaming=renaming)


# ---------------------------------------------------------------------------
# the healthy baseline
# ---------------------------------------------------------------------------

def test_valid_recipe_passes():
    query, renaming, recipe = _valid_triangle_recipe()
    assert _problems(recipe, query, renaming) == []


def test_assert_valid_raises_with_every_problem_listed():
    with pytest.raises(PlanVerificationError) as excinfo:
        assert_valid("fixture artifact", ["first problem", "second problem"])
    assert excinfo.value.what == "fixture artifact"
    assert excinfo.value.problems == ["first problem", "second problem"]
    assert "first problem" in str(excinfo.value)
    assert "second problem" in str(excinfo.value)


# ---------------------------------------------------------------------------
# corrupted-recipe classes (each one a distinct way wrong answers slip in)
# ---------------------------------------------------------------------------

def test_rejects_recipe_dropping_an_atom():
    # Class 1: bags that cover only two of the triangle's three atoms — the
    # third join constraint would silently vanish from the answer.
    query, renaming, recipe = _valid_triangle_recipe()
    v = sorted(renaming.values())
    corrupted = dataclasses.replace(
        recipe, best_bags=(frozenset({v[0], v[1]}), frozenset({v[1], v[2]})))
    (problem,) = _problems(corrupted, query, renaming)
    assert "covers no bag for atom" in problem
    assert "silently dropped" in problem


def test_rejects_cyclic_bags():
    # Class 2: a bag set violating the running-intersection property (the
    # 4-cycle's edge set is the canonical cyclic hypergraph) — no join tree,
    # no full-reducer semijoin order.
    from repro.query.library import four_cycle_projected

    query = four_cycle_projected()
    digest, renaming = _canonical(query)
    edge_bags = tuple(frozenset(renaming[v] for v in atom.varset)
                      for atom in query.atoms)
    recipe = PlanRecipe(
        kind=PlanKind.STATIC_TD, reason="fixture",
        fhtw_width=2.0, subw_width=1.5,
        is_acyclic=False, is_free_connex=False,
        best_bags=edge_bags, decomposition_bags=(),
        fingerprint=f"{digest}x0000")
    problems = _problems(recipe, query, renaming)
    assert any("not acyclic" in problem and "GYO" in problem
               for problem in problems)


def test_rejects_unknown_variables_in_bags():
    # Class 3: a recipe bound to the wrong query — its bags talk about
    # variables the query does not have.
    query, renaming, recipe = _valid_triangle_recipe()
    corrupted = dataclasses.replace(
        recipe, best_bags=(recipe.best_bags[0] | {"z9"},))
    problems = _problems(corrupted, query, renaming)
    assert any("z9" in problem and "wrong query" in problem
               for problem in problems)


def test_rejects_static_recipe_without_bags():
    # Class 4: a static-TD decision with nothing to rebuild the plan from.
    query, renaming, recipe = _valid_triangle_recipe()
    corrupted = dataclasses.replace(recipe, best_bags=())
    problems = _problems(corrupted, query, renaming)
    assert any("no best_bags" in problem for problem in problems)


def test_rejects_width_inversion():
    # Class 5: subw > fhtw beyond the slack — the widths cannot belong to
    # the same query, so the cached decision is untrustworthy.
    query, renaming, recipe = _valid_triangle_recipe()
    corrupted = dataclasses.replace(recipe, subw_width=recipe.fhtw_width + 1.0)
    problems = _problems(corrupted, query, renaming)
    assert any("width inversion" in problem for problem in problems)
    # ... while LP noise within the slack stays legal (the PR 2 lesson:
    # epsilon, not raw comparison).
    noisy = dataclasses.replace(
        recipe, subw_width=recipe.fhtw_width + WIDTH_SLACK / 2)
    assert _problems(noisy, query, renaming) == []


def test_rejects_negative_widths():
    query, renaming, recipe = _valid_triangle_recipe()
    corrupted = dataclasses.replace(recipe, fhtw_width=-2.0, subw_width=-2.0)
    problems = _problems(corrupted, query, renaming)
    assert any("negative width" in problem for problem in problems)


def test_rejects_yannakakis_recipe_for_cyclic_query():
    # Class 6: a Yannakakis decision whose own flags admit the query is not
    # free-connex acyclic — semijoin reduction would be unsound.
    query, renaming, recipe = _valid_triangle_recipe()
    corrupted = dataclasses.replace(recipe, kind=PlanKind.YANNAKAKIS,
                                    best_bags=())
    problems = _problems(corrupted, query, renaming)
    assert any("unsound on cyclic queries" in problem for problem in problems)
    # Even with lying flags, the structural semijoin-order check catches it.
    lying = dataclasses.replace(corrupted, is_acyclic=True,
                                is_free_connex=True)
    problems = _problems(lying, query, renaming)
    assert any("no full-reducer semijoin order" in problem
               for problem in problems)


def test_rejects_yannakakis_recipe_violating_free_connexity():
    # Class 7: the 2-path with both endpoints free is acyclic but not
    # free-connex — Yannakakis would lose the O(N + OUT) bound.
    query = two_path_projected()
    digest, renaming = _canonical(query)
    recipe = PlanRecipe(
        kind=PlanKind.YANNAKAKIS, reason="fixture",
        fhtw_width=1.0, subw_width=1.0,
        is_acyclic=True, is_free_connex=True,
        best_bags=(), decomposition_bags=(),
        fingerprint=f"{digest}x0000")
    problems = _problems(recipe, query, renaming)
    assert any("not free-connex" in problem for problem in problems)


def test_rejects_adaptive_recipe_without_decompositions():
    query, renaming, recipe = _valid_triangle_recipe()
    corrupted = dataclasses.replace(recipe, kind=PlanKind.ADAPTIVE_PANDA,
                                    best_bags=())
    problems = _problems(corrupted, query, renaming)
    assert any("no decomposition_bags" in problem for problem in problems)


def test_rejects_recipe_without_fingerprint():
    query, renaming, recipe = _valid_triangle_recipe()
    corrupted = dataclasses.replace(recipe, fingerprint="")
    problems = _problems(corrupted, query, renaming)
    assert any("no fingerprint" in problem for problem in problems)


def test_rejects_unknown_plan_kind():
    query, renaming, recipe = _valid_triangle_recipe()
    corrupted = dataclasses.replace(recipe, kind="bogus-strategy")
    (problem,) = _problems(corrupted, query, renaming)
    assert "unknown plan kind" in problem


# ---------------------------------------------------------------------------
# bag-structure checks in isolation
# ---------------------------------------------------------------------------

def test_verify_bags_flags_empty_bag_sets():
    (problem,) = verify_bags([])
    assert "no bags" in problem
    problems = verify_bags([frozenset(), frozenset({"X"})])
    assert any("empty bag" in problem for problem in problems)


def test_verify_bags_checks_running_intersection_explicitly():
    # {X,Y}, {Y,Z}, {X,Z} is the cyclic triangle of pairs: GYO fails.
    problems = verify_bags([varset("XY"), varset("YZ"), varset("XZ")])
    assert any("not acyclic" in problem for problem in problems)
    # A path of bags sharing Y is fine.
    assert verify_bags([varset("XY"), varset("YZ")]) == []


def test_verify_semijoin_order_mirrors_gyo():
    assert verify_semijoin_order([varset("XY"), varset("YZ")]) == []
    (problem,) = verify_semijoin_order(
        [varset("XY"), varset("YZ"), varset("XZ")])
    assert "cyclic" in problem


# ---------------------------------------------------------------------------
# engine integration: verify-on-insert, counted
# ---------------------------------------------------------------------------

def test_engine_counts_verified_plans():
    query = triangle_query()
    database = random_graph_database(query, 30, 8, seed=11)
    statistics = collect_statistics(database, query, include_degrees=False)
    engine = Engine(database)
    engine.execute(query, statistics=statistics)
    assert engine.stats.plans_built == 1
    assert engine.stats.plans_verified == 1
    # Cache hits rebuild the already-verified recipe: no re-verification.
    engine.execute(query, statistics=statistics)
    assert engine.stats.plans_reused == 1
    assert engine.stats.plans_verified == 1
    assert "verified" in engine.stats.describe()
    assert engine.stats.as_dict()["plans_verified"] == 1


def test_engine_refuses_to_cache_a_corrupted_recipe(monkeypatch):
    query = triangle_query()
    database = random_graph_database(query, 30, 8, seed=11)
    statistics = collect_statistics(database, query, include_degrees=False)
    engine = Engine(database)
    original = engine._recipe_from_plan

    def corrupt(chosen, renaming):
        recipe = original(chosen, renaming)
        return dataclasses.replace(recipe, best_bags=(),
                                   decomposition_bags=())

    monkeypatch.setattr(engine, "_recipe_from_plan", corrupt)
    with pytest.raises(PlanVerificationError):
        engine.prepare(query, statistics=statistics)
    assert engine.stats.plans_verified == 0


# ---------------------------------------------------------------------------
# dispatch-time verification (partition-parallel path)
# ---------------------------------------------------------------------------

def _static_plan(query, statistics, bags):
    return realize_plan(PlanKind.STATIC_TD, query, statistics,
                        reason="fixture", decomposition=TreeDecomposition(bags),
                        validate=False)


def test_run_partitioned_rejects_corrupted_decompositions():
    from repro.engine import run_partitioned

    query = triangle_query()
    database = random_graph_database(query, 30, 8, seed=11)
    statistics = collect_statistics(database, query, include_degrees=False)
    # Bags covering only two atoms: the shard workers would rebuild this
    # structure with validate=False and drop the third join silently.
    plan = _static_plan(query, statistics, [varset("XY"), varset("YZ")])
    with pytest.raises(PlanVerificationError) as excinfo:
        run_partitioned(plan, database, shards=2, executor="serial")
    assert "covers no bag for atom" in str(excinfo.value)


def test_run_partitioned_verifies_once_per_plan():
    from repro.engine import run_partitioned

    query = triangle_query()
    database = random_graph_database(query, 24, 7, seed=5)
    statistics = collect_statistics(database, query, include_degrees=False)
    plan = _static_plan(query, statistics, [varset("XYZ")])
    assert not getattr(plan, "_dispatch_verified", False)
    first = run_partitioned(plan, database, shards=2, executor="serial")
    assert plan._dispatch_verified is True
    second = run_partitioned(plan, database, shards=2, executor="serial")
    assert first.answer.rows == second.answer.rows


def test_verify_plan_accepts_engine_built_plans():
    query = triangle_query()
    database = random_graph_database(query, 24, 7, seed=5)
    statistics = collect_statistics(database, query, include_degrees=False)
    prepared = Engine(database).prepare(query, statistics=statistics)
    assert verify_plan(prepared.plan) == []


# ---------------------------------------------------------------------------
# shard-payload pickle safety
# ---------------------------------------------------------------------------

def test_shard_payload_rejects_callables_with_their_location():
    payload = {"relations": {"R": ("rows", ("X", "Y"), [(1, 2)])},
               "rebuild": lambda: None}
    (problem,) = verify_shard_payload(payload)
    assert "['rebuild']" in problem
    assert "process boundary" in problem


def test_shard_payload_walks_nested_containers():
    payload = {"relations": {"R": ("rows", [(1, 2), (lambda: 0, 3)])}}
    (problem,) = verify_shard_payload(payload)
    assert "'relations'" in problem


def test_shard_payload_accepts_plain_data_and_classes():
    payload = {"kind": PlanKind.STATIC_TD,
               "relations": {"R": ("rows", ("X",), [(1,)])},
               "type_tag": TreeDecomposition,  # classes pickle by name
               "deadline": None}
    assert verify_shard_payload(payload) == []


def test_real_shard_payloads_are_clean():
    from repro.engine.parallel import _shard_payload, shard_databases

    query = triangle_query()
    database = random_graph_database(query, 24, 7, seed=5)
    statistics = collect_statistics(database, query, include_degrees=False)
    plan = _static_plan(query, statistics, [varset("XYZ")])
    shard_db = shard_databases(database, query.atoms[0], 2)[0]
    assert verify_shard_payload(_shard_payload(plan, shard_db)) == []


# ---------------------------------------------------------------------------
# semiring <-> kernel capability
# ---------------------------------------------------------------------------

def test_builtin_scalar_semirings_are_kernel_compatible():
    for semiring in BUILTIN_SEMIRINGS:
        assert verify_semiring_kernel_compatibility(semiring) == []


def test_top_k_min_plus_routes_to_the_fallback_path():
    np = pytest.importorskip("numpy")  # noqa: F841 - kernels need numpy
    from repro.relational.kernels import kernel_supported_semirings

    top_k = top_k_min_plus_semiring(3)
    # Tuple-valued: must NOT be registered for vectorized kernels ...
    assert top_k.name not in kernel_supported_semirings()
    # ... and as long as it is not, the capability check is satisfied.
    assert verify_semiring_kernel_compatibility(top_k) == []


def test_tuple_valued_semiring_registered_for_kernels_is_rejected():
    np = pytest.importorskip("numpy")  # noqa: F841 - kernels need numpy
    # An (adversarial) semiring that *claims* a kernel-registered name but
    # carries tuple values: the reduction would compute garbage.
    imposter = Semiring(name="min-plus",
                        add=min, multiply=lambda a, b: a + b,
                        zero=(float("inf"),), one=(0.0,),
                        idempotent_add=True)
    (problem,) = verify_semiring_kernel_compatibility(imposter)
    assert "non-scalar" in problem
    assert "fallback" in problem


# ---------------------------------------------------------------------------
# Shannon-flow proof sequences
# ---------------------------------------------------------------------------

@pytest.fixture
def four_cycle_sequence(s_box):
    flow = find_shannon_flow([varset("XYZ"), varset("YZW")], s_box,
                             variables=varset("XYZW"))
    return construct_proof_sequence(flow.to_integral())


def test_valid_proof_sequence_verifies(four_cycle_sequence):
    assert four_cycle_sequence.steps  # the fixture is non-trivial
    assert verify_proof_sequence(four_cycle_sequence) == []


def test_rejects_sequence_with_missing_sources(four_cycle_sequence):
    starved = ProofSequence(initial_sources=Counter(),
                            targets=four_cycle_sequence.targets,
                            steps=four_cycle_sequence.steps)
    problems = verify_proof_sequence(starved)
    assert problems
    assert any("not applicable" in problem or "multiplicity" in problem
               for problem in problems)


def test_rejects_sequence_with_inflated_targets(four_cycle_sequence):
    greedy = ProofSequence(
        initial_sources=four_cycle_sequence.initial_sources,
        targets=Counter({varset("XYZW"): 99}),
        steps=four_cycle_sequence.steps)
    problems = verify_proof_sequence(greedy)
    assert any("multiplicity" in problem and "99" in problem
               for problem in problems)


def test_rejects_truncated_sequence(four_cycle_sequence):
    truncated = ProofSequence(
        initial_sources=four_cycle_sequence.initial_sources,
        targets=four_cycle_sequence.targets,
        steps=four_cycle_sequence.steps[:-1])
    problems = verify_proof_sequence(truncated)
    # Dropping the last step either starves a later target term or leaves
    # its multiplicity short — both must be reported.
    assert problems
