"""Tests for Shannon-flow inequalities and their exact certificates (E4, Lemma 6.1)."""

from fractions import Fraction

import pytest

from repro.bounds import ddr_polymatroid_bound, polymatroid_bound
from repro.flows import ShannonFlowError, find_shannon_flow, shannon_flow_for_cq
from repro.paperdata import four_cycle_cardinality_statistics, four_cycle_full_statistics
from repro.query import four_cycle_full, triangle_query
from repro.stats import ConstraintSet, statistics_for_query
from repro.utils.varsets import varset


def test_four_cycle_ddr_flow_matches_equation_55(s_box):
    """The optimal dual of the DDR (38): λ = (1/2, 1/2), w = (1/2, 1/2, 1/2, 0)."""
    flow = find_shannon_flow([varset("XYZ"), varset("YZW")], s_box,
                             variables=varset("XYZW"))
    assert flow.verify()
    assert flow.targets == {varset("XYZ"): Fraction(1, 2), varset("YZW"): Fraction(1, 2)}
    weights = {(c.target, c.given): w for c, w in flow.sources.items()}
    assert weights[(varset("XY"), frozenset())] == Fraction(1, 2)
    assert weights[(varset("YZ"), frozenset())] == Fraction(1, 2)
    assert weights[(varset("ZW"), frozenset())] == Fraction(1, 2)
    # w4 (the weight of h(WX)) is zero, so the constraint does not appear.
    assert (varset("WX"), frozenset()) not in weights
    assert float(flow.bound_exponent()) == pytest.approx(1.5)
    assert flow.size_bound() == pytest.approx(1000 ** 1.5, rel=1e-9)
    assert "h{X,Y,Z}" in flow.describe() or "h{W,Y,Z}" in flow.describe()


def test_flow_bound_matches_primal_ddr_bound_strong_duality(s_box):
    """Lemma 6.1: the dual (flow) optimum equals the primal DDR bound."""
    selectors = [
        [varset("XYZ"), varset("YZW")],
        [varset("XYZ"), varset("WXY")],
        [varset("XZW"), varset("YZW")],
        [varset("XZW"), varset("WXY")],
    ]
    for selector in selectors:
        primal = ddr_polymatroid_bound(selector, s_box, variables=varset("XYZW"))
        flow = find_shannon_flow(selector, s_box, variables=varset("XYZW"))
        assert float(flow.bound_exponent()) == pytest.approx(primal.exponent, abs=1e-6)


def test_cq_flow_reduces_to_shearer_for_cardinality_statistics():
    """For a single-target flow with cardinality constraints, the bound is the AGM bound."""
    stats = statistics_for_query(triangle_query(), 1000)
    flow = shannon_flow_for_cq(varset("XYZ"), stats)
    assert flow.verify()
    assert float(flow.bound_exponent()) == pytest.approx(1.5)
    # Shearer's lemma for the triangle: each edge gets weight 1/2.
    assert all(weight == Fraction(1, 2) for weight in flow.sources.values())


def test_flow_with_degree_constraints_matches_polymatroid_bound(s_box_full):
    flow = shannon_flow_for_cq(varset("XYZW"), s_box_full)
    primal = polymatroid_bound(four_cycle_full(), s_box_full)
    assert float(flow.bound_exponent()) == pytest.approx(primal.exponent, abs=1e-6)
    assert flow.verify()
    # The FD and the degree constraint on U participate in the certificate.
    used_conditionals = [c for c in flow.sources if c.given]
    assert used_conditionals


def test_flow_identity_defect_detects_corruption(s_box):
    flow = find_shannon_flow([varset("XYZ"), varset("YZW")], s_box,
                             variables=varset("XYZW"))
    assert not flow.identity_defect()
    flow.targets[varset("XYZ")] += Fraction(1, 4)
    assert flow.identity_defect()
    assert not flow.verify()


def test_integral_form_of_paper_inequality(s_box):
    """Multiplying Eq. (55) by 2 gives Eq. (62): h(XYZ)+h(YZW) <= h(XY)+h(YZ)+h(ZW)."""
    flow = find_shannon_flow([varset("XYZ"), varset("YZW")], s_box,
                             variables=varset("XYZW"))
    integral = flow.to_integral()
    assert integral.denominator == 2
    assert integral.verify()
    assert integral.targets[varset("XYZ")] == 1
    assert integral.targets[varset("YZW")] == 1
    assert sum(integral.sources.values()) == 3
    assert integral.bound_exponent() == pytest.approx(1.5)
    assert integral.size_bound() == pytest.approx(1000 ** 1.5, rel=1e-9)
    assert "h{" in integral.describe()


def test_flow_requires_degree_constraints_only():
    stats = ConstraintSet(base=100)
    stats.add_cardinality("XY", 100, guard="R")
    stats.add_lp_norm("Y", "X", 2, 30, guard="R")
    with pytest.raises(ShannonFlowError):
        find_shannon_flow([varset("XY")], stats)
    empty = ConstraintSet(base=100)
    with pytest.raises(ShannonFlowError):
        find_shannon_flow([varset("XY")], empty)


def test_flow_errors_on_missing_targets(s_box):
    with pytest.raises(ValueError):
        find_shannon_flow([], s_box)


def test_flow_for_unbounded_target_raises_or_is_large():
    """A target not covered by any constraint has an unbounded DDR bound."""
    stats = ConstraintSet(base=100)
    stats.add_cardinality("XY", 100, guard="R")
    with pytest.raises(Exception):
        find_shannon_flow([varset("XZ")], stats, variables=varset("XYZ"))
