"""Width measures on query families beyond the 4-cycle.

The 5-cycle is the smallest example after the 4-cycle where the submodular
width strictly improves on the fractional hypertree width
(subw(C5) = 5/3 < 2 = fhtw(C5) under identical cardinalities — the general
formula for cycles is 2 − 1/⌈k/2⌉); Loomis–Whitney LW3 is an example where
the two widths coincide at the AGM exponent 3/2.
"""

import pytest

from repro.decompositions import enumerate_tree_decompositions
from repro.query import cycle_query, loomis_whitney_query, star_query
from repro.stats import statistics_for_query
from repro.widths import fractional_hypertree_width, submodular_width


def test_five_cycle_widths():
    query = cycle_query(5)
    stats = statistics_for_query(query, 1000)
    decompositions = enumerate_tree_decompositions(query)
    fhtw = fractional_hypertree_width(query, stats, decompositions=decompositions)
    subw = submodular_width(query, stats, decompositions=decompositions)
    assert fhtw.width == pytest.approx(2.0, abs=1e-6)
    assert subw.width == pytest.approx(5.0 / 3.0, abs=1e-5)
    assert subw.width < fhtw.width


def test_loomis_whitney_widths_coincide_at_agm():
    query = loomis_whitney_query(3)
    stats = statistics_for_query(query, 1000)
    fhtw = fractional_hypertree_width(query, stats)
    subw = submodular_width(query, stats)
    assert fhtw.width == pytest.approx(1.5, abs=1e-6)
    assert subw.width == pytest.approx(1.5, abs=1e-6)


def test_star_query_widths_are_linear():
    query = star_query(4)
    stats = statistics_for_query(query, 1000)
    fhtw = fractional_hypertree_width(query, stats)
    subw = submodular_width(query, stats)
    assert fhtw.width == pytest.approx(1.0, abs=1e-6)
    assert subw.width == pytest.approx(1.0, abs=1e-6)


def test_widths_scale_with_unequal_cardinalities():
    """Statistics-awareness: shrinking one relation of the 4-cycle lowers both widths."""
    query = cycle_query(4, free_variables=("X", "Y"))
    stats = statistics_for_query(query, 1000)
    small = statistics_for_query(query, 1000)
    # Make S (the Y–Z edge) much smaller than the others: N^{1/4}.
    small_constraints = [c for c in small.degree_constraints if c.guard != "S"]
    rebuilt = type(small)(small_constraints, base=1000)
    rebuilt.add_cardinality("YZ", 1000 ** 0.25, guard="S")
    full_fhtw = fractional_hypertree_width(query, stats)
    small_fhtw = fractional_hypertree_width(query, rebuilt)
    full_subw = submodular_width(query, stats)
    small_subw = submodular_width(query, rebuilt)
    assert small_fhtw.width < full_fhtw.width
    assert small_subw.width < full_subw.width
    assert small_subw.width <= small_fhtw.width + 1e-9
