"""Unit tests for tree decompositions and their enumeration (Figure 1)."""

import pytest

from repro.decompositions import (
    TooManyVariablesError,
    TreeDecomposition,
    decomposition_from_elimination_order,
    enumerate_tree_decompositions,
    nonredundant_decompositions,
    trivial_decomposition,
)
from repro.query import clique_query, four_cycle_boolean, four_cycle_projected, path_query, triangle_query
from repro.utils.varsets import varset


def test_tree_decomposition_canonicalisation():
    td = TreeDecomposition([{"X", "Y", "Z"}, {"X", "Y"}, {"Z", "W", "X"}])
    # The contained bag {X, Y} is dropped.
    assert set(td.bags) == {varset("XYZ"), varset("XZW")}
    assert td.variables == varset("XYZW")
    assert td.width_hint == 2
    with pytest.raises(ValueError):
        TreeDecomposition([])


def test_validity_and_free_connexity():
    query = four_cycle_projected()
    t1 = TreeDecomposition([varset("XYZ"), varset("XZW")])
    assert t1.is_valid_for(query)
    assert t1.is_free_connex_for(query.free_variables)
    missing_atom = TreeDecomposition([varset("XYZ")])
    assert not missing_atom.covers_query(query)
    assert not missing_atom.is_valid_for(query)
    # A decomposition whose bags are cyclic is invalid.
    cyclic = TreeDecomposition([varset("XY"), varset("YZ"), varset("ZX")])
    assert not cyclic.is_acyclic()


def test_join_tree_of_decomposition():
    td = TreeDecomposition([varset("XYZ"), varset("XZW")])
    tree = td.join_tree()
    assert len(tree.nodes) == 2
    cyclic = TreeDecomposition([varset("XY"), varset("YZ"), varset("ZX")])
    with pytest.raises(ValueError):
        cyclic.join_tree()


def test_domination_order():
    small = TreeDecomposition([varset("XYZ"), varset("XZW")])
    big = trivial_decomposition(four_cycle_projected())
    assert small.dominates(big)
    assert not big.dominates(small)
    kept = nonredundant_decompositions([small, big])
    assert kept == [small]


def test_elimination_order_reproduces_paper_decompositions():
    query = four_cycle_projected()
    td_w_first = decomposition_from_elimination_order(query, ["W", "Z"])
    assert set(td_w_first.bags) == {varset("XZW"), varset("XYZ")}   # T1 of Figure 1
    td_z_first = decomposition_from_elimination_order(query, ["Z", "W"])
    assert set(td_z_first.bags) == {varset("YZW"), varset("WXY")}   # T2 of Figure 1


def test_enumerate_four_cycle_matches_figure1():
    """Figure 1: Q□ has exactly the two non-trivial free-connex TDs T1 and T2."""
    query = four_cycle_projected()
    decompositions = enumerate_tree_decompositions(query)
    bag_sets = {frozenset(td.bags) for td in decompositions}
    t1 = frozenset({varset("XYZ"), varset("XZW")})
    t2 = frozenset({varset("YZW"), varset("WXY")})
    assert bag_sets == {t1, t2}


def test_enumerate_boolean_four_cycle():
    decompositions = enumerate_tree_decompositions(four_cycle_boolean())
    bag_sets = {frozenset(td.bags) for td in decompositions}
    assert frozenset({varset("XYZ"), varset("XZW")}) in bag_sets
    assert frozenset({varset("YZW"), varset("WXY")}) in bag_sets


def test_enumerate_triangle_gives_single_bag():
    decompositions = enumerate_tree_decompositions(triangle_query())
    assert len(decompositions) == 1
    assert decompositions[0].bags == (varset("XYZ"),)


def test_enumerate_acyclic_path():
    query = path_query(3)
    decompositions = enumerate_tree_decompositions(query)
    assert decompositions
    for td in decompositions:
        assert td.is_valid_for(query)
        assert td.is_free_connex_for(query.free_variables)
    # The atom-bags decomposition (width 1) must be among the non-redundant ones.
    best = min(td.width_hint for td in decompositions)
    assert best == 1


def test_enumeration_guards_against_large_queries():
    with pytest.raises(TooManyVariablesError):
        enumerate_tree_decompositions(clique_query(12))


def test_all_enumerated_decompositions_are_valid_and_free_connex():
    for query in (four_cycle_projected(), triangle_query(), path_query(4)):
        for td in enumerate_tree_decompositions(query):
            assert td.is_valid_for(query)
            assert td.is_free_connex_for(query.free_variables)
