"""Unit tests for the rationalisation helpers."""

from fractions import Fraction

from repro.utils.rationals import (
    as_fraction,
    common_denominator,
    is_close_to_fraction,
    rationalize,
    scale_to_integers,
    sequence_as_fractions,
)


def test_as_fraction_snaps_noise_to_zero():
    assert as_fraction(1e-12) == 0


def test_as_fraction_recovers_simple_fractions():
    assert as_fraction(0.5) == Fraction(1, 2)
    assert as_fraction(0.3333333333) == Fraction(1, 3)
    assert as_fraction(2) == Fraction(2)
    assert as_fraction(Fraction(7, 3)) == Fraction(7, 3)


def test_rationalize_drops_zeros():
    result = rationalize({"a": 0.25, "b": 1e-11})
    assert result == {"a": Fraction(1, 4)}


def test_common_denominator():
    assert common_denominator([Fraction(1, 2), Fraction(1, 3)]) == 6
    assert common_denominator([]) == 1
    assert common_denominator([Fraction(2)]) == 1


def test_scale_to_integers():
    scaled, lcm = scale_to_integers({"x": Fraction(1, 2), "y": Fraction(2, 3)})
    assert lcm == 6
    assert scaled == {"x": 3, "y": 4}


def test_is_close_to_fraction():
    assert is_close_to_fraction(0.5000000001, Fraction(1, 2))
    assert not is_close_to_fraction(0.51, Fraction(1, 2))


def test_sequence_as_fractions_keeps_positions():
    assert sequence_as_fractions([0.5, 0.0, 1.5]) == [Fraction(1, 2), Fraction(0), Fraction(3, 2)]
