"""FAQ × semirings: ``evaluate_faq`` against brute-force enumeration.

The FAQ evaluator must be exact for *every* commutative semiring — variable
elimination with aggregation pushdown is a pure algebraic rewrite.  These
tests sweep every built-in semiring (plus a top-k min-plus instance) over
acyclic and cyclic queries, on seeded random databases and on
hypothesis-generated four-cycles, comparing against a reference that
enumerates all satisfying assignments and folds ⊕ over ⊗ directly.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import evaluate_faq
from repro.datagen import (
    random_graph_database,
    weighted_four_cycle_workload,
    weighted_path_workload,
)
from repro.query import four_cycle_projected, path_query, triangle_query
from repro.relational import (
    BUILTIN_SEMIRINGS,
    Database,
    MAX_TIMES_SEMIRING,
    MIN_PLUS_SEMIRING,
    Relation,
    top_k_min_plus_semiring,
)

TOP2_MIN_PLUS = top_k_min_plus_semiring(2)
ALL_SEMIRINGS = list(BUILTIN_SEMIRINGS) + [TOP2_MIN_PLUS]
SEMIRING_IDS = [semiring.name for semiring in ALL_SEMIRINGS]


# ---------------------------------------------------------------------------
# reference evaluation and helpers
# ---------------------------------------------------------------------------

def bruteforce_faq(query, database, semiring, weight=None):
    """⊕ over all satisfying assignments of ⊗ of the atom annotations."""
    bound = database.bind_query(query)
    free = sorted(query.free_variables)
    results: dict[tuple, object] = {}

    def recurse(index, assignment, value):
        if index == len(bound):
            key = tuple(assignment[v] for v in free)
            if key in results:
                results[key] = semiring.add(results[key], value)
            else:
                results[key] = value
            return
        relation = bound[index]
        name = query.atoms[index].relation
        for row in relation:
            row_dict = dict(zip(relation.columns, row))
            if any(assignment.get(var, row_dict[var]) != row_dict[var]
                   for var in row_dict):
                continue
            annotation = semiring.one if weight is None else weight(name, row_dict)
            recurse(index + 1, {**assignment, **row_dict},
                    semiring.multiply(value, annotation))

    recurse(0, {}, semiring.one)
    return {key: value for key, value in results.items()
            if value != semiring.zero}


def weight_for(semiring):
    """A deterministic, semiring-typed annotation for each input tuple."""
    def weight(name, row):
        base = (sum(hash(v) % 7 for v in row.values()) % 5) + 1
        if semiring.name == "boolean":
            return True
        if semiring.name == "counting":
            return base
        if semiring.name == "max-times":
            return base / 10.0
        if semiring.name.endswith("min-plus") and semiring.zero == ():
            return (float(base),)
        return float(base)
    return weight


def assert_values_close(semiring, actual, expected):
    assert set(actual) == set(expected), (
        f"{semiring.name}: support mismatch ({len(actual)} vs {len(expected)})")
    for key, value in expected.items():
        got = actual[key]
        if isinstance(value, tuple):
            assert len(got) == len(value)
            assert all(math.isclose(a, b, rel_tol=1e-9, abs_tol=1e-9)
                       for a, b in zip(got, value))
        elif isinstance(value, float):
            assert math.isclose(got, value, rel_tol=1e-9, abs_tol=1e-9)
        else:
            assert got == value


# ---------------------------------------------------------------------------
# seeded sweeps: acyclic and cyclic queries, every semiring, both annotations
# ---------------------------------------------------------------------------

QUERIES = [
    ("path3", lambda: path_query(3, free_variables=("X1", "X4"))),
    ("four-cycle", four_cycle_projected),
    ("triangle", triangle_query),
]


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=SEMIRING_IDS)
@pytest.mark.parametrize("query_name,make_query", QUERIES,
                         ids=[name for name, _ in QUERIES])
def test_faq_matches_bruteforce_default_annotation(query_name, make_query, semiring):
    query = make_query()
    for seed in (1, 8):
        database = random_graph_database(query, 14, 5, seed=seed)
        result = evaluate_faq(query, database, semiring)
        expected = bruteforce_faq(query, database, semiring)
        assert_values_close(semiring, result.as_dict(), expected)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=SEMIRING_IDS)
@pytest.mark.parametrize("query_name,make_query", QUERIES,
                         ids=[name for name, _ in QUERIES])
def test_faq_matches_bruteforce_weighted_annotation(query_name, make_query, semiring):
    query = make_query()
    weight = weight_for(semiring)
    database = random_graph_database(query, 12, 4, seed=3)
    result = evaluate_faq(query, database, semiring, weight=weight)
    expected = bruteforce_faq(query, database, semiring, weight=weight)
    assert_values_close(semiring, result.as_dict(), expected)


@pytest.mark.parametrize("semiring", ALL_SEMIRINGS, ids=SEMIRING_IDS)
@given(edges=st.lists(
    st.tuples(st.integers(0, 3), st.integers(0, 3)), min_size=1, max_size=8))
@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_faq_matches_bruteforce_on_random_four_cycles(semiring, edges):
    query = four_cycle_projected()
    database = Database([
        Relation("R", ("a", "b"), edges),
        Relation("S", ("a", "b"), edges[::-1]),
        Relation("T", ("a", "b"), edges[: max(1, len(edges) // 2)]),
        Relation("U", ("a", "b"), edges),
    ])
    result = evaluate_faq(query, database, semiring)
    expected = bruteforce_faq(query, database, semiring)
    assert_values_close(semiring, result.as_dict(), expected)


# ---------------------------------------------------------------------------
# new semirings and weighted workloads
# ---------------------------------------------------------------------------

def test_max_times_finds_most_probable_assignment():
    workload = weighted_path_workload(2, 20, seed=5, weight_range=(0.1, 0.9))
    result = evaluate_faq(workload.query, workload.database, MAX_TIMES_SEMIRING,
                          weight=workload.weight, weight_key=workload.weight_key)
    expected = bruteforce_faq(workload.query, workload.database,
                              MAX_TIMES_SEMIRING, weight=workload.weight)
    assert_values_close(MAX_TIMES_SEMIRING, result.as_dict(), expected)
    assert all(0.0 < value <= 1.0 for value in result.as_dict().values())


def test_top_k_min_plus_head_agrees_with_min_plus():
    workload = weighted_four_cycle_workload(24, seed=9)
    top3 = top_k_min_plus_semiring(3)
    best = evaluate_faq(workload.query, workload.database, MIN_PLUS_SEMIRING,
                        weight=workload.weight, weight_key=workload.weight_key)
    ranked = evaluate_faq(
        workload.query, workload.database, top3,
        weight=lambda name, row: (workload.weight(name, row),),
        weight_key=workload.weight_key + "-top3")
    best_dict, ranked_dict = best.as_dict(), ranked.as_dict()
    assert set(best_dict) == set(ranked_dict)
    for key, costs in ranked_dict.items():
        assert 1 <= len(costs) <= 3
        assert list(costs) == sorted(costs)
        assert math.isclose(costs[0], best_dict[key], rel_tol=1e-9)


def test_top_k_min_plus_semiring_laws():
    semiring = top_k_min_plus_semiring(2)
    a, b, c = (1.0, 3.0), (2.0,), (0.5, 4.0)
    assert semiring.add(a, semiring.zero) == a
    assert semiring.multiply(a, semiring.one) == a
    assert semiring.multiply(a, semiring.zero) == semiring.zero
    assert semiring.add(semiring.add(a, b), c) == semiring.add(a, semiring.add(b, c))
    # Distributivity: a ⊗ (b ⊕ c) == (a ⊗ b) ⊕ (a ⊗ c)
    assert semiring.multiply(a, semiring.add(b, c)) == \
        semiring.add(semiring.multiply(a, b), semiring.multiply(a, c))
    # Multiset semantics: ⊕ is not idempotent for k > 1.
    assert not semiring.idempotent_add
    assert semiring.add(a, a) == (1.0, 1.0)
    assert top_k_min_plus_semiring(1).idempotent_add
