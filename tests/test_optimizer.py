"""Tests for the cost model and the planner (the paper's meta-algorithm)."""

import pytest

from repro.algorithms import evaluate_bruteforce
from repro.datagen import hard_four_cycle_instance, random_graph_database
from repro.optimizer import PlanKind, estimate_costs, plan, plan_and_execute
from repro.paperdata import four_cycle_cardinality_statistics
from repro.query import four_cycle_projected, path_query, triangle_query
from repro.stats import collect_statistics, statistics_for_query


def test_cost_estimate_for_the_four_cycle(four_cycle, s_box):
    estimate = estimate_costs(four_cycle, s_box)
    assert not estimate.is_acyclic
    assert estimate.fhtw_exponent == pytest.approx(2.0, abs=1e-6)
    assert estimate.subw_exponent == pytest.approx(1.5, abs=1e-6)
    assert estimate.adaptive_gain == pytest.approx(0.5, abs=1e-6)
    assert "fhtw" in estimate.describe()


def test_planner_picks_yannakakis_for_free_connex_acyclic_queries():
    query = path_query(3, free_variables=("X1", "X2"))
    stats = statistics_for_query(query, 1000)
    chosen = plan(query, stats)
    assert chosen.kind is PlanKind.YANNAKAKIS
    database = random_graph_database(query, 50, 12, seed=1)
    result = chosen.execute(database)
    assert result.answer.rows == evaluate_bruteforce(query, database).rows
    assert "yannakakis" in chosen.explain()


def test_planner_picks_static_plan_for_the_triangle(triangle, triangle_stats):
    chosen = plan(triangle, triangle_stats)
    assert chosen.kind is PlanKind.STATIC_TD
    database = random_graph_database(triangle, 40, 9, seed=2)
    result = chosen.execute(database)
    assert result.answer.rows == evaluate_bruteforce(triangle, database).rows
    assert result.output_size == len(result.answer)


def test_planner_picks_adaptive_panda_for_the_projected_four_cycle(four_cycle):
    size = 60
    stats = four_cycle_cardinality_statistics(size)
    chosen = plan(four_cycle, stats)
    assert chosen.kind is PlanKind.ADAPTIVE_PANDA
    assert "subw" in chosen.reason
    database = hard_four_cycle_instance(size)
    result = chosen.execute(database)
    assert result.answer.rows == evaluate_bruteforce(four_cycle, database).rows
    # The executed adaptive plan really avoided the quadratic intermediates.
    assert result.counter.max_intermediate < (size / 2) ** 2


def test_plan_and_execute_wrapper(four_cycle):
    database = random_graph_database(four_cycle, 30, 8, seed=3)
    stats = collect_statistics(database, four_cycle, include_degrees=False)
    chosen, result = plan_and_execute(four_cycle, database, stats)
    assert chosen.kind in (PlanKind.ADAPTIVE_PANDA, PlanKind.STATIC_TD)
    assert result.answer.rows == evaluate_bruteforce(four_cycle, database).rows


def test_planner_static_when_no_adaptive_gain():
    # The matrix-multiplication pattern is acyclic but not free-connex and has
    # a single useful decomposition, so the planner stays with a static plan.
    query = path_query(2, free_variables=("X1", "X3"))
    stats = statistics_for_query(query, 1000)
    chosen = plan(query, stats)
    assert chosen.kind is PlanKind.STATIC_TD
    database = random_graph_database(query, 40, 10, seed=4)
    result = chosen.execute(database)
    assert result.answer.rows == evaluate_bruteforce(query, database).rows
