"""Timeout and cooperative-cancellation regressions.

The property under test: a cancelled query stops *mid-plan* with bounded
overshoot — it does not run the join to completion and then notice.  The
bound is checked from :class:`~repro.relational.operators.WorkCounter`
tallies (the generic join checks its token every ``CHECK_INTERVAL`` explored
partial assignments, so work past the trip point is at most one interval per
DFS level), and end-to-end through the engine, the sharded process executor
and the asyncio service.
"""

from __future__ import annotations

import asyncio
import time

import pytest

from repro.algorithms import evaluate_faq, generic_join
from repro.algorithms.generic_join import CHECK_INTERVAL
from repro.datagen import hard_four_cycle_instance, random_graph_database
from repro.engine import Engine
from repro.query import four_cycle_full, four_cycle_projected, triangle_query
from repro.relational import MIN_PLUS_SEMIRING, WorkCounter
from repro.relational.kernels import using_kernels
from repro.service import (
    DeadlineExceededError,
    QueryService,
    ServiceConfig,
)
from repro.utils.cancellation import CancellationToken, QueryCancelledError


class TripAfter(CancellationToken):
    """A token that cancels itself after N ``check()`` consultations."""

    def __init__(self, trips: int) -> None:
        super().__init__()
        self.trips = trips
        self.checks = 0

    def check(self) -> None:
        self.checks += 1
        if self.checks > self.trips and not self.cancelled:
            self.cancel(f"tripped after {self.trips} checks")
        super().check()


def test_token_deadline_and_explicit_cancel():
    token = CancellationToken.with_timeout(60.0)
    token.check()  # far-future deadline: no trip
    assert token.remaining() > 0
    token.cancel("operator asked")
    with pytest.raises(QueryCancelledError, match="operator asked"):
        token.check()
    assert token.cancelled and not token.deadline_exceeded

    expired = CancellationToken.with_timeout(0.0)
    with pytest.raises(QueryCancelledError):
        expired.check()
    assert expired.deadline_exceeded


def test_generic_join_overshoot_is_bounded_by_check_interval():
    """Work tallied past the trip point ≤ one CHECK_INTERVAL per DFS level."""
    query = four_cycle_full()
    database = hard_four_cycle_instance(400)  # Ω(N²) full join: 40k answers
    trips = 4
    token = TripAfter(trips)
    counter = WorkCounter(cancellation=token)
    with using_kernels(False):  # pin the DFS path, whose bound we assert
        with pytest.raises(QueryCancelledError):
            generic_join(query, database, counter=counter)
    # The join checks once per CHECK_INTERVAL explored assignments (plus one
    # entry check), so exploration stops within trips * CHECK_INTERVAL work;
    # the full join would have been ~40000.
    assert counter.intermediate_tuples <= trips * CHECK_INTERVAL
    assert counter.intermediate_tuples < 40_000 // 4
    assert any("cancelled after exploring" in note for note in counter.notes)


def test_kernel_path_cancels_per_level():
    """The vectorized kernel consults the token between levels too."""
    query = four_cycle_full()
    database = hard_four_cycle_instance(400, backend="columnar")
    token = TripAfter(2)
    counter = WorkCounter(cancellation=token)
    with using_kernels(True):
        with pytest.raises(QueryCancelledError):
            generic_join(query, database, counter=counter)
    assert token.checks >= 2


def test_engine_deadline_cancels_within_bound():
    """A wall-clock deadline on a huge intermediate join trips mid-plan."""
    database = hard_four_cycle_instance(1200)
    engine = Engine(database)
    query = four_cycle_projected()
    prepared = engine.prepare(query)  # plan outside the timed window
    with using_kernels(False):
        # Measure roughly how long the uncancelled run takes…
        t0 = time.perf_counter()
        prepared.execute()
        full_run = time.perf_counter() - t0
        deadline = min(0.2, full_run / 4)
        t0 = time.perf_counter()
        with pytest.raises(QueryCancelledError):
            prepared.execute(
                cancellation=CancellationToken.with_timeout(deadline))
        elapsed = time.perf_counter() - t0
    # The overshoot past the deadline is bounded: far below finishing the
    # run, and within a generous absolute envelope for slow CI boxes.
    assert elapsed < max(full_run * 0.75, deadline + 1.0)
    assert engine.stats.cancelled_executions == 1
    assert engine.stats.executions == 1  # only the uncancelled run counted


def test_engine_counts_already_cancelled_execution():
    engine = Engine(random_graph_database(triangle_query(), size=30,
                                          domain=10, seed=1))
    token = CancellationToken()
    token.cancel("gave up before starting")
    with pytest.raises(QueryCancelledError):
        engine.execute(triangle_query(), cancellation=token)
    assert engine.stats.cancelled_executions == 1
    assert engine.stats.executions == 0


@pytest.mark.parametrize("executor", ["thread", "serial", "process"])
def test_sharded_execution_cancels_across_executors(executor):
    """Cancellation reaches shard workers: shared token for threads, a
    wall-clock deadline shipped in the payload for processes."""
    database = hard_four_cycle_instance(1200)
    engine = Engine(database, shards=2, executor=executor)
    query = four_cycle_projected()
    prepared = engine.prepare(query)
    with using_kernels(False):
        with pytest.raises(QueryCancelledError):
            prepared.execute(
                cancellation=CancellationToken.with_timeout(0.15))
    assert engine.stats.cancelled_executions == 1


def test_faq_evaluation_cancels():
    query = four_cycle_projected()
    database = hard_four_cycle_instance(200)
    token = TripAfter(1)
    with pytest.raises(QueryCancelledError):
        evaluate_faq(query, database, MIN_PLUS_SEMIRING,
                     counter=WorkCounter(cancellation=token))


def test_service_deadline_maps_to_typed_error_and_counters():
    database = hard_four_cycle_instance(1200)

    async def main():
        service = QueryService(ServiceConfig(max_concurrent=2))
        service.create_tenant("acme", database)
        # Warm the plan cache so the deadline bites execution, not planning.
        await service.query("acme", four_cycle_projected())
        with using_kernels(False):
            with pytest.raises(DeadlineExceededError):
                await service.query("acme", four_cycle_projected(),
                                    timeout=0.05)
            response = await service.handle(
                {"op": "query", "tenant": "acme",
                 "query": four_cycle_projected(), "timeout": 0.05})
        await service.shutdown()
        return service, response

    service, response = asyncio.run(main())
    assert response["ok"] is False
    assert response["error"]["code"] == "deadline-exceeded"
    tenant = service.registry.get("acme")
    assert tenant.cancelled == 2 and tenant.completed == 1
    assert tenant.engine.stats.cancelled_executions == 2
    # The tenant stays healthy: plan cache intact, counters reconciled.
    snapshot = tenant.snapshot()
    assert snapshot["caches"]["plan_builds"] == 1
    assert snapshot["engine"]["executions"] == 1
