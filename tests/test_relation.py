"""Unit tests for the Relation storage layer and its operators."""

import pytest

from repro.relational import Relation


@pytest.fixture
def r():
    return Relation("R", ("x", "y"), [(1, "a"), (1, "b"), (2, "a"), (3, "c")])


def test_set_semantics_and_basics(r):
    assert len(r) == 4
    assert (1, "a") in r
    assert (9, "z") not in r
    duplicate = Relation("D", ("x",), [(1,), (1,), (2,)])
    assert len(duplicate) == 2


def test_arity_checks():
    with pytest.raises(ValueError):
        Relation("R", ("x", "y"), [(1,)])
    with pytest.raises(ValueError):
        Relation("R", ("x", "x"), [])
    rel = Relation("R", ("x",), [])
    with pytest.raises(ValueError):
        rel.add((1, 2))


def test_project_and_rename(r):
    projected = r.project(["x"])
    assert projected.rows == frozenset({(1,), (2,), (3,)})
    renamed = r.rename({"x": "X", "y": "Y"})
    assert renamed.columns == ("X", "Y")
    assert renamed.rows == r.rows


def test_select(r):
    only_one = r.select(lambda row: row["x"] == 1)
    assert len(only_one) == 2
    eq = r.select_equal("y", "a")
    assert eq.rows == frozenset({(1, "a"), (2, "a")})


def test_degrees(r):
    assert r.degree(["y"], ["x"]) == 2          # x=1 has two y values
    assert r.degree(["x"], ["y"]) == 2          # y="a" has two x values
    assert r.degree(["x", "y"], []) == 4        # cardinality
    vector = r.degree_vector(["y"], ["x"])
    assert vector == {(1,): 2, (2,): 1, (3,): 1}
    with pytest.raises(KeyError):
        r.degree(["z"], ["x"])


def test_lp_norms(r):
    # degree vector over x is (2, 1, 1): ℓ1 = 4, ℓ2 = sqrt(6), ℓ∞ = 2.
    assert r.lp_norm_of_degrees(["y"], ["x"], 1) == pytest.approx(4.0)
    assert r.lp_norm_of_degrees(["y"], ["x"], 2) == pytest.approx(6 ** 0.5)
    assert r.lp_norm_of_degrees(["y"], ["x"], float("inf")) == pytest.approx(2.0)
    empty = Relation("E", ("x", "y"), [])
    assert empty.lp_norm_of_degrees(["y"], ["x"], 2) == 0.0


def test_partition_by_degree(r):
    light, heavy = r.partition_by_degree(["x"], ["y"], threshold=1)
    assert heavy.rows == frozenset({(1, "a"), (1, "b")})
    assert light.rows == frozenset({(2, "a"), (3, "c")})
    assert len(light) + len(heavy) == len(r)


def test_hash_join():
    s = Relation("S", ("y", "z"), [("a", 10), ("c", 30)])
    r = Relation("R", ("x", "y"), [(1, "a"), (2, "b"), (3, "c")])
    joined = r.hash_join(s)
    assert set(joined.columns) == {"x", "y", "z"}
    projected = joined.project(["x", "y", "z"])
    assert projected.rows == frozenset({(1, "a", 10), (3, "c", 30)})


def test_hash_join_schema_is_deterministic():
    """The output schema must not depend on which input is smaller."""
    small = Relation("S", ("b", "c"), [(1, 10)])
    large = Relation("L", ("a", "b"), [(7, 1), (8, 1), (9, 2), (6, 3)])
    expected = ("a", "b", "c")
    assert large.hash_join(small).columns == expected
    # Growing the right side past the left must not flip the column order.
    grown = Relation("S", ("b", "c"), [(1, 10), (1, 11), (2, 12), (3, 13),
                                       (1, 14), (2, 15)])
    assert large.hash_join(grown).columns == expected
    assert small.hash_join(large).columns == ("b", "c", "a")
    # Row content agrees with the schema in both regimes.
    assert large.hash_join(small).rows == frozenset({(7, 1, 10), (8, 1, 10)})
    assert large.hash_join(grown).rows == frozenset({
        (7, 1, 10), (8, 1, 10), (7, 1, 11), (8, 1, 11), (7, 1, 14),
        (8, 1, 14), (9, 2, 12), (9, 2, 15), (6, 3, 13)})


def test_hash_join_cartesian_when_no_shared_columns():
    a = Relation("A", ("x",), [(1,), (2,)])
    b = Relation("B", ("y",), [(10,)])
    joined = a.hash_join(b)
    assert len(joined) == 2


def test_semijoin(r):
    other = Relation("S", ("y",), [("a",)])
    reduced = r.semijoin(other)
    assert reduced.rows == frozenset({(1, "a"), (2, "a")})
    disjoint_nonempty = r.semijoin(Relation("T", ("w",), [(5,)]))
    assert disjoint_nonempty.rows == r.rows
    disjoint_empty = r.semijoin(Relation("T", ("w",), []))
    assert len(disjoint_empty) == 0


def test_union(r):
    extra = Relation("R2", ("y", "x"), [("z", 9)])
    merged = r.union(extra)
    assert (9, "z") in merged
    assert len(merged) == len(r) + 1
    with pytest.raises(ValueError):
        r.union(Relation("Q", ("a", "b"), []))


def test_to_dicts_is_deterministic(r):
    dicts = r.to_dicts()
    assert len(dicts) == 4
    assert all(set(d) == {"x", "y"} for d in dicts)
    assert dicts == r.to_dicts()
