"""Unit tests for the variable-set helpers."""

from repro.utils.varsets import (
    format_varset,
    powerset,
    proper_nonempty_subsets,
    union_all,
    varset,
)


def test_varset_from_uppercase_string_splits_characters():
    assert varset("XYZ") == frozenset({"X", "Y", "Z"})


def test_varset_from_general_string_is_single_variable():
    assert varset("X1") == frozenset({"X1"})
    assert varset("x") == frozenset({"x"})


def test_varset_from_iterable():
    assert varset(["X1", "X2"]) == frozenset({"X1", "X2"})


def test_varset_empty_string():
    assert varset("") == frozenset()


def test_format_varset_is_sorted_and_braced():
    assert format_varset(frozenset({"Z", "X"})) == "{X,Z}"
    assert format_varset(frozenset()) == "{}"


def test_powerset_counts_and_order():
    subsets = list(powerset(["A", "B", "C"]))
    assert len(subsets) == 8
    assert subsets[0] == frozenset()
    assert subsets[-1] == frozenset({"A", "B", "C"})
    sizes = [len(s) for s in subsets]
    assert sizes == sorted(sizes)


def test_powerset_deduplicates_input():
    assert len(list(powerset(["A", "A", "B"]))) == 4


def test_proper_nonempty_subsets():
    subsets = set(proper_nonempty_subsets(["A", "B"]))
    assert subsets == {frozenset({"A"}), frozenset({"B"})}


def test_union_all():
    assert union_all([{"A"}, {"B", "C"}, set()]) == frozenset({"A", "B", "C"})
